"""Learning-rate schedules.

Fine-tuning in the paper uses "cyclical annealing in (1e-2, 1e-3)" — a
triangular cyclic schedule whose amplitude decays over time. Constant, step,
and cosine schedules are included for pre-training and ablations.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: computes the LR for an epoch and writes it to the optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = -1

    def get_lr(self, epoch: int) -> float:
        """Learning rate for ``epoch`` (0-based). Subclasses override."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and update the optimizer's learning rate."""
        self.last_epoch += 1
        lr = self.get_lr(self.last_epoch)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed."""

    def get_lr(self, epoch: int) -> float:  # noqa: D102
        return self.base_lr


class StepLR(LRScheduler):
    """Multiplies the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be > 0, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:  # noqa: D102
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be > 0, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:  # noqa: D102
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


class CyclicLR(LRScheduler):
    """Triangular cyclic learning rate oscillating in ``(min_lr, max_lr)``.

    ``mode="triangular2"`` (the default) halves the cycle amplitude after each
    full cycle — the "cyclical annealing" the paper uses for fine-tuning. The
    floor ``min_lr`` is always respected.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        min_lr: float = 1e-3,
        max_lr: float = 1e-2,
        cycle_length: int = 100,
        mode: str = "triangular2",
    ) -> None:
        super().__init__(optimizer)
        if min_lr <= 0 or max_lr <= min_lr:
            raise ValueError(f"need 0 < min_lr < max_lr, got {min_lr}, {max_lr}")
        if cycle_length < 2:
            raise ValueError(f"cycle_length must be >= 2, got {cycle_length}")
        if mode not in ("triangular", "triangular2"):
            raise ValueError(f"mode must be 'triangular' or 'triangular2', got {mode!r}")
        self.min_lr = min_lr
        self.max_lr = max_lr
        self.cycle_length = cycle_length
        self.mode = mode

    def get_lr(self, epoch: int) -> float:  # noqa: D102
        cycle = epoch // self.cycle_length
        position = (epoch % self.cycle_length) / self.cycle_length
        # Triangular wave: 0 -> 1 over the first half-cycle, back to 0 over the second.
        fraction = 1.0 - abs(2.0 * position - 1.0)
        amplitude = self.max_lr - self.min_lr
        if self.mode == "triangular2":
            amplitude /= 2.0**cycle
        return self.min_lr + amplitude * fraction
