"""Generic mini-batch training loop with early stopping and best-state tracking.

The loop implements the training protocol from the paper's Table I:

* mini-batches of a configurable size (64 in the paper),
* an epoch-level learning-rate scheduler (cyclic annealing for fine-tuning),
* premature termination once a monitored metric reaches a target
  (fine-tuning stops at train MAE <= 5 s),
* patience-based termination when the metric stops improving
  (1000 epochs in the paper),
* tracking of the best model state seen so far, restored after training.

The computation of the loss is supplied as a closure so the same trainer
drives both the joint pre-training objective (Huber + reconstruction MSE) and
the Huber-only fine-tuning objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

#: Signature of the per-batch loss closure: indices -> (loss, metrics). The
#: loss may be a Tensor or any duck-typed stand-in exposing requires_grad /
#: backward() / item() — e.g. :class:`repro.nn.tape.CompiledLoss`.
BatchLossFn = Callable[[np.ndarray], Tuple[Any, Dict[str, float]]]

#: Signature of epoch-end callbacks: (trainer, epoch, metrics) -> None.
EpochCallback = Callable[["Trainer", int, Dict[str, float]], None]


@dataclass
class TrainerConfig:
    """Hyperparameters of the training loop."""

    max_epochs: int = 2500
    batch_size: int = 64
    shuffle: bool = True
    monitor: str = "mae"
    #: Stop as soon as the monitored metric is <= this value (None disables).
    target: Optional[float] = None
    #: Stop when the metric has not improved for this many epochs (None disables).
    patience: Optional[int] = None
    min_delta: float = 0.0
    restore_best: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_epochs <= 0:
            raise ValueError(f"max_epochs must be > 0, got {self.max_epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {self.batch_size}")
        if self.patience is not None and self.patience <= 0:
            raise ValueError(f"patience must be > 0, got {self.patience}")


@dataclass
class TrainResult:
    """Outcome of a training run."""

    epochs_trained: int
    best_epoch: int
    best_metric: float
    stop_reason: str
    history: List[Dict[str, float]] = field(default_factory=list)

    def metric_series(self, key: str) -> List[float]:
        """Extract one metric's trajectory from the history."""
        return [epoch_metrics[key] for epoch_metrics in self.history if key in epoch_metrics]


class Trainer:
    """Drives mini-batch optimization of a :class:`~repro.nn.module.Module`."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        config: TrainerConfig,
        scheduler: Optional[LRScheduler] = None,
        callbacks: Sequence[EpochCallback] = (),
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.config = config
        self.scheduler = scheduler
        self.callbacks = list(callbacks)
        self._rng = new_rng(config.seed)
        self.should_stop = False  # callbacks may set this to abort training

    def fit(
        self,
        n_samples: int,
        batch_loss: BatchLossFn,
        evaluate: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> TrainResult:
        """Run the training loop.

        Parameters
        ----------
        n_samples:
            Number of training samples; batches index into ``range(n_samples)``.
        batch_loss:
            Closure mapping an index array to ``(loss_tensor, metrics)``.
        evaluate:
            Optional closure returning end-of-epoch metrics; when given, the
            monitored metric is read from its result instead of the batch
            averages (used when train-time dropout would distort monitoring).
        """
        if n_samples <= 0:
            raise ValueError(f"n_samples must be > 0, got {n_samples}")
        cfg = self.config
        best_metric = float("inf")
        best_epoch = -1
        best_state: Optional[Dict[str, np.ndarray]] = None
        history: List[Dict[str, float]] = []
        stop_reason = "max_epochs"
        epochs_run = 0

        indices = np.arange(n_samples)
        for epoch in range(cfg.max_epochs):
            if self.scheduler is not None:
                self.scheduler.step()
            order = self._rng.permutation(indices) if cfg.shuffle else indices
            epoch_metrics = self._run_epoch(order, batch_loss)
            if evaluate is not None:
                epoch_metrics.update(evaluate())
            epoch_metrics["lr"] = self.optimizer.lr
            history.append(epoch_metrics)
            epochs_run = epoch + 1

            monitored = epoch_metrics.get(cfg.monitor)
            if monitored is not None and monitored < best_metric - cfg.min_delta:
                best_metric = monitored
                best_epoch = epoch
                if cfg.restore_best:
                    best_state = self.model.state_dict()

            for callback in self.callbacks:
                callback(self, epoch, epoch_metrics)

            if self.should_stop:
                stop_reason = "callback"
                break
            if cfg.target is not None and monitored is not None and monitored <= cfg.target:
                stop_reason = "target"
                break
            if cfg.patience is not None and epoch - best_epoch >= cfg.patience:
                stop_reason = "patience"
                break

        if cfg.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
        return TrainResult(
            epochs_trained=epochs_run,
            best_epoch=best_epoch,
            best_metric=best_metric,
            stop_reason=stop_reason,
            history=history,
        )

    def _run_epoch(self, order: np.ndarray, batch_loss: BatchLossFn) -> Dict[str, float]:
        """One pass over the data; returns sample-weighted mean metrics."""
        totals: Dict[str, float] = {}
        seen = 0
        for start in range(0, len(order), self.config.batch_size):
            batch = order[start : start + self.config.batch_size]
            self.optimizer.zero_grad()
            loss, metrics = batch_loss(batch)
            # With every parameter frozen (e.g. before an unfreeze callback
            # fires) the loss carries no graph; evaluating metrics is still
            # meaningful, but there is nothing to optimize this step.
            if loss.requires_grad:
                loss.backward()
                self.optimizer.step()
            weight = len(batch)
            seen += weight
            totals["loss"] = totals.get("loss", 0.0) + loss.item() * weight
            for key, value in metrics.items():
                totals[key] = totals.get(key, 0.0) + float(value) * weight
        return {key: value / seen for key, value in totals.items()}


def unfreeze_after(module: Module, epoch_threshold: int) -> EpochCallback:
    """Build a callback that unfreezes ``module`` once ``epoch >= threshold``.

    Implements the fine-tuning schedule from the paper: "we first update only
    parameters of the function z, while also allowing to update the parameters
    of function f after a number of epochs dependent on the amount of data
    samples".
    """
    if epoch_threshold < 0:
        raise ValueError(f"epoch_threshold must be >= 0, got {epoch_threshold}")

    def callback(trainer: Trainer, epoch: int, metrics: Dict[str, float]) -> None:
        if epoch + 1 == epoch_threshold:
            module.unfreeze()

    return callback
