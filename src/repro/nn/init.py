"""Weight-initialization schemes.

The paper initializes all layers with He initialization "in accordance with
the specific properties of our activation" (SELU). We provide He (fan-in,
normal/uniform), LeCun normal (the canonical SELU initializer), and Xavier.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return (fan_in, fan_out) for a weight of ``shape``.

    For 2-D weights in the ``(out_features, in_features)`` layout used by
    :class:`repro.nn.layers.Linear`, fan_in is the second axis.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        out_features, in_features = shape
        return in_features, out_features
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def he_normal(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """He (Kaiming) normal: ``N(0, sqrt(2 / fan_in))``."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return new_rng(seed).normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """He (Kaiming) uniform: ``U(-sqrt(6 / fan_in), +sqrt(6 / fan_in))``."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return new_rng(seed).uniform(-bound, bound, size=shape)


def lecun_normal(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """LeCun normal: ``N(0, sqrt(1 / fan_in))`` — canonical for SELU nets."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(1.0 / fan_in)
    return new_rng(seed).normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform: ``U(±sqrt(6 / (fan_in + fan_out)))``."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return new_rng(seed).uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """All-zeros initialization (used for biases)."""
    return np.zeros(shape)


INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "lecun_normal": lecun_normal,
    "xavier_uniform": xavier_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(INITIALIZERS)}"
        ) from None
