"""Search strategies: random search and grid search over a SearchSpace."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.tune.space import SearchSpace
from repro.utils.rng import SeedLike, new_rng


class Searcher:
    """Base class: yields candidate configurations."""

    def suggest(self, n: int) -> List[Dict[str, Any]]:
        """Return ``n`` configurations to evaluate."""
        raise NotImplementedError


class RandomSearch(Searcher):
    """Independent uniform sampling from the space.

    De-duplicates draws (useful for small grids like Table I's 27-point
    grid, from which the paper samples 12 distinct configurations).
    """

    def __init__(self, space: SearchSpace, seed: SeedLike = None, dedupe: bool = True) -> None:
        self.space = space
        self.rng = new_rng(seed)
        self.dedupe = dedupe

    def suggest(self, n: int) -> List[Dict[str, Any]]:  # noqa: D102
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        configs: List[Dict[str, Any]] = []
        seen = set()
        attempts = 0
        while len(configs) < n and attempts < 200 * n:
            attempts += 1
            config = self.space.sample(self.rng)
            key = tuple(sorted((k, repr(v)) for k, v in config.items()))
            if self.dedupe and key in seen:
                continue
            seen.add(key)
            configs.append(config)
        return configs


class GridSearch(Searcher):
    """Exhaustive enumeration of an enumerable space."""

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    def suggest(self, n: Optional[int] = None) -> List[Dict[str, Any]]:  # noqa: D102
        grid = self.space.grid()
        if n is not None:
            grid = grid[:n]
        return grid
