"""Search-space primitives for hyperparameter optimization.

Replaces the Ray Tune / Optuna search-space spec used by the paper's
prototype: categorical choices (Table I uses grids), uniform and log-uniform
continuous ranges, and integer ranges, bundled into a named
:class:`SearchSpace`.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Dict, Iterator, List, Mapping, Sequence

import numpy as np


class Domain(abc.ABC):
    """One dimension of a search space."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value."""

    @abc.abstractmethod
    def grid(self) -> List[Any]:
        """Enumerable values (raises for continuous domains)."""

    def contains(self, value: Any) -> bool:
        """Whether ``value`` is inside the domain (best effort)."""
        return True


class Categorical(Domain):
    """Finite set of unordered choices."""

    def __init__(self, values: Sequence[Any]) -> None:
        if not values:
            raise ValueError("Categorical needs at least one value")
        self.values = list(values)

    def sample(self, rng: np.random.Generator) -> Any:  # noqa: D102
        return self.values[int(rng.integers(0, len(self.values)))]

    def grid(self) -> List[Any]:  # noqa: D102
        return list(self.values)

    def contains(self, value: Any) -> bool:  # noqa: D102
        return value in self.values


class Uniform(Domain):
    """Continuous uniform range ``[low, high)``."""

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        self.low, self.high = float(low), float(high)

    def sample(self, rng: np.random.Generator) -> float:  # noqa: D102
        return float(rng.uniform(self.low, self.high))

    def grid(self) -> List[Any]:  # noqa: D102
        raise TypeError("Uniform domains cannot be enumerated; use random search")

    def contains(self, value: Any) -> bool:  # noqa: D102
        return self.low <= value < self.high


class LogUniform(Domain):
    """Log-uniform range over ``[low, high)`` with ``low > 0``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low}, {high})")
        self.low, self.high = float(low), float(high)

    def sample(self, rng: np.random.Generator) -> float:  # noqa: D102
        return float(math.exp(rng.uniform(math.log(self.low), math.log(self.high))))

    def grid(self) -> List[Any]:  # noqa: D102
        raise TypeError("LogUniform domains cannot be enumerated; use random search")

    def contains(self, value: Any) -> bool:  # noqa: D102
        return self.low <= value < self.high


class IntRange(Domain):
    """Integer range ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int) -> None:
        if high < low:
            raise ValueError(f"need high >= low, got [{low}, {high}]")
        self.low, self.high = int(low), int(high)

    def sample(self, rng: np.random.Generator) -> int:  # noqa: D102
        return int(rng.integers(self.low, self.high + 1))

    def grid(self) -> List[Any]:  # noqa: D102
        return list(range(self.low, self.high + 1))

    def contains(self, value: Any) -> bool:  # noqa: D102
        return self.low <= value <= self.high


class SearchSpace:
    """A named collection of domains."""

    def __init__(self, domains: Mapping[str, Domain]) -> None:
        if not domains:
            raise ValueError("search space must have at least one dimension")
        self.domains: Dict[str, Domain] = dict(domains)

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        """Draw one configuration."""
        return {name: domain.sample(rng) for name, domain in self.domains.items()}

    def grid(self) -> List[Dict[str, Any]]:
        """Full Cartesian product (requires enumerable domains)."""
        names = list(self.domains)
        combos: List[Dict[str, Any]] = [{}]
        for name in names:
            values = self.domains[name].grid()
            combos = [dict(combo, **{name: value}) for combo in combos for value in values]
        return combos

    def size(self) -> int:
        """Number of grid points (raises for continuous domains)."""
        total = 1
        for domain in self.domains.values():
            total *= len(domain.grid())
        return total

    def contains(self, config: Mapping[str, Any]) -> bool:
        """Whether a configuration lies inside the space."""
        return all(
            name in config and domain.contains(config[name])
            for name, domain in self.domains.items()
        )
