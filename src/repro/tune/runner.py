"""Trial runner: evaluate configurations and keep the best.

A tiny, sequential stand-in for Ray Tune's trial executor, with optional
successive-halving early stopping for budgeted objectives. Model
hyperparameters are tuned against the unified estimator API: build an
objective with :func:`estimator_objective` (models resolved by registry name,
base models injected by a :class:`repro.api.Session`) and hand it to
:func:`run_search` / :func:`run_successive_halving`, or use the
:func:`tune_estimator` convenience wrapper.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.tune.search import Searcher

#: Objective: configuration (+ optional budget) -> score (lower is better).
Objective = Callable[..., float]


@dataclass
class Trial:
    """One evaluated configuration."""

    config: Dict[str, Any]
    score: float
    wall_seconds: float
    budget: Optional[int] = None


@dataclass
class TuneResult:
    """Outcome of a tuning run."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        """The trial with the lowest score."""
        if not self.trials:
            raise ValueError("no trials were run")
        return min(self.trials, key=lambda trial: trial.score)

    def sorted_trials(self) -> List[Trial]:
        """Trials ordered best-first."""
        return sorted(self.trials, key=lambda trial: trial.score)


def estimator_objective(
    name: str,
    context,
    machines: Sequence[float],
    runtimes: Sequence[float],
    test_machines: Sequence[float],
    test_runtimes: Sequence[float],
    session=None,
    base_params: Optional[Dict[str, Any]] = None,
    metric: str = "mae",
) -> Objective:
    """An objective evaluating registry-estimator hyperparameters.

    Each trial constructs a fresh estimator by ``name`` through the model
    registry — fits it on the training samples, and scores held-out
    predictions. When a :class:`repro.api.Session` is given, estimators
    that need a pre-trained base model receive the session's cached
    **leave-one-out** base for the target context (its own executions are
    excluded from the pre-training corpus, so the objective's test points
    never leak into pre-training — matching the paper's protocol).

    Parameters
    ----------
    name:
        Estimator registry name (e.g. ``"bellamy-ft"``, ``"bellamy-local"``).
    context:
        The :class:`~repro.data.schema.JobContext` being tuned for.
    machines, runtimes:
        Training samples from the context.
    test_machines, test_runtimes:
        Held-out samples scored by the objective.
    session:
        Optional session owning pre-trained base models.
    base_params:
        Fixed constructor parameters merged under every trial's config.
    metric:
        ``"mae"`` (seconds) or ``"mre"`` (relative).
    """
    if metric not in ("mae", "mre"):
        raise ValueError(f"unknown metric {metric!r}; use 'mae' or 'mre'")
    test_machines = np.asarray(test_machines, dtype=np.float64).reshape(-1)
    test_runtimes = np.asarray(test_runtimes, dtype=np.float64).reshape(-1)

    def objective(config: Dict[str, Any], budget: Optional[int] = None) -> float:
        from repro.api import estimator_class, make_estimator

        params = {**(base_params or {}), **config}
        needs_base = getattr(estimator_class(name), "needs_base_model", False)
        if session is not None and needs_base and "base_model" not in params:
            params["base_model"] = session.base_model(
                context.algorithm, target=context, estimator=name
            )
        estimator = make_estimator(name, **params)
        if budget is not None and "max_epochs" in estimator.get_params():
            estimator.set_params(max_epochs=int(budget))
        estimator.fit(context, machines, runtimes)
        predicted = estimator.predict(test_machines)
        from repro.eval.metrics import mae, mre

        return mae(predicted, test_runtimes) if metric == "mae" else mre(
            predicted, test_runtimes
        )

    return objective


def tune_estimator(
    searcher: Searcher,
    name: str,
    context,
    machines: Sequence[float],
    runtimes: Sequence[float],
    test_machines: Sequence[float],
    test_runtimes: Sequence[float],
    n_trials: int,
    session=None,
    base_params: Optional[Dict[str, Any]] = None,
    metric: str = "mae",
) -> TuneResult:
    """Search estimator hyperparameters through the registry/Session."""
    objective = estimator_objective(
        name,
        context,
        machines,
        runtimes,
        test_machines,
        test_runtimes,
        session=session,
        base_params=base_params,
        metric=metric,
    )
    return run_search(searcher, objective, n_trials)


def run_search(
    searcher: Searcher,
    objective: Objective,
    n_trials: int,
) -> TuneResult:
    """Evaluate ``n_trials`` configurations sequentially."""
    result = TuneResult()
    for config in searcher.suggest(n_trials):
        started = time.perf_counter()
        score = float(objective(config))
        result.trials.append(
            Trial(config=config, score=score, wall_seconds=time.perf_counter() - started)
        )
    return result


def run_successive_halving(
    searcher: Searcher,
    objective: Objective,
    n_trials: int,
    min_budget: int,
    max_budget: int,
    eta: int = 3,
) -> TuneResult:
    """Successive halving: evaluate many configs cheaply, promote the best.

    ``objective(config, budget=...)`` is called with increasing budgets;
    after each rung, only the top ``1/eta`` fraction advances.
    """
    if not 0 < min_budget <= max_budget:
        raise ValueError("need 0 < min_budget <= max_budget")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    result = TuneResult()
    survivors = searcher.suggest(n_trials)
    budget = min_budget
    while survivors:
        rung: List[Trial] = []
        for config in survivors:
            started = time.perf_counter()
            score = float(objective(config, budget=budget))
            trial = Trial(
                config=config,
                score=score,
                wall_seconds=time.perf_counter() - started,
                budget=budget,
            )
            rung.append(trial)
            result.trials.append(trial)
        if budget >= max_budget or len(rung) == 1:
            break
        rung.sort(key=lambda trial: trial.score)
        keep = max(1, math.floor(len(rung) / eta))
        survivors = [trial.config for trial in rung[:keep]]
        budget = min(max_budget, budget * eta)
    return result
