"""Trial runner: evaluate configurations and keep the best.

A tiny, sequential stand-in for Ray Tune's trial executor, with optional
successive-halving early stopping for budgeted objectives.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.tune.search import Searcher

#: Objective: configuration (+ optional budget) -> score (lower is better).
Objective = Callable[..., float]


@dataclass
class Trial:
    """One evaluated configuration."""

    config: Dict[str, Any]
    score: float
    wall_seconds: float
    budget: Optional[int] = None


@dataclass
class TuneResult:
    """Outcome of a tuning run."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        """The trial with the lowest score."""
        if not self.trials:
            raise ValueError("no trials were run")
        return min(self.trials, key=lambda trial: trial.score)

    def sorted_trials(self) -> List[Trial]:
        """Trials ordered best-first."""
        return sorted(self.trials, key=lambda trial: trial.score)


def run_search(
    searcher: Searcher,
    objective: Objective,
    n_trials: int,
) -> TuneResult:
    """Evaluate ``n_trials`` configurations sequentially."""
    result = TuneResult()
    for config in searcher.suggest(n_trials):
        started = time.perf_counter()
        score = float(objective(config))
        result.trials.append(
            Trial(config=config, score=score, wall_seconds=time.perf_counter() - started)
        )
    return result


def run_successive_halving(
    searcher: Searcher,
    objective: Objective,
    n_trials: int,
    min_budget: int,
    max_budget: int,
    eta: int = 3,
) -> TuneResult:
    """Successive halving: evaluate many configs cheaply, promote the best.

    ``objective(config, budget=...)`` is called with increasing budgets;
    after each rung, only the top ``1/eta`` fraction advances.
    """
    if not 0 < min_budget <= max_budget:
        raise ValueError("need 0 < min_budget <= max_budget")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    result = TuneResult()
    survivors = searcher.suggest(n_trials)
    budget = min_budget
    while survivors:
        rung: List[Trial] = []
        for config in survivors:
            started = time.perf_counter()
            score = float(objective(config, budget=budget))
            trial = Trial(
                config=config,
                score=score,
                wall_seconds=time.perf_counter() - started,
                budget=budget,
            )
            rung.append(trial)
            result.trials.append(trial)
        if budget >= max_budget or len(rung) == 1:
            break
        rung.sort(key=lambda trial: trial.score)
        keep = max(1, math.floor(len(rung) / eta))
        survivors = [trial.config for trial in rung[:keep]]
        budget = min(max_budget, budget * eta)
    return result
