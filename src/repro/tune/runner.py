"""Trial runner: evaluate configurations and keep the best.

A tiny stand-in for Ray Tune's trial executor, with optional
successive-halving early stopping for budgeted objectives. Model
hyperparameters are tuned against the unified estimator API: build an
objective with :func:`estimator_objective` (models resolved by registry name,
base models injected by a :class:`repro.api.Session`) and hand it to
:func:`run_search` / :func:`run_successive_halving`, or use the
:func:`tune_estimator` convenience wrapper.

Trials run on the shared :mod:`repro.runtime` execution substrate: pass
``jobs=`` (or set ``REPRO_JOBS``) to fan independent trials out, or inject
any :class:`repro.runtime.Executor`. Configurations are drawn up front and
every trial is independent, so **scores are bit-identical for any executor
kind and worker count** — only the wall-clock changes. The default thread
executor works with closure objectives (like those from
:func:`estimator_objective`); a :class:`repro.runtime.ProcessExecutor`
additionally requires the objective to be picklable.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime import Executor, get_executor
from repro.tune.search import Searcher

#: Objective: configuration (+ optional budget) -> score (lower is better).
Objective = Callable[..., float]


@dataclass
class Trial:
    """One evaluated configuration."""

    config: Dict[str, Any]
    score: float
    wall_seconds: float
    budget: Optional[int] = None


@dataclass
class TuneResult:
    """Outcome of a tuning run."""

    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        """The trial with the lowest score."""
        if not self.trials:
            raise ValueError("no trials were run")
        return min(self.trials, key=lambda trial: trial.score)

    def sorted_trials(self) -> List[Trial]:
        """Trials ordered best-first."""
        return sorted(self.trials, key=lambda trial: trial.score)


def estimator_objective(
    name: str,
    context,
    machines: Sequence[float],
    runtimes: Sequence[float],
    test_machines: Sequence[float],
    test_runtimes: Sequence[float],
    session=None,
    base_params: Optional[Dict[str, Any]] = None,
    metric: str = "mae",
) -> Objective:
    """An objective evaluating registry-estimator hyperparameters.

    Each trial constructs a fresh estimator by ``name`` through the model
    registry — fits it on the training samples, and scores held-out
    predictions. When a :class:`repro.api.Session` is given, estimators
    that need a pre-trained base model receive the session's cached
    **leave-one-out** base for the target context (its own executions are
    excluded from the pre-training corpus, so the objective's test points
    never leak into pre-training — matching the paper's protocol).

    Parameters
    ----------
    name:
        Estimator registry name (e.g. ``"bellamy-ft"``, ``"bellamy-local"``).
    context:
        The :class:`~repro.data.schema.JobContext` being tuned for.
    machines, runtimes:
        Training samples from the context.
    test_machines, test_runtimes:
        Held-out samples scored by the objective.
    session:
        Optional session owning pre-trained base models.
    base_params:
        Fixed constructor parameters merged under every trial's config.
    metric:
        ``"mae"`` (seconds) or ``"mre"`` (relative).
    """
    if metric not in ("mae", "mre"):
        raise ValueError(f"unknown metric {metric!r}; use 'mae' or 'mre'")
    test_machines = np.asarray(test_machines, dtype=np.float64).reshape(-1)
    test_runtimes = np.asarray(test_runtimes, dtype=np.float64).reshape(-1)

    def objective(config: Dict[str, Any], budget: Optional[int] = None) -> float:
        from repro.api import estimator_class, make_estimator

        params = {**(base_params or {}), **config}
        needs_base = getattr(estimator_class(name), "needs_base_model", False)
        if session is not None and needs_base and "base_model" not in params:
            params["base_model"] = session.base_model(
                context.algorithm, target=context, estimator=name
            )
        estimator = make_estimator(name, **params)
        if budget is not None and "max_epochs" in estimator.get_params():
            estimator.set_params(max_epochs=int(budget))
        estimator.fit(context, machines, runtimes)
        predicted = estimator.predict(test_machines)
        from repro.eval.metrics import mae, mre

        return mae(predicted, test_runtimes) if metric == "mae" else mre(
            predicted, test_runtimes
        )

    return objective


def tune_estimator(
    searcher: Searcher,
    name: str,
    context,
    machines: Sequence[float],
    runtimes: Sequence[float],
    test_machines: Sequence[float],
    test_runtimes: Sequence[float],
    n_trials: int,
    session=None,
    base_params: Optional[Dict[str, Any]] = None,
    metric: str = "mae",
    jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> TuneResult:
    """Search estimator hyperparameters through the registry/Session.

    ``jobs``/``executor`` fan independent trials out on the runtime
    substrate (see :func:`run_search`); scores are identical for any
    worker count.
    """
    objective = estimator_objective(
        name,
        context,
        machines,
        runtimes,
        test_machines,
        test_runtimes,
        session=session,
        base_params=base_params,
        metric=metric,
    )
    return run_search(searcher, objective, n_trials, jobs=jobs, executor=executor)


def _evaluate_trial(task: Tuple[Objective, Dict[str, Any], Optional[int]]) -> Trial:
    """One trial, run inside whatever executor the runner chose.

    Module-level (not a closure) so trials stay picklable whenever the
    objective itself is — the requirement for process-backed tuning.
    """
    objective, config, budget = task
    started = time.perf_counter()
    if budget is None:
        score = float(objective(config))
    else:
        score = float(objective(config, budget=budget))
    return Trial(
        config=config,
        score=score,
        wall_seconds=time.perf_counter() - started,
        budget=budget,
    )


def _run_trials(
    objective: Objective,
    configs: Sequence[Dict[str, Any]],
    budget: Optional[int],
    jobs: Optional[int],
    executor: Optional[Executor],
) -> List[Trial]:
    """Fan one rung of trials out on the runtime substrate (ordered)."""
    tasks = [(objective, config, budget) for config in configs]
    if executor is not None:
        return executor.map(_evaluate_trial, tasks)
    # Threads by default: objectives are usually closures over a Session,
    # which never pickle; NumPy's BLAS-heavy fits still overlap usefully.
    owned = get_executor(jobs, n_tasks=len(tasks), kind="thread")
    try:
        return owned.map(_evaluate_trial, tasks)
    finally:
        owned.shutdown()


def run_search(
    searcher: Searcher,
    objective: Objective,
    n_trials: int,
    jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> TuneResult:
    """Evaluate ``n_trials`` configurations, optionally in parallel.

    ``jobs`` resolves through the shared ``REPRO_JOBS``-aware rule
    (``None``/0 = serial, negative = all cores); alternatively pass an
    :class:`~repro.runtime.Executor` to control scheduling directly.
    Configurations are suggested up front and trials are independent, so
    the scores — and therefore ``result.best`` — are bit-identical for any
    worker count.
    """
    result = TuneResult()
    configs = searcher.suggest(n_trials)
    result.trials.extend(_run_trials(objective, configs, None, jobs, executor))
    return result


def run_population(
    searcher: Searcher,
    population_objective: Callable[[Sequence[Dict[str, Any]]], Sequence[float]],
    n_trials: int,
) -> TuneResult:
    """Evaluate a whole population of configurations in one fused call.

    Where :func:`run_search` scores trials one objective call at a time,
    a *population objective* receives every suggested configuration at
    once and returns their scores in order — the entry point for batched
    trial evaluation, e.g.
    :func:`repro.core.pretraining.pretrain_population_objective`, which
    trains all trial models together on one compiled tape. Scores (and
    therefore ``result.best``) are identical to evaluating the same
    configurations serially; only the wall-clock changes. The shared
    wall time is split evenly across the recorded trials.
    """
    configs = searcher.suggest(n_trials)
    started = time.perf_counter()
    scores = list(population_objective(configs))
    wall = time.perf_counter() - started
    if len(scores) != len(configs):
        raise ValueError(
            f"population objective returned {len(scores)} scores "
            f"for {len(configs)} configurations"
        )
    per_trial = wall / max(len(configs), 1)
    return TuneResult(
        trials=[
            Trial(config=config, score=float(score), wall_seconds=per_trial)
            for config, score in zip(configs, scores)
        ]
    )


def run_successive_halving(
    searcher: Searcher,
    objective: Objective,
    n_trials: int,
    min_budget: int,
    max_budget: int,
    eta: int = 3,
    jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
) -> TuneResult:
    """Successive halving: evaluate many configs cheaply, promote the best.

    ``objective(config, budget=...)`` is called with increasing budgets;
    after each rung, only the top ``1/eta`` fraction advances. Trials
    *within* a rung are independent and fan out via ``jobs``/``executor``
    (rungs themselves are inherently sequential); promotion ties are broken
    by rung order, which is deterministic for any worker count.
    """
    if not 0 < min_budget <= max_budget:
        raise ValueError("need 0 < min_budget <= max_budget")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    result = TuneResult()
    survivors = searcher.suggest(n_trials)
    budget = min_budget
    while survivors:
        rung = _run_trials(objective, survivors, budget, jobs, executor)
        result.trials.extend(rung)
        if budget >= max_budget or len(rung) == 1:
            break
        order = sorted(range(len(rung)), key=lambda i: (rung[i].score, i))
        keep = max(1, math.floor(len(rung) / eta))
        survivors = [rung[i].config for i in order[:keep]]
        budget = min(max_budget, budget * eta)
    return result
