"""Hyperparameter search substrate (stand-in for Ray Tune + Optuna)."""

from repro.tune.runner import (
    Trial,
    TuneResult,
    estimator_objective,
    run_population,
    run_search,
    run_successive_halving,
    tune_estimator,
)
from repro.tune.search import GridSearch, RandomSearch, Searcher
from repro.tune.space import (
    Categorical,
    Domain,
    IntRange,
    LogUniform,
    SearchSpace,
    Uniform,
)

__all__ = [
    "Categorical",
    "Domain",
    "GridSearch",
    "IntRange",
    "LogUniform",
    "RandomSearch",
    "SearchSpace",
    "Searcher",
    "Trial",
    "TuneResult",
    "Uniform",
    "estimator_objective",
    "run_population",
    "run_search",
    "run_successive_halving",
    "tune_estimator",
]
