"""Deterministic fault injection and degradation policies.

Two halves, built to make the stack's failure behaviour both *provable*
and *cheap*:

:mod:`repro.resilience.faults`
    Seed-deterministic fault injection behind a module-level hook that
    instrumented sites guard with one ``is not None`` test — the six
    named points (``store.commit``, ``store.lock``, ``store.index``,
    ``executor.task``, ``online.refresh``, ``serve.predict``) cost
    nothing while no chaos run is active.
:mod:`repro.resilience.policy`
    :class:`RetryPolicy` (exponential backoff + seeded jitter),
    :class:`Deadline` (a propagated time budget), and
    :class:`CircuitBreaker` (closed → open → half-open), all with
    injectable clocks and sleeps.

The chaos suite in :mod:`repro.simulator` drives serve + online + store
through a :class:`FaultPlan` and asserts the invariants these policies
buy: structured errors only, stale-but-served models during refresh
failure, bit-identical predictions once faults clear.

>>> from repro.resilience import FaultPlan, FaultSpec, FaultInjector
>>> plan = FaultPlan(seed=1, specs=[FaultSpec(site="online.refresh", max_fires=1)])
>>> with FaultInjector(plan) as injector:
...     injector.fired()["online.refresh"]
0
"""

from repro.resilience.faults import (
    ACTIVE,
    SITE_EXECUTOR_TASK,
    SITE_FLEET_WORKER,
    SITE_ONLINE_REFRESH,
    SITE_SERVE_PREDICT,
    SITE_STORE_COMMIT,
    SITE_STORE_INDEX,
    SITE_STORE_LOCK,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_point,
    fault_point,
)
from repro.resilience.policy import (
    BreakerOpenError,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)

__all__ = [
    "ACTIVE",
    "SITES",
    "SITE_EXECUTOR_TASK",
    "SITE_FLEET_WORKER",
    "SITE_ONLINE_REFRESH",
    "SITE_SERVE_PREDICT",
    "SITE_STORE_COMMIT",
    "SITE_STORE_INDEX",
    "SITE_STORE_LOCK",
    "BreakerOpenError",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "corrupt_point",
    "fault_point",
]
