"""Retry, deadline, and circuit-breaker policies for the serving stack.

Three small, composable mechanisms — each deterministic under a seed or an
injected clock, so resilience behaviour is as testable as the math:

:class:`RetryPolicy`
    A bounded retry budget with exponential backoff and *seeded* jitter.
    ``call(fn)`` retries the listed exception types, sleeping a
    deterministic schedule between attempts; an optional
    :class:`Deadline` caps the whole budget.
:class:`Deadline`
    A propagated time budget: created once at the edge (e.g. per HTTP
    request), checked at each hop (``check()`` raises
    :class:`DeadlineExceeded`), and converted to per-wait timeouts via
    ``remaining()``.
:class:`CircuitBreaker`
    The closed → open → half-open state machine. After
    ``failure_threshold`` consecutive failures the breaker opens and
    ``allow()`` answers ``False`` (callers skip the doomed work and keep
    serving stale results); once ``reset_after_s`` has passed the next
    ``allow()`` admits exactly one half-open probe — its success closes
    the breaker, its failure reopens it.

All sleeps and clocks are injectable, so the full lifecycle runs in
microseconds under test:

>>> naps = []
>>> policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0, sleep=naps.append)
>>> calls = []
>>> def flaky():
...     calls.append(1)
...     if len(calls) < 3:
...         raise OSError("transient")
...     return "ok"
>>> policy.call(flaky)
'ok'
>>> naps
[0.1, 0.2]
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.utils.rng import derive_seed

R = TypeVar("R")


class DeadlineExceeded(TimeoutError):
    """A :class:`Deadline` ran out (the request should stop, not queue).

    >>> issubclass(DeadlineExceeded, TimeoutError)
    True
    """


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.call` while the breaker is open.

    >>> issubclass(BreakerOpenError, RuntimeError)
    True
    """


class Deadline:
    """A time budget created at the edge and checked at every hop.

    ``None`` budgets are representable by simply not creating a deadline;
    a created one is always finite. The clock is injectable for tests.

    >>> ticks = iter([0.0, 0.4, 1.2]).__next__
    >>> deadline = Deadline(1.0, clock=ticks)
    >>> round(deadline.remaining(), 2)
    0.6
    >>> deadline.expired
    True
    """

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(
        self, budget_s: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._t0 = clock()

    def remaining(self) -> float:
        """Seconds left (clamped at 0.0) — use as a per-wait timeout."""
        return max(0.0, self.budget_s - (self._clock() - self._t0))

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining() <= 0.0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        Call at each hop so a doomed request fails at the next boundary
        instead of consuming downstream capacity::

            deadline.check("before finetune")
        """
        if self.expired:
            where = f" at {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded{where}"
            )


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    The backoff schedule for attempt ``i`` (0-based) is
    ``min(base_delay_s * multiplier**i, max_delay_s)`` stretched by a
    jitter factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` using
    a generator derived from ``seed`` — the whole schedule is a pure
    function of the policy's parameters, never of wall time.

    Parameters
    ----------
    max_attempts:
        Total tries (the first call plus retries); at least 1.
    base_delay_s / multiplier / max_delay_s:
        The exponential backoff curve.
    jitter:
        Relative jitter width in ``[0, 1)``; 0 disables jitter.
    seed:
        Root seed of the jitter stream.
    retry_on:
        Exception types worth retrying; anything else propagates
        immediately.
    sleep:
        Injectable sleep (tests pass a recorder; chaos passes a no-op).

    Example::

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.05,
                             retry_on=(LockTimeout,))
        result = policy.call(lambda: store.save(name, model))
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.05,
        multiplier: float = 2.0,
        max_delay_s: float = 2.0,
        jitter: float = 0.1,
        seed: int = 0,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.seed = seed
        self.retry_on = retry_on
        self._sleep = sleep

    def delays(self) -> List[float]:
        """The deterministic backoff schedule (one delay per retry).

        A fresh jitter stream per call — two ``call()`` invocations sleep
        the same schedule::

            RetryPolicy(max_attempts=3, jitter=0.0).delays()
        """
        rng = np.random.default_rng(derive_seed(self.seed, "retry-jitter"))
        delays: List[float] = []
        for attempt in range(self.max_attempts - 1):
            delay = min(
                self.base_delay_s * self.multiplier**attempt, self.max_delay_s
            )
            if self.jitter > 0.0:
                delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            delays.append(delay)
        return delays

    def call(
        self,
        fn: Callable[..., R],
        *args: Any,
        deadline: Optional[Deadline] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs: Any,
    ) -> R:
        """Run ``fn`` under this policy; returns its result.

        Retries exceptions matching ``retry_on`` until the attempt budget
        or the ``deadline`` runs out, then re-raises the *last* failure
        unchanged — wiring a policy around existing code never changes
        the exception types callers handle.
        ``on_retry(attempt, error)`` observes each scheduled retry::

            policy.call(client.stats, deadline=Deadline(2.0))
        """
        delays = self.delays()
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if deadline is not None:
                deadline.check(f"retry attempt {attempt}")
            try:
                return fn(*args, **kwargs)
            except self.retry_on as error:
                last = error
                if attempt == self.max_attempts - 1:
                    break
                if on_retry is not None:
                    on_retry(attempt, error)
                delay = delays[attempt]
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        break
                    delay = min(delay, remaining)
                if delay > 0.0:
                    self._sleep(delay)
        assert last is not None
        raise last


class CircuitBreaker:
    """The closed → open → half-open failure gate, one per protected group.

    Thread-safe; the clock is injectable. ``reset_after_s=0`` makes the
    very next ``allow()`` after opening a half-open probe — the online
    session uses this so a quarantined group probes on its next drift
    flag rather than on a wall-clock schedule.

    >>> t = [0.0]
    >>> breaker = CircuitBreaker(failure_threshold=2, reset_after_s=10.0,
    ...                          clock=lambda: t[0])
    >>> breaker.record_failure(); breaker.record_failure()
    >>> breaker.state, breaker.allow()
    ('open', False)
    >>> t[0] = 11.0
    >>> breaker.allow(), breaker.state        # the half-open probe
    (True, 'half_open')
    >>> breaker.record_success(); breaker.state
    'closed'
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success (what trips the breaker)."""
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Whether the protected call may proceed right now.

        Closed: always. Open: only once ``reset_after_s`` has elapsed, and
        then exactly one caller wins the half-open probe; everyone else
        keeps getting ``False`` until the probe reports::

            if breaker.allow():
                ...  # attempt, then record_success()/record_failure()
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_after_s:
                    self._state = self.HALF_OPEN
                    return True
                return False
            return False  # half-open: the probe is already in flight

    def record_success(self) -> None:
        """The protected call worked: close and clear the failure streak."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """The protected call failed: count it; trip or re-open as due."""
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()

    def call(self, fn: Callable[..., R], *args: Any, **kwargs: Any) -> R:
        """Run ``fn`` through the breaker (convenience wrapper).

        Raises :class:`BreakerOpenError` without calling ``fn`` when
        :meth:`allow` refuses; otherwise records the outcome::

            breaker.call(refresh, context)
        """
        if not self.allow():
            raise BreakerOpenError(
                f"circuit open ({self._failures} consecutive failures)"
            )
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
