"""Seed-deterministic fault injection behind a near-free module hook.

The serving stack earns its resilience claims by *proving* them under
injected failure, and that is only honest if (a) the injected schedule is
reproducible bit-for-bit and (b) the instrumentation costs nothing when no
chaos run is active. Both live here:

**Named injection points.** Instrumented call sites across the stack fire
a site name from :data:`SITES` — the store's commit, lock, and index
paths, the executors' task launch, the online refresh, and the serve
predict path.
A :class:`FaultSpec` targets one site and describes *what* happens there
(``raise`` an exception, ``delay`` the call, or ``corrupt`` the value
flowing through) and *when* (a per-site call-index window, an optional
probability, a cap on total fires).

**Determinism.** A :class:`FaultPlan` is ``(seed, specs)``; every
probabilistic decision draws from a generator derived from
``(seed, site, spec index)`` and the site's call counter, so two runs of
the same workload under the same plan inject byte-identical fault
schedules — which is what lets the chaos suite assert the post-fault run
is bit-identical to a fault-free one.

**The disabled path.** Instrumented sites do not call into this module at
all unless a chaos run is active; they guard on the module attribute
:data:`ACTIVE`::

    from repro.resilience import faults as _faults
    ...
    if _faults.ACTIVE is not None:
        _faults.ACTIVE.fire(_faults.SITE_STORE_COMMIT)

One global load and an ``is not None`` test — a few tens of nanoseconds,
enforced by an absolute ceiling in the benchmark gate
(``resilience_level.hook_disabled_guard_ns``).

Example (everything deterministic, nothing sleeps):

>>> plan = FaultPlan(seed=7, specs=[FaultSpec(site=SITE_ONLINE_REFRESH, max_fires=2)])
>>> injector = FaultInjector(plan)
>>> with injector:
...     for _ in range(4):
...         try:
...             fault_point(SITE_ONLINE_REFRESH)
...         except InjectedFault:
...             pass
>>> injector.fired()[SITE_ONLINE_REFRESH]
2
>>> fault_point(SITE_ONLINE_REFRESH)  # deactivated: a no-op again
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.utils.rng import derive_seed

#: Store member commit (the ``os.replace`` in ``ArtifactTransaction.write``).
SITE_STORE_COMMIT = "store.commit"
#: Artifact-lock acquisition inside ``ArtifactStore.transaction``.
SITE_STORE_LOCK = "store.lock"
#: Task launch inside the serial/thread executors.
SITE_EXECUTOR_TASK = "executor.task"
#: Entry of ``OnlineSession._refresh_locked`` (before anything mutates).
SITE_ONLINE_REFRESH = "online.refresh"
#: The serve app's ``/predict`` path (fire before, corrupt after).
SITE_SERVE_PREDICT = "serve.predict"
#: Store index mutation (registration / unregistration of artifact
#: members), whatever the backend — ``index.json`` rewrite on local FS,
#: the SQLite row upsert on ``sqlite``.
SITE_STORE_INDEX = "store.index"
#: Fleet worker bootstrap (after fork, before the worker starts serving)
#: — a ``raise`` here kills the worker process, exercising the
#: supervisor's crash-restart path.
SITE_FLEET_WORKER = "fleet.worker"

#: Every named injection point wired through the stack.
SITES = (
    SITE_STORE_COMMIT,
    SITE_STORE_LOCK,
    SITE_STORE_INDEX,
    SITE_EXECUTOR_TASK,
    SITE_ONLINE_REFRESH,
    SITE_SERVE_PREDICT,
    SITE_FLEET_WORKER,
)

#: The installed injector, or ``None`` (the common case). Instrumented
#: sites guard on this attribute; see the module docstring for the idiom.
ACTIVE: Optional["FaultInjector"] = None

_ACTIVATION_LOCK = threading.Lock()


class InjectedFault(RuntimeError):
    """The default exception raised by a firing ``raise``-kind fault.

    >>> issubclass(InjectedFault, RuntimeError)
    True
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault at one site: what happens, and on which calls.

    A spec is eligible on per-site call indices ``start <= i < stop``
    (``stop=None`` means forever), fires at most ``max_fires`` times
    (``None`` means unbounded), and — when ``probability < 1`` — flips a
    coin from the plan's derived generator, so the schedule is a pure
    function of ``(plan seed, site, call index)``.

    >>> spec = FaultSpec(site=SITE_STORE_LOCK, kind="raise", max_fires=2)
    >>> spec.eligible(0), spec.eligible(10)
    (True, True)
    >>> FaultSpec(site=SITE_STORE_LOCK, start=3, stop=5).eligible(2)
    False
    """

    site: str
    #: ``"raise"``, ``"delay"``, or ``"corrupt"``.
    kind: str = "raise"
    #: Chance a call in the eligible window fires (1.0 = every call).
    probability: float = 1.0
    #: First per-site call index (0-based) this spec applies to.
    start: int = 0
    #: Per-site call index the spec stops applying at (``None`` = never).
    stop: Optional[int] = None
    #: Total fires allowed across the run (``None`` = unbounded).
    max_fires: Optional[int] = None
    #: Sleep injected by a ``delay`` fault, in seconds.
    delay_s: float = 0.001
    #: Exception type a ``raise`` fault instantiates (message-only ctor).
    exception: Type[BaseException] = InjectedFault
    #: Message passed to the raised exception.
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; expected one of {SITES}"
            )
        if self.kind not in ("raise", "delay", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop < self.start:
            raise ValueError(f"stop ({self.stop}) precedes start ({self.start})")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def eligible(self, call_index: int) -> bool:
        """Whether the per-site ``call_index`` falls in this spec's window."""
        if call_index < self.start:
            return False
        return self.stop is None or call_index < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs it schedules — the whole chaos input.

    Two injectors built from equal plans produce identical schedules; the
    chaos suite relies on this to rerun the exact same failure history.

    >>> plan = FaultPlan(seed=3, specs=[FaultSpec(site=SITE_SERVE_PREDICT)])
    >>> [spec.site for spec in plan.specs]
    ['serve.predict']
    """

    seed: int = 0
    specs: Sequence[FaultSpec] = field(default_factory=tuple)

    def for_site(self, site: str) -> List[Tuple[int, FaultSpec]]:
        """The ``(spec index, spec)`` pairs targeting ``site``."""
        return [(i, spec) for i, spec in enumerate(self.specs) if spec.site == site]


class _SiteState:
    """Per-site mutable schedule state (counter + per-spec RNG/fires)."""

    __slots__ = ("calls", "fires", "rngs")

    def __init__(self, seed: int, site: str, specs: List[Tuple[int, FaultSpec]]) -> None:
        self.calls = 0
        self.fires: Dict[int, int] = {index: 0 for index, _ in specs}
        self.rngs: Dict[int, np.random.Generator] = {
            index: np.random.default_rng(derive_seed(seed, "fault", site, index))
            for index, _ in specs
        }


class FaultInjector:
    """Executes a :class:`FaultPlan`: thread-safe, reproducible, installable.

    ``fire(site)`` raises or sleeps per the plan; ``corrupt(site, value)``
    returns ``value`` or a deterministically mutated copy. Installing the
    injector (``with injector:`` or :meth:`activate`) publishes it as
    :data:`ACTIVE`, which is what arms the instrumented sites; injectors
    nest (the previous one is restored on exit).

    ``sleep`` and the per-spec generators are injectable/derived so tests
    never wait on a wall clock.

    >>> plan = FaultPlan(seed=0, specs=[
    ...     FaultSpec(site=SITE_STORE_COMMIT, kind="delay", delay_s=0.5, max_fires=1)])
    >>> naps = []
    >>> injector = FaultInjector(plan, sleep=naps.append)
    >>> with injector:
    ...     fault_point(SITE_STORE_COMMIT)
    ...     fault_point(SITE_STORE_COMMIT)
    >>> naps
    [0.5]
    >>> injector.counts()[SITE_STORE_COMMIT]
    2
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._specs: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        self._state: Dict[str, _SiteState] = {}
        sites = {spec.site for spec in plan.specs}
        for site in sites:
            targeting = plan.for_site(site)
            self._specs[site] = targeting
            self._state[site] = _SiteState(plan.seed, site, targeting)
        self._previous: List[Optional["FaultInjector"]] = []

    # ------------------------------------------------------------------ #
    # Schedule evaluation
    # ------------------------------------------------------------------ #

    def _due(self, site: str, kinds: Tuple[str, ...]) -> List[FaultSpec]:
        """Advance the site counter once; return the specs that fire now."""
        specs = self._specs.get(site)
        if specs is None:
            return []
        with self._lock:
            state = self._state[site]
            call_index = state.calls
            state.calls += 1
            firing: List[FaultSpec] = []
            for index, spec in specs:
                if spec.kind not in kinds or not spec.eligible(call_index):
                    continue
                if spec.max_fires is not None and state.fires[index] >= spec.max_fires:
                    continue
                if spec.probability < 1.0:
                    # One draw per eligible call keeps the stream aligned
                    # with the call index, whatever other sites do.
                    if state.rngs[index].random() >= spec.probability:
                        continue
                state.fires[index] += 1
                firing.append(spec)
        return firing

    def fire(self, site: str) -> None:
        """Apply ``delay``/``raise`` faults due at ``site`` (one call tick).

        Delays apply before a raise, so a spec pair can model a slow
        failure. Unknown sites are free no-ops (the site simply has no
        specs)::

            injector.fire("store.commit")
        """
        firing = self._due(site, ("delay", "raise"))
        if not firing:
            return
        for spec in firing:
            if spec.kind == "delay":
                self._sleep(spec.delay_s)
        for spec in firing:
            if spec.kind == "raise":
                raise spec.exception(f"{spec.message} [{site}]")

    def corrupt(self, site: str, value: Any) -> Any:
        """Return ``value``, mutated deterministically if a ``corrupt``
        fault is due at ``site`` (its own call tick).

        Floats and float arrays are doubled (unmistakably wrong, still
        finite); bytes/str are reversed; anything else passes through::

            prediction = injector.corrupt("serve.predict", prediction)
        """
        firing = self._due(site, ("corrupt",))
        if not firing:
            return value
        if isinstance(value, np.ndarray):
            return value * 2.0
        if isinstance(value, float):
            return value * 2.0
        if isinstance(value, bytes):
            return value[::-1]
        if isinstance(value, str):
            return value[::-1]
        return value

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def counts(self) -> Dict[str, int]:
        """Calls observed per site (fired or not) — the schedule clock."""
        with self._lock:
            return {site: state.calls for site, state in self._state.items()}

    def fired(self) -> Dict[str, int]:
        """Total fires per site, summed across that site's specs."""
        with self._lock:
            return {
                site: sum(state.fires.values())
                for site, state in self._state.items()
            }

    def exhausted(self) -> bool:
        """Whether every capped spec has burned its ``max_fires`` budget.

        Uncapped specs never exhaust; the chaos suite uses this to know
        the injected failure window is over.
        """
        with self._lock:
            for site, specs in self._specs.items():
                state = self._state[site]
                for index, spec in specs:
                    if spec.max_fires is None or state.fires[index] < spec.max_fires:
                        return False
        return True

    # ------------------------------------------------------------------ #
    # Activation
    # ------------------------------------------------------------------ #

    def activate(self) -> "FaultInjector":
        """Install this injector as :data:`ACTIVE` (stacking); returns self."""
        global ACTIVE
        with _ACTIVATION_LOCK:
            self._previous.append(ACTIVE)
            ACTIVE = self
        return self

    def deactivate(self) -> None:
        """Restore whatever was :data:`ACTIVE` before :meth:`activate`."""
        global ACTIVE
        with _ACTIVATION_LOCK:
            previous = self._previous.pop() if self._previous else None
            ACTIVE = previous

    def __enter__(self) -> "FaultInjector":
        return self.activate()

    def __exit__(self, *exc_info: Any) -> None:
        self.deactivate()


def fault_point(site: str) -> None:
    """Fire the active injector at ``site``; free no-op when none is active.

    This is the readable form of the hook; hot paths inline the guard
    instead (see the module docstring) so the disabled cost is one
    attribute load::

        fault_point("online.refresh")
    """
    injector = ACTIVE
    if injector is not None:
        injector.fire(site)


def corrupt_point(site: str, value: Any) -> Any:
    """Pass ``value`` through the active injector's ``corrupt`` faults.

    Identity when no injector is active::

        prediction = corrupt_point("serve.predict", prediction)
    """
    injector = ACTIVE
    if injector is None:
        return value
    return injector.corrupt(site, value)
