"""Fine-tuning of (pre-trained) Bellamy models on a concrete context.

Implements the paper's optimization step (§III-A, §IV-A) and the four model
reuse strategies of the cross-environment study (§IV-C2), plus the ``local``
variant that trains from scratch on the context's few samples:

* ``partial-unfreeze`` — adapt ``z`` from the start, unlock ``f`` after a
  number of epochs that depends on the number of samples (the default
  fine-tuning mode used in the cross-context experiments),
* ``full-unfreeze``    — adapt ``f`` and ``z`` from the start,
* ``partial-reset``    — re-initialize ``z``, then fine-tune,
* ``full-reset``       — re-initialize ``f`` and ``z``, adapt both,
* ``local``            — fresh model, no pre-training; the auto-encoder is
  left untrained ("it bears no advantage" without a corpus).

The auto-encoder parameters are never updated during fine-tuning. Training
uses the Huber loss only, cyclical learning-rate annealing in
``(1e-3, 1e-2)``, weight decay ``1e-3``, and stops once the training MAE
reaches 5 seconds or no improvement was seen for 1000 epochs (2500 max).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.data.schema import JobContext
from repro.nn.batched import (
    BatchedAdam,
    BatchedModelBank,
    GroupProgress,
    ParamSnapshots,
    huber_loss_batched,
)
from repro.nn.losses import HuberLoss
from repro.nn.optim import Adam
from repro.nn.schedulers import CyclicLR
from repro.nn.tape import GraphCompiler, legacy_engine
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainResult, Trainer, TrainerConfig, unfreeze_after
from repro.utils.rng import derive_seed, new_rng


class FinetuneStrategy(str, Enum):
    """Model-reuse strategies (paper §IV-C2)."""

    PARTIAL_UNFREEZE = "partial-unfreeze"
    FULL_UNFREEZE = "full-unfreeze"
    PARTIAL_RESET = "partial-reset"
    FULL_RESET = "full-reset"

    def resets_z(self) -> bool:
        """Whether the predictor z is re-initialized."""
        return self in (FinetuneStrategy.PARTIAL_RESET, FinetuneStrategy.FULL_RESET)

    def resets_f(self) -> bool:
        """Whether the scale-out network f is re-initialized."""
        return self is FinetuneStrategy.FULL_RESET

    def delays_f(self) -> bool:
        """Whether f stays frozen for an initial phase."""
        return self in (FinetuneStrategy.PARTIAL_UNFREEZE, FinetuneStrategy.PARTIAL_RESET)


@dataclass
class FinetuneResult:
    """A context-adapted model plus fine-tuning diagnostics."""

    model: BellamyModel
    strategy: str
    epochs_trained: int
    wall_seconds: float
    final_mae: float
    stop_reason: str
    train_result: TrainResult


@dataclass
class FinetuneFailure:
    """Per-group failure marker returned by :func:`finetune_batch`.

    One group's bad data (empty samples, shape mismatch, a featurizer error)
    must not sink the other groups of a batched refresh; the failing slot
    gets this marker while the rest train normally.
    """

    context: Optional[JobContext]
    strategy: str
    error: str


def unfreeze_epoch_for(n_samples: int, max_epochs: int = 2500) -> int:
    """Epoch at which ``f`` is unlocked during partial fine-tuning.

    The paper makes this "dependent on the amount of data samples" without
    giving the rule; we let more data unlock ``f`` earlier (more evidence
    justifies touching the general scale-out understanding sooner):
    ``max(100, 600 - 100 * n)`` at the paper's 2500-epoch budget. When the
    budget is shorter (the quick experiment scale), the threshold scales
    proportionally — otherwise ``f`` would never unlock at all within the
    shrunken budget.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    if max_epochs <= 0:
        raise ValueError(f"max_epochs must be > 0, got {max_epochs}")
    base = max(100, 600 - 100 * n_samples)
    return max(10, round(base * min(1.0, max_epochs / 2500.0)))


def _clone_model(model: BellamyModel) -> BellamyModel:
    """Deep-copy a model via its full state dict.

    Uses the concrete class so model subclasses (e.g. the graph-aware model
    in :mod:`repro.core.graph_model`) survive fine-tuning cloning.
    """
    clone = type(model)(model.config)
    clone.load_full_state_dict(model.full_state_dict())
    return clone


def _prepare_model(
    base_model: BellamyModel,
    context: JobContext,
    n_samples: int,
    strategy: FinetuneStrategy,
    max_epochs: Optional[int],
    copy: bool,
) -> Tuple[BellamyModel, BellamyConfig, Optional[int]]:
    """Clone/reset/freeze a model for fine-tuning (shared serial/batched prep).

    Returns the prepared model, its config, and the epoch at which ``f``
    unlocks (``None`` when the strategy adapts ``f`` from the start).
    """
    model = _clone_model(base_model) if copy else base_model
    config = model.config

    # Dropout is disabled during fine-tuning (Table I: Dropout 0 %).
    model.autoencoder.encoder.set_dropout(0.0)
    model.autoencoder.decoder.set_dropout(0.0)

    reset_seed = derive_seed(config.seed, "finetune-reset", context.context_id)
    if strategy.resets_z():
        model.z.reset_parameters(reset_seed)
    if strategy.resets_f():
        model.f.reset_parameters(derive_seed(reset_seed, "f"))

    # The auto-encoder is never adapted; z always is; f depends on strategy.
    # A graph encoder (GnnBellamyModel) is a structural prior and is frozen
    # like the auto-encoder.
    model.autoencoder.freeze()
    if hasattr(model, "graph_encoder"):
        model.graph_encoder.freeze()
    model.z.unfreeze()
    unfreeze_epoch = None
    if strategy.delays_f():
        model.f.freeze()
        budget = max_epochs or config.finetune_max_epochs
        unfreeze_epoch = unfreeze_epoch_for(n_samples, budget)
    else:
        model.f.unfreeze()
    return model, config, unfreeze_epoch


def _run_finetune_loop(
    model: BellamyModel,
    context: JobContext,
    machines: np.ndarray,
    runtimes: np.ndarray,
    config: BellamyConfig,
    callbacks,
    max_epochs: Optional[int],
    seed_path: Tuple,
) -> TrainResult:
    """Shared Huber-only optimization loop used by all strategies."""
    # Graph-aware models route the (single) fine-tuning context to their
    # forward pass through ``pending_contexts`` (see core.graph_model).
    if hasattr(model, "pending_contexts"):
        model.pending_contexts = [context]
    scaleout_raw, properties = model.featurizer.build_context_arrays(context, machines)
    scaled_features = model.scaler.transform(scaleout_raw)
    scaled_targets = model.normalize_runtimes(runtimes)
    huber = HuberLoss(delta=config.huber_delta)

    # The per-batch graph is structurally identical across epochs, so it is
    # recorded once and replayed (see repro.nn.tape); unfreeze callbacks
    # change the parameter signature and transparently trigger re-recording.
    def build(features_t: Tensor, properties_t: Tensor, targets_t: Tensor):
        prediction, _, _ = model.forward(features_t, properties_t)
        return huber(prediction, targets_t), prediction

    compiler = GraphCompiler(build, params=model.parameters)

    def batch_loss(batch: np.ndarray):
        _, prediction = compiler.run(
            scaled_features[batch], properties[batch], scaled_targets[batch]
        )
        residual = model.denormalize_runtimes(prediction.data - scaled_targets[batch])
        return compiler.loss_handle, {"mae": float(np.abs(residual).mean())}

    trainer_config = TrainerConfig(
        max_epochs=max_epochs or config.finetune_max_epochs,
        batch_size=config.batch_size,
        monitor="mae",
        target=config.finetune_target_mae,
        patience=config.finetune_patience,
        restore_best=True,
        seed=derive_seed(config.seed, "finetune-loop", *seed_path),
    )
    optimizer = Adam(
        model.parameters(),
        lr=config.finetune_lr_max,
        weight_decay=config.finetune_weight_decay,
    )
    scheduler = CyclicLR(
        optimizer,
        min_lr=config.finetune_lr_min,
        max_lr=config.finetune_lr_max,
        cycle_length=config.finetune_lr_cycle,
    )
    trainer = Trainer(model, optimizer, trainer_config, scheduler=scheduler, callbacks=callbacks)
    model.train()
    result = trainer.fit(machines.size, batch_loss)
    model.eval()
    return result


def finetune(
    base_model: BellamyModel,
    context: JobContext,
    machines: Sequence[float],
    runtimes: Sequence[float],
    strategy: FinetuneStrategy = FinetuneStrategy.PARTIAL_UNFREEZE,
    max_epochs: Optional[int] = None,
    copy: bool = True,
) -> FinetuneResult:
    """Optimize a pre-trained model for a concrete context.

    Parameters
    ----------
    base_model:
        The pre-trained model (left untouched when ``copy=True``).
    context:
        The new execution context.
    machines, runtimes:
        The available samples from the new context (>= 1 point).
    strategy:
        Which parameters are adapted / re-initialized.
    max_epochs:
        Optional override of the 2500-epoch cap (quick experiment scale).
    copy:
        Clone the base model first so it can be reused across splits.
    """
    machines = np.asarray(machines, dtype=np.float64).reshape(-1)
    runtimes = np.asarray(runtimes, dtype=np.float64).reshape(-1)
    if machines.size == 0:
        raise ValueError("fine-tuning requires at least one sample; "
                         "use the pre-trained model directly for zero-shot prediction")
    if machines.shape != runtimes.shape:
        raise ValueError("machines and runtimes must have equal length")

    started = time.perf_counter()
    model, config, unfreeze_epoch = _prepare_model(
        base_model, context, machines.size, strategy, max_epochs, copy
    )
    callbacks = []
    if unfreeze_epoch is not None:
        callbacks.append(unfreeze_after(model.f, unfreeze_epoch))

    result = _run_finetune_loop(
        model,
        context,
        machines,
        runtimes,
        config,
        callbacks,
        max_epochs,
        seed_path=(context.context_id, strategy.value),
    )
    wall = time.perf_counter() - started
    return FinetuneResult(
        model=model,
        strategy=strategy.value,
        epochs_trained=result.epochs_trained,
        wall_seconds=wall,
        final_mae=result.best_metric,
        stop_reason=result.stop_reason,
        train_result=result,
    )


@dataclass
class _BatchEntry:
    """One prepared group of a batched fine-tune."""

    index: int
    model: BellamyModel
    context: JobContext
    machines: np.ndarray
    runtimes: np.ndarray
    config: BellamyConfig
    unfreeze_epoch: Optional[int]
    scaled_features: np.ndarray = field(default=None, repr=False)
    properties: np.ndarray = field(default=None, repr=False)
    scaled_targets: np.ndarray = field(default=None, repr=False)

    def arch_key(self) -> tuple:
        """Groups are batchable together iff this key matches."""
        return (
            tuple((n, p.data.shape) for n, p in self.model.named_parameters()),
            self.properties.shape[1:],
            self.config.n_essential,
            self.config.encoding_dim,
            self.config.use_optional,
        )


class _LrHolder:
    """Minimal optimizer stand-in so serial LR schedulers drive one group."""

    def __init__(self, lr: float) -> None:
        self.lr = lr


def _run_finetune_loop_batch(
    entries: List[_BatchEntry],
    strategy: FinetuneStrategy,
    max_epochs: Optional[int],
) -> List[TrainResult]:
    """Lockstep Huber-only optimization of N prepared groups on one tape.

    A direct transliteration of :func:`_run_finetune_loop` +
    :meth:`repro.nn.trainer.Trainer.fit` with the group axis vectorized:
    per-epoch scheduler step, per-group shuffled batch order (each group's
    trainer RNG drawn only while that group is active), fused forward/
    backward over ``(group, batch, features)`` with ragged batches expressed
    as padding + counts, a masked per-group Adam step, best-state snapshots,
    and the serial stop order (target, patience, max-epochs) per group.
    """
    n_groups = len(entries)
    models = [e.model for e in entries]
    configs = [e.config for e in entries]
    bank = BatchedModelBank(models)
    delta = np.array([c.huber_delta for c in configs], dtype=np.float64)

    ns = [int(e.machines.size) for e in entries]
    batch_sizes = [int(c.batch_size) for c in configs]
    max_epochs_list = [
        int(max_epochs or c.finetune_max_epochs) for c in configs
    ]
    width = max(min(bs, n) for bs, n in zip(batch_sizes, ns))
    n_props, vec_size = entries[0].properties.shape[1:]

    feats_buf = np.zeros((n_groups, width, 3), dtype=np.float64)
    props_buf = np.zeros((n_groups, width, n_props, vec_size), dtype=np.float64)
    targ_buf = np.zeros((n_groups, width), dtype=np.float64)
    counts = np.zeros(n_groups, dtype=np.float64)
    dirty = [False] * n_groups

    def build(features_t: Tensor, properties_t: Tensor, targets_t: Tensor, counts_t: Tensor):
        prediction, _, _ = bank.forward(features_t, properties_t, counts=counts_t)
        loss = huber_loss_batched(prediction, targets_t, delta=delta, counts=counts_t)
        return loss, prediction

    compiler = GraphCompiler(build, params=bank.parameters)

    f_params = bank.f.params()
    z_params = bank.z.params()
    opt_params = f_params + z_params
    optimizer = BatchedAdam(
        opt_params,
        n_groups,
        lr=np.array([c.finetune_lr_max for c in configs], dtype=np.float64),
        weight_decay=np.array(
            [c.finetune_weight_decay for c in configs], dtype=np.float64
        ),
    )
    holders = [_LrHolder(c.finetune_lr_max) for c in configs]
    schedulers = [
        CyclicLR(
            holder,
            min_lr=c.finetune_lr_min,
            max_lr=c.finetune_lr_max,
            cycle_length=c.finetune_lr_cycle,
        )
        for holder, c in zip(holders, configs)
    ]
    progress = GroupProgress(
        n_groups,
        monitor="mae",
        targets=[c.finetune_target_mae for c in configs],
        patiences=[c.finetune_patience for c in configs],
        max_epochs=max_epochs_list,
    )
    snapshots = ParamSnapshots(opt_params)
    trainer_rngs = [
        new_rng(
            derive_seed(
                c.seed, "finetune-loop", e.context.context_id, strategy.value
            )
        )
        for c, e in zip(configs, entries)
    ]
    indices_list = [np.arange(n) for n in ns]
    f_unfrozen = [e.unfreeze_epoch is None for e in entries]
    lrs = np.array([c.finetune_lr_max for c in configs], dtype=np.float64)
    z_mask = np.zeros(n_groups, dtype=bool)

    for model in models:
        model.train()
    bank.train()

    epoch = 0
    while progress.any_active:
        epoch_active = [g for g in range(n_groups) if progress.active[g]]
        for g in epoch_active:
            lrs[g] = schedulers[g].step()
        optimizer.set_lr(lrs)
        orders = {g: trainer_rngs[g].permutation(indices_list[g]) for g in epoch_active}
        n_batches = {
            g: math.ceil(ns[g] / batch_sizes[g]) for g in epoch_active
        }
        total_loss = [0.0] * n_groups
        total_mae = [0.0] * n_groups
        seen = [0] * n_groups

        for b in range(max(n_batches.values())):
            z_mask[:] = False
            for g in range(n_groups):
                if g in n_batches and b < n_batches[g]:
                    bs = batch_sizes[g]
                    idx = orders[g][b * bs : b * bs + bs]
                    c = idx.size
                    feats_buf[g, :c] = entries[g].scaled_features[idx]
                    props_buf[g, :c] = entries[g].properties[idx]
                    targ_buf[g, :c] = entries[g].scaled_targets[idx]
                    if c < width:
                        feats_buf[g, c:] = 0.0
                        props_buf[g, c:] = 0.0
                        targ_buf[g, c:] = 0.0
                    counts[g] = float(c)
                    z_mask[g] = True
                    dirty[g] = True
                else:
                    counts[g] = 0.0
                    if dirty[g]:
                        feats_buf[g] = 0.0
                        props_buf[g] = 0.0
                        targ_buf[g] = 0.0
                        dirty[g] = False

            optimizer.zero_grad()
            loss_t, prediction = compiler.run(feats_buf, props_buf, targ_buf, counts)
            if loss_t.requires_grad:
                compiler.backward()
                f_mask = z_mask & np.asarray(f_unfrozen, dtype=bool)
                masks = [f_mask] * len(f_params) + [z_mask] * len(z_params)
                optimizer.step(masks)

            for g in range(n_groups):
                if not z_mask[g]:
                    continue
                c = int(counts[g])
                residual = models[g].denormalize_runtimes(
                    prediction.data[g, :c] - targ_buf[g, :c]
                )
                total_loss[g] += float(loss_t.data[g]) * c
                total_mae[g] += float(np.abs(residual).mean()) * c
                seen[g] += c

        metrics_map = {}
        for g in epoch_active:
            epoch_metrics = {
                "loss": total_loss[g] / seen[g],
                "mae": total_mae[g] / seen[g],
                "lr": lrs[g],
            }
            metrics_map[g] = epoch_metrics
            if progress.record(g, epoch, epoch_metrics):
                snapshots.save(g)
        for g in epoch_active:
            unfreeze_epoch = entries[g].unfreeze_epoch
            if unfreeze_epoch is not None and epoch + 1 == unfreeze_epoch:
                f_unfrozen[g] = True
                models[g].f.unfreeze()
                if not bank.f.weight1.requires_grad:
                    # First group to unlock f: the stacked parameters become
                    # trainable and the compiler re-records on the next run.
                    bank.f.set_trainable(True)
        for g in epoch_active:
            progress.check_stop(g, epoch, metrics_map[g])
        epoch += 1

    for g in range(n_groups):
        snapshots.restore(g)
    bank.write_back()
    for model in models:
        model.eval()
    return [progress.result(g) for g in range(n_groups)]


def finetune_batch(
    items: Sequence[Tuple[BellamyModel, JobContext, Sequence[float], Sequence[float]]],
    strategy: FinetuneStrategy = FinetuneStrategy.PARTIAL_UNFREEZE,
    max_epochs: Optional[int] = None,
    copy: bool = True,
) -> List[Union[FinetuneResult, FinetuneFailure]]:
    """Fine-tune N groups in one fused batched pass.

    Each item is ``(base_model, context, machines, runtimes)`` — the exact
    arguments of :func:`finetune`. Groups with identical architectures (and
    property-matrix shapes) are stacked into a
    :class:`~repro.nn.batched.BatchedModelBank` and trained together on one
    compiled tape; the result per group is bit-identical to running
    :func:`finetune` on it alone (same seeds, same shuffled batch orders,
    same stop epochs). Groups that cannot batch — architecture mismatch,
    graph-aware models, the legacy engine, or a lone leftover — fall back to
    the serial loop transparently.

    Returns one entry per item, position-aligned: a
    :class:`FinetuneResult` on success or a :class:`FinetuneFailure` when
    that group's inputs were unusable (other groups are unaffected).
    """
    results: List[Optional[Union[FinetuneResult, FinetuneFailure]]] = [None] * len(items)
    serial_items: List[int] = []
    prepared: Dict[int, _BatchEntry] = {}
    started = time.perf_counter()

    for i, item in enumerate(items):
        try:
            base_model, context, machines, runtimes = item
            machines = np.asarray(machines, dtype=np.float64).reshape(-1)
            runtimes = np.asarray(runtimes, dtype=np.float64).reshape(-1)
            if machines.size == 0:
                raise ValueError(
                    "fine-tuning requires at least one sample; use the "
                    "pre-trained model directly for zero-shot prediction"
                )
            if machines.shape != runtimes.shape:
                raise ValueError("machines and runtimes must have equal length")
            if legacy_engine() or hasattr(base_model, "pending_contexts"):
                serial_items.append(i)
                continue
            model, config, unfreeze_epoch = _prepare_model(
                base_model, context, machines.size, strategy, max_epochs, copy
            )
            scaleout_raw, properties = model.featurizer.build_context_arrays(
                context, machines
            )
            entry = _BatchEntry(
                index=i,
                model=model,
                context=context,
                machines=machines,
                runtimes=runtimes,
                config=config,
                unfreeze_epoch=unfreeze_epoch,
                scaled_features=model.scaler.transform(scaleout_raw),
                properties=properties,
                scaled_targets=model.normalize_runtimes(runtimes),
            )
            prepared[i] = entry
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            context = item[1] if isinstance(item, (tuple, list)) and len(item) > 1 else None
            results[i] = FinetuneFailure(
                context=context,
                strategy=strategy.value,
                error=f"{type(exc).__name__}: {exc}",
            )

    subgroups: Dict[tuple, List[int]] = {}
    for i, entry in prepared.items():
        subgroups.setdefault(entry.arch_key(), []).append(i)

    for key, members in subgroups.items():
        if len(members) < 2:
            serial_items.extend(members)
            continue
        entries = [prepared[i] for i in members]
        train_results = _run_finetune_loop_batch(entries, strategy, max_epochs)
        wall = time.perf_counter() - started
        for entry, train_result in zip(entries, train_results):
            results[entry.index] = FinetuneResult(
                model=entry.model,
                strategy=strategy.value,
                epochs_trained=train_result.epochs_trained,
                wall_seconds=wall,
                final_mae=train_result.best_metric,
                stop_reason=train_result.stop_reason,
                train_result=train_result,
            )

    for i in serial_items:
        try:
            base_model, context, machines, runtimes = items[i]
            results[i] = finetune(
                base_model,
                context,
                machines,
                runtimes,
                strategy=strategy,
                max_epochs=max_epochs,
                copy=copy,
            )
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            results[i] = FinetuneFailure(
                context=items[i][1],
                strategy=strategy.value,
                error=f"{type(exc).__name__}: {exc}",
            )

    return results


def train_local(
    context: JobContext,
    machines: Sequence[float],
    runtimes: Sequence[float],
    config: Optional[BellamyConfig] = None,
    max_epochs: Optional[int] = None,
    seed: Optional[int] = None,
) -> FinetuneResult:
    """The ``local`` variant: train a fresh model on the context's samples.

    No pre-training data exists, so the auto-encoder is not trained (its
    random codes still give each context a stable signature); the scale-out
    boundaries and the runtime scale are derived from the local samples.
    """
    machines = np.asarray(machines, dtype=np.float64).reshape(-1)
    runtimes = np.asarray(runtimes, dtype=np.float64).reshape(-1)
    if machines.size == 0:
        raise ValueError("local training requires at least one sample")

    config = config or BellamyConfig()
    if seed is not None:
        config = config.with_overrides(seed=seed)
    # No corpus -> no dropout regularization target; keep fine-tune semantics.
    config = config.with_overrides(dropout=0.0)

    started = time.perf_counter()
    model = BellamyModel(config)
    model.fit_scaler(model.featurizer.scaleout_features(machines))
    model.set_runtime_scale(runtimes, percentile=100.0)

    model.autoencoder.freeze()
    model.f.unfreeze()
    model.z.unfreeze()

    result = _run_finetune_loop(
        model,
        context,
        machines,
        runtimes,
        config,
        callbacks=(),
        max_epochs=max_epochs,
        seed_path=(context.context_id, "local"),
    )
    wall = time.perf_counter() - started
    return FinetuneResult(
        model=model,
        strategy="local",
        epochs_trained=result.epochs_trained,
        wall_seconds=wall,
        final_mae=result.best_metric,
        stop_reason=result.stop_reason,
        train_result=result,
    )
