"""Fine-tuning of (pre-trained) Bellamy models on a concrete context.

Implements the paper's optimization step (§III-A, §IV-A) and the four model
reuse strategies of the cross-environment study (§IV-C2), plus the ``local``
variant that trains from scratch on the context's few samples:

* ``partial-unfreeze`` — adapt ``z`` from the start, unlock ``f`` after a
  number of epochs that depends on the number of samples (the default
  fine-tuning mode used in the cross-context experiments),
* ``full-unfreeze``    — adapt ``f`` and ``z`` from the start,
* ``partial-reset``    — re-initialize ``z``, then fine-tune,
* ``full-reset``       — re-initialize ``f`` and ``z``, adapt both,
* ``local``            — fresh model, no pre-training; the auto-encoder is
  left untrained ("it bears no advantage" without a corpus).

The auto-encoder parameters are never updated during fine-tuning. Training
uses the Huber loss only, cyclical learning-rate annealing in
``(1e-3, 1e-2)``, weight decay ``1e-3``, and stops once the training MAE
reaches 5 seconds or no improvement was seen for 1000 epochs (2500 max).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.data.schema import JobContext
from repro.nn.losses import HuberLoss
from repro.nn.optim import Adam
from repro.nn.schedulers import CyclicLR
from repro.nn.tape import GraphCompiler
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainResult, Trainer, TrainerConfig, unfreeze_after
from repro.utils.rng import derive_seed


class FinetuneStrategy(str, Enum):
    """Model-reuse strategies (paper §IV-C2)."""

    PARTIAL_UNFREEZE = "partial-unfreeze"
    FULL_UNFREEZE = "full-unfreeze"
    PARTIAL_RESET = "partial-reset"
    FULL_RESET = "full-reset"

    def resets_z(self) -> bool:
        """Whether the predictor z is re-initialized."""
        return self in (FinetuneStrategy.PARTIAL_RESET, FinetuneStrategy.FULL_RESET)

    def resets_f(self) -> bool:
        """Whether the scale-out network f is re-initialized."""
        return self is FinetuneStrategy.FULL_RESET

    def delays_f(self) -> bool:
        """Whether f stays frozen for an initial phase."""
        return self in (FinetuneStrategy.PARTIAL_UNFREEZE, FinetuneStrategy.PARTIAL_RESET)


@dataclass
class FinetuneResult:
    """A context-adapted model plus fine-tuning diagnostics."""

    model: BellamyModel
    strategy: str
    epochs_trained: int
    wall_seconds: float
    final_mae: float
    stop_reason: str
    train_result: TrainResult


def unfreeze_epoch_for(n_samples: int, max_epochs: int = 2500) -> int:
    """Epoch at which ``f`` is unlocked during partial fine-tuning.

    The paper makes this "dependent on the amount of data samples" without
    giving the rule; we let more data unlock ``f`` earlier (more evidence
    justifies touching the general scale-out understanding sooner):
    ``max(100, 600 - 100 * n)`` at the paper's 2500-epoch budget. When the
    budget is shorter (the quick experiment scale), the threshold scales
    proportionally — otherwise ``f`` would never unlock at all within the
    shrunken budget.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    if max_epochs <= 0:
        raise ValueError(f"max_epochs must be > 0, got {max_epochs}")
    base = max(100, 600 - 100 * n_samples)
    return max(10, round(base * min(1.0, max_epochs / 2500.0)))


def _clone_model(model: BellamyModel) -> BellamyModel:
    """Deep-copy a model via its full state dict.

    Uses the concrete class so model subclasses (e.g. the graph-aware model
    in :mod:`repro.core.graph_model`) survive fine-tuning cloning.
    """
    clone = type(model)(model.config)
    clone.load_full_state_dict(model.full_state_dict())
    return clone


def _run_finetune_loop(
    model: BellamyModel,
    context: JobContext,
    machines: np.ndarray,
    runtimes: np.ndarray,
    config: BellamyConfig,
    callbacks,
    max_epochs: Optional[int],
    seed_path: Tuple,
) -> TrainResult:
    """Shared Huber-only optimization loop used by all strategies."""
    # Graph-aware models route the (single) fine-tuning context to their
    # forward pass through ``pending_contexts`` (see core.graph_model).
    if hasattr(model, "pending_contexts"):
        model.pending_contexts = [context]
    scaleout_raw, properties = model.featurizer.build_context_arrays(context, machines)
    scaled_features = model.scaler.transform(scaleout_raw)
    scaled_targets = model.normalize_runtimes(runtimes)
    huber = HuberLoss(delta=config.huber_delta)

    # The per-batch graph is structurally identical across epochs, so it is
    # recorded once and replayed (see repro.nn.tape); unfreeze callbacks
    # change the parameter signature and transparently trigger re-recording.
    def build(features_t: Tensor, properties_t: Tensor, targets_t: Tensor):
        prediction, _, _ = model.forward(features_t, properties_t)
        return huber(prediction, targets_t), prediction

    compiler = GraphCompiler(build, params=model.parameters)

    def batch_loss(batch: np.ndarray):
        _, prediction = compiler.run(
            scaled_features[batch], properties[batch], scaled_targets[batch]
        )
        residual = model.denormalize_runtimes(prediction.data - scaled_targets[batch])
        return compiler.loss_handle, {"mae": float(np.abs(residual).mean())}

    trainer_config = TrainerConfig(
        max_epochs=max_epochs or config.finetune_max_epochs,
        batch_size=config.batch_size,
        monitor="mae",
        target=config.finetune_target_mae,
        patience=config.finetune_patience,
        restore_best=True,
        seed=derive_seed(config.seed, "finetune-loop", *seed_path),
    )
    optimizer = Adam(
        model.parameters(),
        lr=config.finetune_lr_max,
        weight_decay=config.finetune_weight_decay,
    )
    scheduler = CyclicLR(
        optimizer,
        min_lr=config.finetune_lr_min,
        max_lr=config.finetune_lr_max,
        cycle_length=config.finetune_lr_cycle,
    )
    trainer = Trainer(model, optimizer, trainer_config, scheduler=scheduler, callbacks=callbacks)
    model.train()
    result = trainer.fit(machines.size, batch_loss)
    model.eval()
    return result


def finetune(
    base_model: BellamyModel,
    context: JobContext,
    machines: Sequence[float],
    runtimes: Sequence[float],
    strategy: FinetuneStrategy = FinetuneStrategy.PARTIAL_UNFREEZE,
    max_epochs: Optional[int] = None,
    copy: bool = True,
) -> FinetuneResult:
    """Optimize a pre-trained model for a concrete context.

    Parameters
    ----------
    base_model:
        The pre-trained model (left untouched when ``copy=True``).
    context:
        The new execution context.
    machines, runtimes:
        The available samples from the new context (>= 1 point).
    strategy:
        Which parameters are adapted / re-initialized.
    max_epochs:
        Optional override of the 2500-epoch cap (quick experiment scale).
    copy:
        Clone the base model first so it can be reused across splits.
    """
    machines = np.asarray(machines, dtype=np.float64).reshape(-1)
    runtimes = np.asarray(runtimes, dtype=np.float64).reshape(-1)
    if machines.size == 0:
        raise ValueError("fine-tuning requires at least one sample; "
                         "use the pre-trained model directly for zero-shot prediction")
    if machines.shape != runtimes.shape:
        raise ValueError("machines and runtimes must have equal length")

    model = _clone_model(base_model) if copy else base_model
    config = model.config
    started = time.perf_counter()

    # Dropout is disabled during fine-tuning (Table I: Dropout 0 %).
    model.autoencoder.encoder.set_dropout(0.0)
    model.autoencoder.decoder.set_dropout(0.0)

    reset_seed = derive_seed(config.seed, "finetune-reset", context.context_id)
    if strategy.resets_z():
        model.z.reset_parameters(reset_seed)
    if strategy.resets_f():
        model.f.reset_parameters(derive_seed(reset_seed, "f"))

    # The auto-encoder is never adapted; z always is; f depends on strategy.
    # A graph encoder (GnnBellamyModel) is a structural prior and is frozen
    # like the auto-encoder.
    model.autoencoder.freeze()
    if hasattr(model, "graph_encoder"):
        model.graph_encoder.freeze()
    model.z.unfreeze()
    callbacks = []
    if strategy.delays_f():
        model.f.freeze()
        budget = max_epochs or config.finetune_max_epochs
        callbacks.append(
            unfreeze_after(model.f, unfreeze_epoch_for(machines.size, budget))
        )
    else:
        model.f.unfreeze()

    result = _run_finetune_loop(
        model,
        context,
        machines,
        runtimes,
        config,
        callbacks,
        max_epochs,
        seed_path=(context.context_id, strategy.value),
    )
    wall = time.perf_counter() - started
    return FinetuneResult(
        model=model,
        strategy=strategy.value,
        epochs_trained=result.epochs_trained,
        wall_seconds=wall,
        final_mae=result.best_metric,
        stop_reason=result.stop_reason,
        train_result=result,
    )


def train_local(
    context: JobContext,
    machines: Sequence[float],
    runtimes: Sequence[float],
    config: Optional[BellamyConfig] = None,
    max_epochs: Optional[int] = None,
    seed: Optional[int] = None,
) -> FinetuneResult:
    """The ``local`` variant: train a fresh model on the context's samples.

    No pre-training data exists, so the auto-encoder is not trained (its
    random codes still give each context a stable signature); the scale-out
    boundaries and the runtime scale are derived from the local samples.
    """
    machines = np.asarray(machines, dtype=np.float64).reshape(-1)
    runtimes = np.asarray(runtimes, dtype=np.float64).reshape(-1)
    if machines.size == 0:
        raise ValueError("local training requires at least one sample")

    config = config or BellamyConfig()
    if seed is not None:
        config = config.with_overrides(seed=seed)
    # No corpus -> no dropout regularization target; keep fine-tune semantics.
    config = config.with_overrides(dropout=0.0)

    started = time.perf_counter()
    model = BellamyModel(config)
    model.fit_scaler(model.featurizer.scaleout_features(machines))
    model.set_runtime_scale(runtimes, percentile=100.0)

    model.autoencoder.freeze()
    model.f.unfreeze()
    model.z.unfreeze()

    result = _run_finetune_loop(
        model,
        context,
        machines,
        runtimes,
        config,
        callbacks=(),
        max_epochs=max_epochs,
        seed_path=(context.context_id, "local"),
    )
    wall = time.perf_counter() - started
    return FinetuneResult(
        model=model,
        strategy="local",
        epochs_trained=result.epochs_trained,
        wall_seconds=wall,
        final_mae=result.best_metric,
        stop_reason=result.stop_reason,
        train_result=result,
    )
