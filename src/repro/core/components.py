"""Bellamy's four neural components (paper §III-B..D, §IV-A).

* ``f`` — scale-out modeling: ``[1/x, log x, x] -> R^F`` (3 -> 16 -> 8),
* ``g`` — encoder: property vector ``R^N -> R^M`` codes (40 -> 8 -> 4),
* ``h`` — decoder: ``R^M -> R^N`` reconstruction (4 -> 8 -> 40, tanh output),
* ``z`` — runtime predictor: combined vector -> scalar (… -> 8 -> 1).

All components are two-layer feed-forward networks with SELU activations;
the auto-encoder waives biases and applies alpha-dropout between its layers.
"""

from __future__ import annotations

from repro.core.config import BellamyConfig
from repro.nn.layers import FeedForward
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import derive_seed


class ScaleOutNetwork(FeedForward):
    """Component ``f``: embeds the scale-out feature vector (paper §III-B)."""

    def __init__(self, config: BellamyConfig) -> None:
        super().__init__(
            in_features=3,
            hidden_features=config.scaleout_hidden_dim,
            out_features=config.scaleout_dim,
            hidden_activation=config.activation,
            output_activation=config.activation,
            bias=True,
            dropout=0.0,
            init=config.init,
            seed=derive_seed(config.seed, "component", "f"),
        )


class PropertyEncoderNetwork(FeedForward):
    """Component ``g``: compresses property vectors to codes (paper §III-C)."""

    def __init__(self, config: BellamyConfig) -> None:
        super().__init__(
            in_features=config.property_vector_size,
            hidden_features=config.hidden_dim,
            out_features=config.encoding_dim,
            hidden_activation=config.activation,
            output_activation=config.activation,
            bias=False,  # "Both functions waive additional additive biases"
            dropout=config.dropout,
            init=config.init,
            seed=derive_seed(config.seed, "component", "g"),
        )


class PropertyDecoderNetwork(FeedForward):
    """Component ``h``: reconstructs property vectors from codes.

    The output activation is tanh, "in line with the nature of our vectorized
    properties" (bits in {0, 1} and unit-sphere coordinates in [-1, 1]).
    """

    def __init__(self, config: BellamyConfig) -> None:
        super().__init__(
            in_features=config.encoding_dim,
            hidden_features=config.hidden_dim,
            out_features=config.property_vector_size,
            hidden_activation=config.activation,
            output_activation="tanh",
            bias=False,
            dropout=config.dropout,
            init=config.init,
            seed=derive_seed(config.seed, "component", "h"),
        )


class RuntimePredictorNetwork(FeedForward):
    """Component ``z``: maps the combined vector to the runtime (paper §III-D)."""

    def __init__(self, config: BellamyConfig) -> None:
        super().__init__(
            in_features=config.combined_dim,
            hidden_features=config.hidden_dim,
            out_features=config.out_dim,
            hidden_activation=config.activation,
            output_activation=config.activation,
            bias=True,
            dropout=0.0,
            init=config.init,
            seed=derive_seed(config.seed, "component", "z"),
        )


class AutoEncoder(Module):
    """Encoder/decoder pair with convenience round-trip helpers."""

    def __init__(self, config: BellamyConfig) -> None:
        super().__init__()
        self.encoder = PropertyEncoderNetwork(config)
        self.decoder = PropertyDecoderNetwork(config)

    def encode(self, properties: Tensor) -> Tensor:
        """Codes for a batch of property vectors."""
        return self.encoder(properties)

    def forward(self, properties: Tensor) -> Tensor:
        """Reconstruction of a batch of property vectors."""
        return self.decoder(self.encoder(properties))
