"""Featurization: executions -> (scale-out features, property matrices).

Bridges the data layer and the neural model. Each execution sample yields

* a raw scale-out feature vector ``[1/x, log x, x]`` (min-max scaled inside
  the model, boundaries fixed at training time), and
* a property matrix of shape ``(P, N)`` holding the encoded essential and
  optional descriptive properties of its context (P = m + n_optional).

Context encodings are cached by context id — they are constant per context
and their computation (hashing, binarization) dominates featurization cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BellamyConfig
from repro.data.dataset import ExecutionDataset
from repro.data.schema import JobContext
from repro.encoding.properties import PropertyEncoder
from repro.encoding.scaleout import bellamy_features


class BellamyFeaturizer:
    """Builds model inputs from contexts and scale-outs."""

    def __init__(self, config: BellamyConfig) -> None:
        self.config = config
        self.encoder = PropertyEncoder(vector_size=config.property_vector_size)
        self._context_cache: Dict[str, np.ndarray] = {}

    @property
    def properties_per_sample(self) -> int:
        """Number of property vectors per sample (essential + optional)."""
        return self.config.n_essential + (3 if self.config.use_optional else 0)

    def property_values(self, context: JobContext) -> List[object]:
        """Raw property values of one context, essential first.

        Subclasses may append further optional properties (e.g. the dataflow
        graph serialization in :mod:`repro.core.graph_model`); optional codes
        are mean-pooled, so extra entries need no architecture change.
        """
        essential = context.essential_properties()
        if len(essential) != self.config.n_essential:
            raise ValueError(
                f"context provides {len(essential)} essential properties, "
                f"config expects {self.config.n_essential}"
            )
        values: List[object] = list(essential)
        if self.config.use_optional:
            values.extend(context.optional_properties())
        return values

    def encode_context(self, context: JobContext) -> np.ndarray:
        """Property matrix ``(P, N)`` of one context (cached)."""
        cached = self._context_cache.get(context.context_id)
        if cached is not None:
            return cached
        matrix = self.encoder.encode_properties(self.property_values(context))
        self._context_cache[context.context_id] = matrix
        return matrix

    def scaleout_features(self, machines: Sequence[float]) -> np.ndarray:
        """Raw (unscaled) scale-out feature matrix ``(n, 3)``."""
        return bellamy_features(np.asarray(machines, dtype=np.float64))

    def build_arrays(
        self, dataset: ExecutionDataset
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arrays for a whole dataset.

        Returns
        -------
        (scaleout_raw, properties, runtimes):
            ``(n, 3)`` raw scale-out features, ``(n, P, N)`` property
            matrices, and ``(n,)`` runtimes in seconds.
        """
        if len(dataset) == 0:
            raise ValueError("cannot featurize an empty dataset")
        scaleout_raw = self.scaleout_features(dataset.machines_array())
        properties = np.stack([self.encode_context(e.context) for e in dataset])
        runtimes = dataset.runtimes_array()
        return scaleout_raw, properties, runtimes

    def build_context_arrays(
        self, context: JobContext, machines: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Arrays for predicting one context at several scale-outs."""
        machines = np.asarray(machines, dtype=np.float64).reshape(-1)
        scaleout_raw = self.scaleout_features(machines)
        matrix = self.encode_context(context)
        # A read-only broadcast view: every sample shares the cached context
        # matrix, so no (n, P, N) copy is materialized here — downstream
        # consumers only read (or fancy-index, which copies).
        properties = np.broadcast_to(matrix, (machines.size,) + matrix.shape)
        return scaleout_raw, properties
