"""Graph-aware Bellamy variants (paper §V, future work).

Two integration levels of dataflow-graph information:

``GraphBellamyModel`` (graph-as-property)
    The canonical text serialization of the job's dataflow graph
    (:func:`repro.dataflow.features.graph_text`) is appended as one more
    *optional* descriptive property. Optional codes are mean-pooled
    (paper Eq. 6), so the architecture, the training pipeline, persistence,
    and all fine-tuning strategies work unchanged — only the featurizer
    differs. This is the lightest-weight answer to the paper's closing
    question of how to incorporate graph information.

``GnnBellamyModel`` (learned graph code)
    A :class:`~repro.dataflow.gnn.GraphEncoder` embeds the operator DAG into
    a dense code that joins the combined vector next to the property codes
    (extending paper Eq. 5 by one block). The predictor ``z`` is rebuilt with
    the wider input; everything else is inherited. Pre-train via
    :func:`pretrain_gnn` (the shared pipeline with the graph-aware factory).

Both models resolve graphs from the job context (algorithm + parameters)
through :func:`repro.dataflow.builders.graph_for_context`, so no new data
plumbing is required anywhere in the evaluation stack.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import BellamyConfig
from repro.core.features import BellamyFeaturizer
from repro.core.model import BellamyModel
from repro.core.pretraining import PretrainResult, pretrain
from repro.data.dataset import ExecutionDataset
from repro.data.schema import JobContext
from repro.dataflow.builders import graph_for_context
from repro.dataflow.features import graph_text
from repro.dataflow.gnn import GraphEncoder
from repro.nn.layers import FeedForward
from repro.nn.tensor import Tensor, cat
from repro.utils.rng import derive_seed


class GraphPropertyFeaturizer(BellamyFeaturizer):
    """Featurizer appending the dataflow-graph text as an optional property."""

    def property_values(self, context: JobContext) -> List[object]:
        """Essential + optional values + the canonical graph serialization."""
        values = super().property_values(context)
        if self.config.use_optional:
            values.append(graph_text(graph_for_context(context)))
        return values


class GraphBellamyModel(BellamyModel):
    """Bellamy with the dataflow graph as an additional descriptive property.

    Drop-in compatible with every pipeline that handles
    :class:`~repro.core.model.BellamyModel`: pre-training, fine-tuning
    (cloning preserves the class), persistence, and resource selection.
    """

    def __init__(self, config: Optional[BellamyConfig] = None) -> None:
        super().__init__(config)
        self.featurizer = GraphPropertyFeaturizer(self.config)


class GnnBellamyModel(BellamyModel):
    """Bellamy with a learned graph code in the combined vector.

    The combined vector (paper Eq. 5) gains one block::

        r = e  ⊕  codes(essential)  ⊕  mean(codes(optional))  ⊕  gnn(graph)

    and the runtime predictor ``z`` is rebuilt for the wider input. The graph
    encoder trains end-to-end with the runtime objective; during fine-tuning
    it is frozen together with the auto-encoder (the graph is a structural
    prior, not context-specific evidence).
    """

    def __init__(self, config: Optional[BellamyConfig] = None) -> None:
        super().__init__(config)
        config = self.config
        self.graph_encoder = GraphEncoder(
            out_dim=config.encoding_dim,
            hidden_dim=config.hidden_dim,
            activation=config.activation,
            init=config.init,
            seed=derive_seed(config.seed, "component", "gnn"),
        )
        # Rebuild z for the widened combined vector.
        self.z = FeedForward(
            in_features=config.combined_dim + config.encoding_dim,
            hidden_features=config.hidden_dim,
            out_features=config.out_dim,
            hidden_activation=config.activation,
            output_activation=config.activation,
            bias=True,
            init=config.init,
            seed=derive_seed(config.seed, "component", "z-graph"),
        )
        self._graph_cache: dict = {}
        #: Contexts of the next ``forward`` batch (a single context is
        #: broadcast); managed by predict()/pretrain_gnn()/the finetune loop.
        self.pending_contexts: Optional[List[JobContext]] = None

    # BellamyModel.forward handles (scaleout, properties); the graph-aware
    # forward needs the contexts of the batch as well.
    def forward_with_contexts(
        self,
        scaleout_scaled: Tensor,
        properties: Tensor,
        contexts: List[JobContext],
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Forward pass with per-sample contexts for graph resolution."""
        batch, n_props, vec_size = properties.shape
        if len(contexts) != batch:
            raise ValueError(f"{len(contexts)} contexts for a batch of {batch}")
        m = self.config.n_essential
        embedding = self.f(scaleout_scaled)

        flat = properties.reshape(batch * n_props, vec_size)
        codes = self.autoencoder.encode(flat)
        reconstruction = self.autoencoder.decoder(codes)
        codes3 = codes.reshape(batch, n_props, self.config.encoding_dim)

        essential = codes3[:, :m, :].reshape(batch, m * self.config.encoding_dim)
        parts = [embedding, essential]
        if self.config.use_optional:
            parts.append(codes3[:, m:, :].mean(axis=1))

        graphs = [self.graph_cached(c) for c in contexts]
        parts.append(self.graph_encoder(graphs))

        combined = cat(parts, axis=1)
        prediction = self.z(combined).reshape(batch)
        return prediction, reconstruction, flat

    def graph_cached(self, context: JobContext):
        """The context's dataflow graph (cached by context id)."""
        graph = self._graph_cache.get(context.context_id)
        if graph is None:
            graph = graph_for_context(context)
            self._graph_cache[context.context_id] = graph
        return graph

    def forward(
        self, scaleout_scaled: Tensor, properties: Tensor
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Context-free forward: uses the single pending context, if set.

        The shared training/prediction pipelines call ``forward(features,
        properties)``; the surrounding code routes context information by
        setting :attr:`pending_contexts` first (see :func:`pretrain_gnn` and
        :meth:`predict`). A model used without that information raises.
        """
        contexts = getattr(self, "pending_contexts", None)
        if contexts is None:
            raise RuntimeError(
                "GnnBellamyModel.forward needs contexts; set pending_contexts "
                "or call forward_with_contexts"
            )
        batch = scaleout_scaled.shape[0]
        if len(contexts) == 1 and batch > 1:
            contexts = list(contexts) * batch
        return self.forward_with_contexts(scaleout_scaled, properties, list(contexts))

    def predict(self, context: JobContext, machines) -> np.ndarray:
        """Predict runtimes (seconds) with the graph code in the loop."""
        self.pending_contexts = [context]
        try:
            return super().predict(context, machines)
        finally:
            self.pending_contexts = None


def pretrain_gnn(
    dataset: ExecutionDataset,
    algorithm: str,
    config: Optional[BellamyConfig] = None,
    variant: str = "gnn",
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
) -> PretrainResult:
    """Pre-train a :class:`GnnBellamyModel` on one algorithm's corpus.

    Mirrors :func:`repro.core.pretraining.pretrain` (joint Huber +
    reconstruction objective, train/validation split, best-state restore)
    with per-batch context routing for the graph encoder. Kept as a separate
    loop because the shared pipeline's batch closure sees only array indices,
    while the graph path needs the execution contexts behind them.
    """
    import time as _time

    from repro.core.config import BellamyConfig as _Config
    from repro.nn.losses import HuberLoss, JointLoss, MSELoss
    from repro.nn.optim import Adam
    from repro.nn.tensor import no_grad
    from repro.nn.trainer import Trainer, TrainerConfig
    from repro.utils.rng import new_rng

    config = config or _Config()
    if seed is not None:
        config = config.with_overrides(seed=seed)
    if epochs is not None:
        config = config.with_overrides(pretrain_epochs=epochs)

    corpus = dataset.for_algorithm(algorithm)
    if len(corpus) == 0:
        raise ValueError(f"no executions of algorithm {algorithm!r} in the corpus")

    started = _time.perf_counter()
    model = GnnBellamyModel(config)
    contexts = [e.context for e in corpus]
    scaleout_raw, properties, runtimes = model.featurizer.build_arrays(corpus)
    model.fit_scaler(scaleout_raw)
    model.set_runtime_scale(runtimes)
    scaled_features = model.scaler.transform(scaleout_raw)
    scaled_targets = model.normalize_runtimes(runtimes)

    rng = new_rng(derive_seed(config.seed, "pretrain-split", algorithm, "gnn"))
    permutation = rng.permutation(len(corpus))
    n_val = int(round(config.validation_fraction * len(corpus)))
    val_idx, train_idx = permutation[:n_val], permutation[n_val:]
    if train_idx.size == 0:
        raise ValueError("validation fraction leaves no training data")

    joint_loss = JointLoss(
        [
            ("runtime", HuberLoss(delta=config.huber_delta), 1.0),
            ("reconstruction", MSELoss(), config.reconstruction_weight),
        ]
    )

    def batch_loss(batch: np.ndarray):
        rows = train_idx[batch]
        prediction, reconstruction, flat = model.forward_with_contexts(
            Tensor(scaled_features[rows]),
            Tensor(properties[rows]),
            [contexts[i] for i in rows],
        )
        target = Tensor(scaled_targets[rows])
        total, parts = joint_loss(
            {
                "runtime": (prediction, target),
                "reconstruction": (reconstruction, flat.detach()),
            }
        )
        residual = model.denormalize_runtimes(prediction.data - scaled_targets[rows])
        return total, {
            "mae": float(np.abs(residual).mean()),
            "huber": parts["runtime"],
            "reconstruction_mse": parts["reconstruction"],
        }

    evaluate = None
    if val_idx.size:

        def evaluate():
            was_training = model.training
            model.eval()
            try:
                with no_grad():
                    prediction, _, _ = model.forward_with_contexts(
                        Tensor(scaled_features[val_idx]),
                        Tensor(properties[val_idx]),
                        [contexts[i] for i in val_idx],
                    )
            finally:
                model.train(was_training)
            residual = model.denormalize_runtimes(prediction.data - scaled_targets[val_idx])
            return {"val_mae": float(np.abs(residual).mean())}

    trainer_config = TrainerConfig(
        max_epochs=config.pretrain_epochs,
        batch_size=config.batch_size,
        monitor="val_mae" if val_idx.size else "mae",
        restore_best=True,
        seed=derive_seed(config.seed, "pretrain-loop", algorithm, "gnn"),
    )
    optimizer = Adam(
        model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
    )
    trainer = Trainer(model, optimizer, trainer_config)
    train_result = trainer.fit(train_idx.size, batch_loss, evaluate=evaluate)

    return PretrainResult(
        model=model,
        algorithm=algorithm,
        variant=variant,
        n_samples=len(corpus),
        n_contexts=len(corpus.contexts()),
        wall_seconds=_time.perf_counter() - started,
        train_result=train_result,
        validation_mae=train_result.best_metric if val_idx.size else None,
        hyperparameters={
            "dropout": config.dropout,
            "learning_rate": config.learning_rate,
            "weight_decay": config.weight_decay,
        },
    )
