"""Pre-training of Bellamy models on cross-context corpora (paper §III-A, IV-A).

A *general* model is trained on all available executions of one processing
algorithm — across contexts — by jointly minimizing the runtime prediction
error (Huber) and the auto-encoder reconstruction error (MSE). The three
corpus policies of the evaluation are provided:

* ``full``      — every historical execution of the algorithm,
* ``filtered``  — only executions from contexts *substantially different*
  from the target context (different node type, dataset characteristics, and
  job parameters; dataset size at least 20 % larger or smaller),
* ``local``     — no corpus at all (no pre-training; the model is trained
  from scratch on the target context's few samples, auto-encoder untouched).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.config import (
    PRETRAIN_SEARCH_SAMPLES,
    PRETRAIN_SEARCH_SPACE,
    BellamyConfig,
)
from repro.core.model import BellamyModel
from repro.data.dataset import ExecutionDataset
from repro.data.schema import JobContext
from repro.nn.losses import HuberLoss, MSELoss
from repro.nn.optim import Adam
from repro.nn.tape import GraphCompiler
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trainer import TrainResult, Trainer, TrainerConfig
from repro.utils.rng import derive_seed, new_rng


@dataclass
class PretrainResult:
    """A pre-trained model plus training diagnostics."""

    model: BellamyModel
    algorithm: str
    variant: str
    n_samples: int
    n_contexts: int
    wall_seconds: float
    train_result: Optional[TrainResult] = None
    validation_mae: Optional[float] = None
    hyperparameters: Dict[str, float] = field(default_factory=dict)


def filter_distinct_contexts(
    dataset: ExecutionDataset,
    target: JobContext,
    size_margin: float = 0.20,
) -> ExecutionDataset:
    """The ``filtered`` corpus: contexts as different as possible from ``target``.

    Keeps executions whose context differs from the target in node type,
    dataset characteristics, *and* job parameters, and whose dataset size is
    at least ``size_margin`` larger or smaller (paper §IV-C1).
    """

    def is_distinct(execution) -> bool:
        context = execution.context
        if context.context_id == target.context_id:
            return False
        if context.node_type == target.node_type:
            return False
        if context.dataset_characteristics == target.dataset_characteristics:
            return False
        if context.params_text == target.params_text:
            return False
        relative = abs(context.dataset_mb - target.dataset_mb) / target.dataset_mb
        return relative >= size_margin

    return dataset.filter(is_distinct)


def _mae_seconds(model: BellamyModel, prediction: Tensor, target_scaled: np.ndarray) -> float:
    residual = model.denormalize_runtimes(prediction.data - target_scaled)
    return float(np.abs(residual).mean())


def pretrain(
    dataset: ExecutionDataset,
    algorithm: Optional[str],
    config: Optional[BellamyConfig] = None,
    variant: str = "full",
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
    model_factory: Optional[Callable[[BellamyConfig], BellamyModel]] = None,
) -> PretrainResult:
    """Pre-train a Bellamy model on all executions of ``algorithm`` in ``dataset``.

    Parameters
    ----------
    dataset:
        The historical-execution corpus (already corpus-filtered if desired).
    algorithm:
        Algorithm whose executions form the corpus. ``None`` trains on the
        whole dataset regardless of algorithm — the *cross-algorithm* mode of
        :mod:`repro.core.cross_algorithm` (paper §V, future work), enabled by
        the job-name property that lets the model tell algorithms apart.
    config:
        Model/training configuration (defaults to Table I).
    variant:
        Label recorded in the result ("full", "filtered", ...).
    epochs:
        Optional override of ``config.pretrain_epochs`` (the experiment
        harness uses this for its quick scale).
    seed:
        Optional override of ``config.seed``.
    model_factory:
        Builds the model from the configuration (default:
        :class:`~repro.core.model.BellamyModel`). Extension models — e.g.
        the graph-aware variants in :mod:`repro.core.graph_model` — pass
        their own constructor here and reuse the whole training pipeline.
    """
    config = config or BellamyConfig()
    if seed is not None:
        config = config.with_overrides(seed=seed)
    if epochs is not None:
        config = config.with_overrides(pretrain_epochs=epochs)

    corpus = dataset.for_algorithm(algorithm) if algorithm is not None else dataset
    if len(corpus) == 0:
        raise ValueError(f"no executions of algorithm {algorithm!r} in the corpus")

    started = time.perf_counter()
    model = (model_factory or BellamyModel)(config)
    scaleout_raw, properties, runtimes = model.featurizer.build_arrays(corpus)
    model.fit_scaler(scaleout_raw)
    model.set_runtime_scale(runtimes)
    scaled_features = model.scaler.transform(scaleout_raw)
    scaled_targets = model.normalize_runtimes(runtimes)

    # Train/validation split for model selection / monitoring.
    rng = new_rng(derive_seed(config.seed, "pretrain-split", str(algorithm)))
    n = len(corpus)
    permutation = rng.permutation(n)
    n_val = int(round(config.validation_fraction * n))
    val_idx = permutation[:n_val]
    train_idx = permutation[n_val:]
    if train_idx.size == 0:
        raise ValueError("validation fraction leaves no training data")

    huber = HuberLoss(delta=config.huber_delta)
    mse = MSELoss()
    reconstruction_weight = config.reconstruction_weight

    # The joint objective as a compiled graph (see repro.nn.tape): the term
    # tensors are returned so per-term metrics stay fresh on tape replays.
    def build(features_t: Tensor, properties_t: Tensor, targets_t: Tensor):
        prediction, reconstruction, flat = model.forward(features_t, properties_t)
        runtime_term = huber(prediction, targets_t)
        reconstruction_term = mse(reconstruction, flat.detach())
        total = runtime_term * 1.0 + reconstruction_term * reconstruction_weight
        return total, prediction, runtime_term, reconstruction_term

    compiler = GraphCompiler(build, params=model.parameters)

    def batch_loss(batch: np.ndarray):
        rows = train_idx[batch]
        _, prediction, runtime_term, reconstruction_term = compiler.run(
            scaled_features[rows], properties[rows], scaled_targets[rows]
        )
        metrics = {
            "mae": _mae_seconds(model, prediction, scaled_targets[rows]),
            "huber": runtime_term.item(),
            "reconstruction_mse": reconstruction_term.item(),
        }
        return compiler.loss_handle, metrics

    evaluate = None
    if val_idx.size:
        # The validation forward replays a (gradient-free) compiled graph of
        # its own; it is recorded in eval mode, so dropout stays disabled.
        def build_eval(features_t: Tensor, properties_t: Tensor):
            prediction, _, _ = model.forward(features_t, properties_t)
            return (prediction,)

        eval_compiler = GraphCompiler(build_eval, params=model.parameters)

        def evaluate() -> Dict[str, float]:
            was_training = model.training
            model.eval()
            try:
                with no_grad():
                    (prediction,) = eval_compiler.run(
                        scaled_features[val_idx], properties[val_idx]
                    )
            finally:
                model.train(was_training)
            return {"val_mae": _mae_seconds(model, prediction, scaled_targets[val_idx])}

    trainer_config = TrainerConfig(
        max_epochs=config.pretrain_epochs,
        batch_size=config.batch_size,
        monitor="val_mae" if val_idx.size else "mae",
        restore_best=True,
        seed=derive_seed(config.seed, "pretrain-loop", str(algorithm)),
    )
    optimizer = Adam(
        model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
    )
    trainer = Trainer(model, optimizer, trainer_config)
    train_result = trainer.fit(train_idx.size, batch_loss, evaluate=evaluate)

    wall = time.perf_counter() - started
    return PretrainResult(
        model=model,
        algorithm=algorithm or "*",
        variant=variant,
        n_samples=n,
        n_contexts=len(corpus.contexts()),
        wall_seconds=wall,
        train_result=train_result,
        validation_mae=train_result.best_metric if val_idx.size else None,
        hyperparameters={
            "dropout": config.dropout,
            "learning_rate": config.learning_rate,
            "weight_decay": config.weight_decay,
        },
    )


def pretrain_with_search(
    dataset: ExecutionDataset,
    algorithm: str,
    base_config: Optional[BellamyConfig] = None,
    n_samples: int = PRETRAIN_SEARCH_SAMPLES,
    variant: str = "full",
    epochs: Optional[int] = None,
    seed: int = 0,
) -> PretrainResult:
    """Hyperparameter search over the Table I grid (paper: 12 samples).

    Uses random search from :mod:`repro.tune` over dropout, learning rate,
    and weight decay, selecting the configuration with the lowest validation
    MAE — the offline analogue of the paper's Tune/Optuna search.
    """
    from repro.tune.search import RandomSearch
    from repro.tune.space import Categorical, SearchSpace

    base_config = base_config or BellamyConfig()
    space = SearchSpace(
        {name: Categorical(values) for name, values in PRETRAIN_SEARCH_SPACE.items()}
    )
    search = RandomSearch(space, seed=derive_seed(seed, "pretrain-search", algorithm))

    best: Optional[PretrainResult] = None
    for trial_index, params in enumerate(search.suggest(n_samples)):
        config = base_config.with_overrides(
            dropout=float(params["dropout"]),
            learning_rate=float(params["learning_rate"]),
            weight_decay=float(params["weight_decay"]),
            seed=derive_seed(seed, "pretrain-trial", algorithm, trial_index),
        )
        result = pretrain(
            dataset, algorithm, config=config, variant=variant, epochs=epochs
        )
        score = result.validation_mae
        if score is None:
            score = result.train_result.best_metric if result.train_result else float("inf")
        if best is None or score < _score_of(best):
            best = result
    assert best is not None  # n_samples >= 1 guarantees at least one trial
    return best


def _score_of(result: PretrainResult) -> float:
    if result.validation_mae is not None:
        return result.validation_mae
    if result.train_result is not None:
        return result.train_result.best_metric
    return float("inf")
