"""Pre-training of Bellamy models on cross-context corpora (paper §III-A, IV-A).

A *general* model is trained on all available executions of one processing
algorithm — across contexts — by jointly minimizing the runtime prediction
error (Huber) and the auto-encoder reconstruction error (MSE). The three
corpus policies of the evaluation are provided:

* ``full``      — every historical execution of the algorithm,
* ``filtered``  — only executions from contexts *substantially different*
  from the target context (different node type, dataset characteristics, and
  job parameters; dataset size at least 20 % larger or smaller),
* ``local``     — no corpus at all (no pre-training; the model is trained
  from scratch on the target context's few samples, auto-encoder untouched).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import (
    PRETRAIN_SEARCH_SAMPLES,
    PRETRAIN_SEARCH_SPACE,
    BellamyConfig,
)
from repro.core.model import BellamyModel
from repro.data.dataset import ExecutionDataset
from repro.data.schema import JobContext
from repro.nn.batched import (
    BatchedAdam,
    BatchedModelBank,
    GroupProgress,
    ParamSnapshots,
    huber_loss_batched,
    mse_loss_batched,
)
from repro.nn.losses import HuberLoss, MSELoss
from repro.nn.optim import Adam
from repro.nn.tape import GraphCompiler, legacy_engine
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trainer import TrainResult, Trainer, TrainerConfig
from repro.utils.rng import derive_seed, new_rng


@dataclass
class PretrainResult:
    """A pre-trained model plus training diagnostics."""

    model: BellamyModel
    algorithm: str
    variant: str
    n_samples: int
    n_contexts: int
    wall_seconds: float
    train_result: Optional[TrainResult] = None
    validation_mae: Optional[float] = None
    hyperparameters: Dict[str, float] = field(default_factory=dict)


def filter_distinct_contexts(
    dataset: ExecutionDataset,
    target: JobContext,
    size_margin: float = 0.20,
) -> ExecutionDataset:
    """The ``filtered`` corpus: contexts as different as possible from ``target``.

    Keeps executions whose context differs from the target in node type,
    dataset characteristics, *and* job parameters, and whose dataset size is
    at least ``size_margin`` larger or smaller (paper §IV-C1).
    """

    def is_distinct(execution) -> bool:
        context = execution.context
        if context.context_id == target.context_id:
            return False
        if context.node_type == target.node_type:
            return False
        if context.dataset_characteristics == target.dataset_characteristics:
            return False
        if context.params_text == target.params_text:
            return False
        relative = abs(context.dataset_mb - target.dataset_mb) / target.dataset_mb
        return relative >= size_margin

    return dataset.filter(is_distinct)


def _mae_seconds(model: BellamyModel, prediction: Tensor, target_scaled: np.ndarray) -> float:
    residual = model.denormalize_runtimes(prediction.data - target_scaled)
    return float(np.abs(residual).mean())


def pretrain(
    dataset: ExecutionDataset,
    algorithm: Optional[str],
    config: Optional[BellamyConfig] = None,
    variant: str = "full",
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
    model_factory: Optional[Callable[[BellamyConfig], BellamyModel]] = None,
) -> PretrainResult:
    """Pre-train a Bellamy model on all executions of ``algorithm`` in ``dataset``.

    Parameters
    ----------
    dataset:
        The historical-execution corpus (already corpus-filtered if desired).
    algorithm:
        Algorithm whose executions form the corpus. ``None`` trains on the
        whole dataset regardless of algorithm — the *cross-algorithm* mode of
        :mod:`repro.core.cross_algorithm` (paper §V, future work), enabled by
        the job-name property that lets the model tell algorithms apart.
    config:
        Model/training configuration (defaults to Table I).
    variant:
        Label recorded in the result ("full", "filtered", ...).
    epochs:
        Optional override of ``config.pretrain_epochs`` (the experiment
        harness uses this for its quick scale).
    seed:
        Optional override of ``config.seed``.
    model_factory:
        Builds the model from the configuration (default:
        :class:`~repro.core.model.BellamyModel`). Extension models — e.g.
        the graph-aware variants in :mod:`repro.core.graph_model` — pass
        their own constructor here and reuse the whole training pipeline.
    """
    config = config or BellamyConfig()
    if seed is not None:
        config = config.with_overrides(seed=seed)
    if epochs is not None:
        config = config.with_overrides(pretrain_epochs=epochs)

    corpus = dataset.for_algorithm(algorithm) if algorithm is not None else dataset
    if len(corpus) == 0:
        raise ValueError(f"no executions of algorithm {algorithm!r} in the corpus")

    started = time.perf_counter()
    model = (model_factory or BellamyModel)(config)
    scaleout_raw, properties, runtimes = model.featurizer.build_arrays(corpus)
    model.fit_scaler(scaleout_raw)
    model.set_runtime_scale(runtimes)
    scaled_features = model.scaler.transform(scaleout_raw)
    scaled_targets = model.normalize_runtimes(runtimes)

    # Train/validation split for model selection / monitoring.
    rng = new_rng(derive_seed(config.seed, "pretrain-split", str(algorithm)))
    n = len(corpus)
    permutation = rng.permutation(n)
    n_val = int(round(config.validation_fraction * n))
    val_idx = permutation[:n_val]
    train_idx = permutation[n_val:]
    if train_idx.size == 0:
        raise ValueError("validation fraction leaves no training data")

    huber = HuberLoss(delta=config.huber_delta)
    mse = MSELoss()
    reconstruction_weight = config.reconstruction_weight

    # The joint objective as a compiled graph (see repro.nn.tape): the term
    # tensors are returned so per-term metrics stay fresh on tape replays.
    def build(features_t: Tensor, properties_t: Tensor, targets_t: Tensor):
        prediction, reconstruction, flat = model.forward(features_t, properties_t)
        runtime_term = huber(prediction, targets_t)
        reconstruction_term = mse(reconstruction, flat.detach())
        total = runtime_term * 1.0 + reconstruction_term * reconstruction_weight
        return total, prediction, runtime_term, reconstruction_term

    compiler = GraphCompiler(build, params=model.parameters)

    def batch_loss(batch: np.ndarray):
        rows = train_idx[batch]
        _, prediction, runtime_term, reconstruction_term = compiler.run(
            scaled_features[rows], properties[rows], scaled_targets[rows]
        )
        metrics = {
            "mae": _mae_seconds(model, prediction, scaled_targets[rows]),
            "huber": runtime_term.item(),
            "reconstruction_mse": reconstruction_term.item(),
        }
        return compiler.loss_handle, metrics

    evaluate = None
    if val_idx.size:
        # The validation forward replays a (gradient-free) compiled graph of
        # its own; it is recorded in eval mode, so dropout stays disabled.
        def build_eval(features_t: Tensor, properties_t: Tensor):
            prediction, _, _ = model.forward(features_t, properties_t)
            return (prediction,)

        eval_compiler = GraphCompiler(build_eval, params=model.parameters)

        def evaluate() -> Dict[str, float]:
            was_training = model.training
            model.eval()
            try:
                with no_grad():
                    (prediction,) = eval_compiler.run(
                        scaled_features[val_idx], properties[val_idx]
                    )
            finally:
                model.train(was_training)
            return {"val_mae": _mae_seconds(model, prediction, scaled_targets[val_idx])}

    trainer_config = TrainerConfig(
        max_epochs=config.pretrain_epochs,
        batch_size=config.batch_size,
        monitor="val_mae" if val_idx.size else "mae",
        restore_best=True,
        seed=derive_seed(config.seed, "pretrain-loop", str(algorithm)),
    )
    optimizer = Adam(
        model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
    )
    trainer = Trainer(model, optimizer, trainer_config)
    train_result = trainer.fit(train_idx.size, batch_loss, evaluate=evaluate)

    wall = time.perf_counter() - started
    return PretrainResult(
        model=model,
        algorithm=algorithm or "*",
        variant=variant,
        n_samples=n,
        n_contexts=len(corpus.contexts()),
        wall_seconds=wall,
        train_result=train_result,
        validation_mae=train_result.best_metric if val_idx.size else None,
        hyperparameters={
            "dropout": config.dropout,
            "learning_rate": config.learning_rate,
            "weight_decay": config.weight_decay,
        },
    )


@dataclass
class _SweepEntry:
    """One prepared group of a batched pre-training sweep."""

    index: int
    algorithm: Optional[str]
    config: BellamyConfig
    model: BellamyModel
    n_samples: int
    n_contexts: int
    scaled_features: np.ndarray = field(default=None, repr=False)
    properties: np.ndarray = field(default=None, repr=False)
    scaled_targets: np.ndarray = field(default=None, repr=False)
    train_idx: np.ndarray = field(default=None, repr=False)
    val_idx: np.ndarray = field(default=None, repr=False)

    def arch_key(self) -> tuple:
        """Groups are batchable together iff this key matches."""
        return (
            tuple((n, p.data.shape) for n, p in self.model.named_parameters()),
            self.properties.shape[1:],
            self.config.n_essential,
            self.config.encoding_dim,
            self.config.use_optional,
        )


def _run_pretrain_loop_batch(entries: List[_SweepEntry]) -> List[TrainResult]:
    """Lockstep joint-objective optimization of N prepared groups on one tape.

    A transliteration of the :func:`pretrain` training loop with the group
    axis vectorized: per-group shuffled batch orders over each group's own
    train split, the joint Huber + reconstruction-MSE objective evaluated
    per group slot, one shared full-batch validation replay per epoch, a
    masked per-group Adam step, and best-state snapshots on the monitored
    metric (``val_mae`` where a group has validation rows, ``mae``
    otherwise). Each group's trajectory is bit-identical to its own serial
    :func:`pretrain` run.
    """
    n_groups = len(entries)
    models = [e.model for e in entries]
    configs = [e.config for e in entries]
    bank = BatchedModelBank(models)
    deltas = np.array([c.huber_delta for c in configs], dtype=np.float64)
    recon_w = np.array([c.reconstruction_weight for c in configs], dtype=np.float64)

    ns = [int(e.train_idx.size) for e in entries]
    batch_sizes = [int(c.batch_size) for c in configs]
    max_epochs_list = [int(c.pretrain_epochs) for c in configs]
    width = max(min(bs, n) for bs, n in zip(batch_sizes, ns))
    n_props, vec_size = entries[0].properties.shape[1:]

    feats_buf = np.zeros((n_groups, width, 3), dtype=np.float64)
    props_buf = np.zeros((n_groups, width, n_props, vec_size), dtype=np.float64)
    targ_buf = np.zeros((n_groups, width), dtype=np.float64)
    counts = np.zeros(n_groups, dtype=np.float64)
    dirty = [False] * n_groups

    def build(features_t: Tensor, properties_t: Tensor, targets_t: Tensor, counts_t: Tensor):
        prediction, reconstruction, flat = bank.forward(
            features_t, properties_t, counts=counts_t
        )
        counts_flat = counts_t * float(n_props)
        runtime_term = huber_loss_batched(
            prediction, targets_t, delta=deltas, counts=counts_t
        )
        reconstruction_term = mse_loss_batched(
            reconstruction, flat.detach(), counts=counts_flat
        )
        total = runtime_term * 1.0 + reconstruction_term * recon_w
        return total, prediction, runtime_term, reconstruction_term

    compiler = GraphCompiler(build, params=bank.parameters)
    params = bank.parameters()
    optimizer = BatchedAdam(
        params,
        n_groups,
        lr=np.array([c.learning_rate for c in configs], dtype=np.float64),
        weight_decay=np.array([c.weight_decay for c in configs], dtype=np.float64),
    )

    n_vals = [int(e.val_idx.size) for e in entries]
    has_val = [n > 0 for n in n_vals]
    evaluate = None
    if any(has_val):
        v_width = max(n_vals)
        vfeats = np.zeros((n_groups, v_width, 3), dtype=np.float64)
        vprops = np.zeros((n_groups, v_width, n_props, vec_size), dtype=np.float64)
        vcounts = np.array(n_vals, dtype=np.float64)
        vtargets = [e.scaled_targets[e.val_idx] for e in entries]
        for g, entry in enumerate(entries):
            rows = entry.val_idx
            vfeats[g, : rows.size] = entry.scaled_features[rows]
            vprops[g, : rows.size] = entry.properties[rows]

        def build_eval(features_t: Tensor, properties_t: Tensor, counts_t: Tensor):
            prediction, _, _ = bank.forward(features_t, properties_t, counts=counts_t)
            return (prediction,)

        eval_compiler = GraphCompiler(build_eval, params=bank.parameters)

        def evaluate() -> Dict[int, float]:
            was_training = bank.training
            bank.eval()
            try:
                with no_grad():
                    (prediction,) = eval_compiler.run(vfeats, vprops, vcounts)
            finally:
                bank.train(was_training)
            out: Dict[int, float] = {}
            for g in range(n_groups):
                if not has_val[g]:
                    continue
                residual = models[g].denormalize_runtimes(
                    prediction.data[g, : n_vals[g]] - vtargets[g]
                )
                out[g] = float(np.abs(residual).mean())
            return out

    progress = GroupProgress(
        n_groups,
        monitor=["val_mae" if v else "mae" for v in has_val],
        max_epochs=max_epochs_list,
    )
    snapshots = ParamSnapshots(params)
    trainer_rngs = [
        new_rng(derive_seed(c.seed, "pretrain-loop", str(e.algorithm)))
        for c, e in zip(configs, entries)
    ]
    indices_list = [np.arange(n) for n in ns]
    lrs = [float(c.learning_rate) for c in configs]
    active_mask = np.zeros(n_groups, dtype=bool)
    bank.train()

    epoch = 0
    while progress.any_active:
        epoch_active = [g for g in range(n_groups) if progress.active[g]]
        orders = {g: trainer_rngs[g].permutation(indices_list[g]) for g in epoch_active}
        n_batches = {g: math.ceil(ns[g] / batch_sizes[g]) for g in epoch_active}
        total_loss = [0.0] * n_groups
        total_mae = [0.0] * n_groups
        total_huber = [0.0] * n_groups
        total_recon = [0.0] * n_groups
        seen = [0] * n_groups

        for b in range(max(n_batches.values())):
            active_mask[:] = False
            for g in range(n_groups):
                if g in n_batches and b < n_batches[g]:
                    bs = batch_sizes[g]
                    idx = orders[g][b * bs : b * bs + bs]
                    rows = entries[g].train_idx[idx]
                    c = rows.size
                    feats_buf[g, :c] = entries[g].scaled_features[rows]
                    props_buf[g, :c] = entries[g].properties[rows]
                    targ_buf[g, :c] = entries[g].scaled_targets[rows]
                    if c < width:
                        feats_buf[g, c:] = 0.0
                        props_buf[g, c:] = 0.0
                        targ_buf[g, c:] = 0.0
                    counts[g] = float(c)
                    active_mask[g] = True
                    dirty[g] = True
                else:
                    counts[g] = 0.0
                    if dirty[g]:
                        feats_buf[g] = 0.0
                        props_buf[g] = 0.0
                        targ_buf[g] = 0.0
                        dirty[g] = False

            optimizer.zero_grad()
            total_t, prediction, runtime_term, recon_term = compiler.run(
                feats_buf, props_buf, targ_buf, counts
            )
            if total_t.requires_grad:
                compiler.backward()
                masks = [active_mask] * len(params)
                optimizer.step(masks)

            for g in range(n_groups):
                if not active_mask[g]:
                    continue
                c = int(counts[g])
                residual = models[g].denormalize_runtimes(
                    prediction.data[g, :c] - targ_buf[g, :c]
                )
                total_loss[g] += float(total_t.data[g]) * c
                total_mae[g] += float(np.abs(residual).mean()) * c
                total_huber[g] += float(runtime_term.data[g]) * c
                total_recon[g] += float(recon_term.data[g]) * c
                seen[g] += c

        eval_out = evaluate() if evaluate is not None else {}
        metrics_map = {}
        for g in epoch_active:
            epoch_metrics = {
                "loss": total_loss[g] / seen[g],
                "mae": total_mae[g] / seen[g],
                "huber": total_huber[g] / seen[g],
                "reconstruction_mse": total_recon[g] / seen[g],
            }
            if g in eval_out:
                epoch_metrics["val_mae"] = eval_out[g]
            epoch_metrics["lr"] = lrs[g]
            metrics_map[g] = epoch_metrics
            if progress.record(g, epoch, epoch_metrics):
                snapshots.save(g)
        for g in epoch_active:
            progress.check_stop(g, epoch, metrics_map[g])
        epoch += 1

    for g in range(n_groups):
        snapshots.restore(g)
    bank.write_back()
    return [progress.result(g) for g in range(n_groups)]


def pretrain_batch(
    dataset: ExecutionDataset,
    items: Sequence[Union[Optional[str], Tuple[Optional[str], Optional[BellamyConfig]]]],
    variant: str = "full",
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
    model_factory: Optional[Callable[[BellamyConfig], BellamyModel]] = None,
) -> List[PretrainResult]:
    """Pre-train N general models in one fused batched pass.

    Each item is either an algorithm name (trained with the default
    configuration) or an ``(algorithm, config)`` pair — e.g. one algorithm
    per group for a warm sweep over an experiment's corpora, or the same
    algorithm with N trial configurations for a population-style
    hyperparameter search. Groups whose models share an architecture (and
    property-matrix shape) are stacked into a
    :class:`~repro.nn.batched.BatchedModelBank` and trained together on one
    compiled tape; each group's result is bit-identical to its own
    :func:`pretrain` call (same splits, shuffles, dropout draws, and
    best-epoch selection). Incompatible or lone groups — and everything
    under the legacy engine or a custom ``model_factory`` — fall back to
    the serial loop transparently.

    Unlike :func:`repro.core.finetuning.finetune_batch` (whose per-group
    failure isolation serves the online refresh path), invalid inputs here
    raise immediately: a sweep over a corpus with no executions of an
    algorithm is a caller error, not a data-quality event.
    """
    normalized: List[Tuple[Optional[str], BellamyConfig]] = []
    for item in items:
        if isinstance(item, (tuple, list)):
            algorithm, config = item
        else:
            algorithm, config = item, None
        config = config or BellamyConfig()
        if seed is not None:
            config = config.with_overrides(seed=seed)
        if epochs is not None:
            config = config.with_overrides(pretrain_epochs=epochs)
        normalized.append((algorithm, config))

    results: List[Optional[PretrainResult]] = [None] * len(normalized)
    serial_indices: List[int] = []
    prepared: Dict[int, _SweepEntry] = {}
    started = time.perf_counter()

    if legacy_engine() or model_factory is not None:
        serial_indices = list(range(len(normalized)))
    else:
        for i, (algorithm, config) in enumerate(normalized):
            corpus = dataset.for_algorithm(algorithm) if algorithm is not None else dataset
            if len(corpus) == 0:
                raise ValueError(f"no executions of algorithm {algorithm!r} in the corpus")
            model = BellamyModel(config)
            scaleout_raw, properties, runtimes = model.featurizer.build_arrays(corpus)
            model.fit_scaler(scaleout_raw)
            model.set_runtime_scale(runtimes)
            rng = new_rng(derive_seed(config.seed, "pretrain-split", str(algorithm)))
            n = len(corpus)
            permutation = rng.permutation(n)
            n_val = int(round(config.validation_fraction * n))
            val_idx = permutation[:n_val]
            train_idx = permutation[n_val:]
            if train_idx.size == 0:
                raise ValueError("validation fraction leaves no training data")
            prepared[i] = _SweepEntry(
                index=i,
                algorithm=algorithm,
                config=config,
                model=model,
                n_samples=n,
                n_contexts=len(corpus.contexts()),
                scaled_features=model.scaler.transform(scaleout_raw),
                properties=properties,
                scaled_targets=model.normalize_runtimes(runtimes),
                train_idx=train_idx,
                val_idx=val_idx,
            )

    subgroups: Dict[tuple, List[int]] = {}
    for i, entry in prepared.items():
        subgroups.setdefault(entry.arch_key(), []).append(i)

    for members in subgroups.values():
        if len(members) < 2:
            serial_indices.extend(members)
            continue
        entries = [prepared[i] for i in members]
        train_results = _run_pretrain_loop_batch(entries)
        wall = time.perf_counter() - started
        for entry, train_result in zip(entries, train_results):
            config = entry.config
            results[entry.index] = PretrainResult(
                model=entry.model,
                algorithm=entry.algorithm or "*",
                variant=variant,
                n_samples=entry.n_samples,
                n_contexts=entry.n_contexts,
                wall_seconds=wall,
                train_result=train_result,
                validation_mae=train_result.best_metric if entry.val_idx.size else None,
                hyperparameters={
                    "dropout": config.dropout,
                    "learning_rate": config.learning_rate,
                    "weight_decay": config.weight_decay,
                },
            )

    for i in serial_indices:
        algorithm, config = normalized[i]
        results[i] = pretrain(
            dataset,
            algorithm,
            config=config,
            variant=variant,
            model_factory=model_factory,
        )

    return results


def pretrain_population_objective(
    dataset: ExecutionDataset,
    algorithm: str,
    base_config: Optional[BellamyConfig] = None,
    variant: str = "search",
    epochs: Optional[int] = None,
    seed: int = 0,
) -> Callable[[Sequence[Dict[str, float]]], List[float]]:
    """Build a population objective scoring pre-training hyperparameters.

    The returned callable maps a whole population of configuration dicts
    (keys are :class:`~repro.core.config.BellamyConfig` field overrides,
    e.g. ``dropout``/``learning_rate``/``weight_decay``) to their
    validation-MAE scores in **one** :func:`pretrain_batch` pass — the
    fused counterpart of calling :func:`pretrain` per trial, for
    :func:`repro.tune.runner.run_population`. Trial seeds follow the same
    ``pretrain-trial`` derivation as :func:`pretrain_with_search`, so
    scores are bit-identical to the serial search.
    """
    base_config = base_config or BellamyConfig()

    def population(configurations: Sequence[Dict[str, float]]) -> List[float]:
        configs = [
            base_config.with_overrides(
                **{key: float(value) for key, value in params.items()},
                seed=derive_seed(seed, "pretrain-trial", algorithm, trial_index),
            )
            for trial_index, params in enumerate(configurations)
        ]
        trial_results = pretrain_batch(
            dataset,
            [(algorithm, config) for config in configs],
            variant=variant,
            epochs=epochs,
        )
        return [_score_of(result) for result in trial_results]

    return population


def pretrain_with_search(
    dataset: ExecutionDataset,
    algorithm: str,
    base_config: Optional[BellamyConfig] = None,
    n_samples: int = PRETRAIN_SEARCH_SAMPLES,
    variant: str = "full",
    epochs: Optional[int] = None,
    seed: int = 0,
) -> PretrainResult:
    """Hyperparameter search over the Table I grid (paper: 12 samples).

    Uses random search from :mod:`repro.tune` over dropout, learning rate,
    and weight decay, selecting the configuration with the lowest validation
    MAE — the offline analogue of the paper's Tune/Optuna search. The
    trials form a same-architecture population, so they are evaluated as
    **one** :func:`pretrain_batch` pass (per-group dropout rates, learning
    rates, and weight decays on one tape); the winner — first trial with
    the strictly lowest score — is identical to running the trials
    serially.
    """
    from repro.tune.search import RandomSearch
    from repro.tune.space import Categorical, SearchSpace

    base_config = base_config or BellamyConfig()
    space = SearchSpace(
        {name: Categorical(values) for name, values in PRETRAIN_SEARCH_SPACE.items()}
    )
    search = RandomSearch(space, seed=derive_seed(seed, "pretrain-search", algorithm))

    configs = [
        base_config.with_overrides(
            dropout=float(params["dropout"]),
            learning_rate=float(params["learning_rate"]),
            weight_decay=float(params["weight_decay"]),
            seed=derive_seed(seed, "pretrain-trial", algorithm, trial_index),
        )
        for trial_index, params in enumerate(search.suggest(n_samples))
    ]
    trial_results = pretrain_batch(
        dataset,
        [(algorithm, config) for config in configs],
        variant=variant,
        epochs=epochs,
    )

    best: Optional[PretrainResult] = None
    for result in trial_results:
        score = result.validation_mae
        if score is None:
            score = result.train_result.best_metric if result.train_result else float("inf")
        if best is None or score < _score_of(best):
            best = result
    assert best is not None  # n_samples >= 1 guarantees at least one trial
    return best


def _score_of(result: PretrainResult) -> float:
    if result.validation_mae is not None:
        return result.validation_mae
    if result.train_result is not None:
        return result.train_result.best_metric
    return float("inf")
