"""Bellamy core: the paper's primary contribution.

Architecture components (f, g, h, z), the assembled model, pre-training on
cross-context corpora, fine-tuning strategies, model persistence, the
``RuntimeModel`` adapter used by the evaluation, and resource selection.
"""

from repro.core.components import (
    AutoEncoder,
    PropertyDecoderNetwork,
    PropertyEncoderNetwork,
    RuntimePredictorNetwork,
    ScaleOutNetwork,
)
from repro.core.cross_algorithm import (
    CrossAlgorithmResult,
    pretrain_cross_algorithm,
    run_cross_algorithm_experiment,
)
from repro.core.config import (
    PRETRAIN_SEARCH_SAMPLES,
    PRETRAIN_SEARCH_SPACE,
    BellamyConfig,
)
from repro.core.features import BellamyFeaturizer
from repro.core.graph_model import (
    GnnBellamyModel,
    GraphBellamyModel,
    GraphPropertyFeaturizer,
    pretrain_gnn,
)
from repro.core.finetuning import (
    FinetuneFailure,
    FinetuneResult,
    FinetuneStrategy,
    finetune,
    finetune_batch,
    train_local,
    unfreeze_epoch_for,
)
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore
from repro.core.prediction import BellamyRuntimeModel
from repro.core.pretraining import (
    PretrainResult,
    filter_distinct_contexts,
    pretrain,
    pretrain_batch,
    pretrain_population_objective,
    pretrain_with_search,
)
from repro.core.resource_selection import (
    CandidateEvaluation,
    ResourceRecommendation,
    evaluate_candidates,
    select_scaleout,
)

__all__ = [
    "AutoEncoder",
    "BellamyConfig",
    "BellamyFeaturizer",
    "BellamyModel",
    "BellamyRuntimeModel",
    "CandidateEvaluation",
    "CrossAlgorithmResult",
    "FinetuneFailure",
    "FinetuneResult",
    "FinetuneStrategy",
    "GnnBellamyModel",
    "GraphBellamyModel",
    "GraphPropertyFeaturizer",
    "ModelStore",
    "PRETRAIN_SEARCH_SAMPLES",
    "PRETRAIN_SEARCH_SPACE",
    "PretrainResult",
    "PropertyDecoderNetwork",
    "PropertyEncoderNetwork",
    "ResourceRecommendation",
    "RuntimePredictorNetwork",
    "ScaleOutNetwork",
    "evaluate_candidates",
    "filter_distinct_contexts",
    "finetune",
    "finetune_batch",
    "pretrain",
    "pretrain_batch",
    "pretrain_cross_algorithm",
    "pretrain_gnn",
    "pretrain_population_objective",
    "pretrain_with_search",
    "run_cross_algorithm_experiment",
    "select_scaleout",
    "train_local",
    "unfreeze_epoch_for",
]
