"""Bellamy model configuration (paper Table I).

Architecture defaults mirror the prototype exactly: property vectors of size
40 compressed to 4-dimensional codes through a hidden width of 8; the
scale-out network maps 3 features through a hidden width of 16 to an 8-dim
embedding; the predictor maps the combined vector through a hidden width of 8
to 1 output. Pre-training searches dropout, learning rate, and weight decay
over the Table I grid; fine-tuning uses Huber loss only, cyclical annealing
in (1e-3, 1e-2), and stops at train MAE <= 5 s or after 1000 epochs without
improvement (2500 max).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Tuple

#: Table I search space for pre-training hyperparameters.
PRETRAIN_SEARCH_SPACE: Dict[str, Tuple[float, ...]] = {
    "dropout": (0.05, 0.10, 0.20),
    "learning_rate": (1e-1, 1e-2, 1e-3),
    "weight_decay": (1e-2, 1e-3, 1e-4),
}

#: Number of configurations sampled from the search space (paper: 12).
PRETRAIN_SEARCH_SAMPLES: int = 12


@dataclass(frozen=True)
class BellamyConfig:
    """All architecture and training hyperparameters of a Bellamy model."""

    # ------------------------- architecture --------------------------- #
    #: Size N of the raw property vectors ("Decoding-Dim." in Table I).
    property_vector_size: int = 40
    #: Size M of the auto-encoder codes ("Encoding-Dim.").
    encoding_dim: int = 4
    #: Hidden width of encoder/decoder/predictor ("Hidden-Dim.").
    hidden_dim: int = 8
    #: Hidden width of the scale-out network f (fixed to 16 in the paper).
    scaleout_hidden_dim: int = 16
    #: Output dimensionality F of the scale-out network f.
    scaleout_dim: int = 8
    #: Final output dimensionality ("Out-Dim.").
    out_dim: int = 1
    #: Number of essential properties m (C3O: dataset size, characteristics,
    #: job parameters, node type).
    n_essential: int = 4
    #: Whether optional properties are consumed (their codes are averaged).
    use_optional: bool = True
    #: Hidden/output activation of all components except the decoder output.
    activation: str = "selu"
    #: Weight initialization scheme.
    init: str = "he_normal"

    # ------------------------- pre-training --------------------------- #
    batch_size: int = 64
    dropout: float = 0.10
    #: Default learning rate: the value the Table I hyperparameter search
    #: selects on the synthetic corpora (all three grid values are searchable
    #: via :func:`repro.core.pretraining.pretrain_with_search`).
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    pretrain_epochs: int = 2500
    #: Huber transition point (PyTorch default).
    huber_delta: float = 1.0
    #: Weight of the reconstruction MSE in the joint objective.
    reconstruction_weight: float = 1.0
    #: Fraction of pre-training data held out for model selection.
    validation_fraction: float = 0.1

    # ------------------------- fine-tuning ---------------------------- #
    finetune_max_epochs: int = 2500
    finetune_lr_min: float = 1e-3
    finetune_lr_max: float = 1e-2
    finetune_lr_cycle: int = 100
    finetune_weight_decay: float = 1e-3
    #: Stop early once the training MAE (seconds) drops to this target.
    finetune_target_mae: float = 5.0
    #: Stop when no improvement for this many epochs.
    finetune_patience: int = 1000

    # ------------------------- misc ----------------------------------- #
    seed: int = 0

    def __post_init__(self) -> None:
        if self.property_vector_size < 2:
            raise ValueError("property_vector_size must be >= 2")
        if self.encoding_dim <= 0 or self.hidden_dim <= 0 or self.scaleout_dim <= 0:
            raise ValueError("dimensions must be positive")
        if self.n_essential <= 0:
            raise ValueError("n_essential must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        if self.finetune_lr_min <= 0 or self.finetune_lr_max <= self.finetune_lr_min:
            raise ValueError("need 0 < finetune_lr_min < finetune_lr_max")

    @property
    def combined_dim(self) -> int:
        """Input width of the predictor z: ``F + (m + 1) * M`` (paper Eq. 5).

        Without optional properties the mean-code block is absent.
        """
        blocks = self.n_essential + (1 if self.use_optional else 0)
        return self.scaleout_dim + blocks * self.encoding_dim

    def with_overrides(self, **overrides) -> "BellamyConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> Dict:
        """Plain-dict form for JSON serialization."""
        return asdict(self)

    @staticmethod
    def from_dict(payload: Dict) -> "BellamyConfig":
        """Inverse of :meth:`to_dict`."""
        return BellamyConfig(**payload)
