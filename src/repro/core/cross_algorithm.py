"""Cross-algorithm performance models (paper §V, future work).

The paper closes with: *"since some processing algorithms showed a similar
scale-out behavior, we further plan to research ways of building models
across algorithms."* This module implements that direction:

* :func:`pretrain_cross_algorithm` trains **one** Bellamy model on the union
  corpus of several algorithms. The job name is one of the optional
  descriptive properties (paper §IV-B), so the model can tell algorithms
  apart through its property codes — no architecture change is needed.
* :func:`run_cross_algorithm_experiment` compares three pre-training corpora
  per target context: the usual per-algorithm corpus, the cross-algorithm
  union corpus, and a *transfer* corpus holding only the *other* algorithms
  (zero executions of the target's algorithm — the pure cross-algorithm
  transfer case the paper speculates about).

Expected shapes: the union corpus should be roughly on par with the
per-algorithm corpus (job-name codes separate the algorithms); the pure
transfer corpus helps most for algorithms whose scale-out behaviour
resembles another's (grep/sort/pagerank share near-``1/x`` curves) and
struggles across the trivial/non-trivial divide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.core.pretraining import PretrainResult, pretrain
from repro.data.dataset import ExecutionDataset
from repro.eval.experiments.common import (
    ExperimentScale,
    QUICK_SCALE,
    select_target_contexts,
)
from repro.eval.protocol import (
    EvaluationRecord,
    MethodSpec,
    ProtocolConfig,
    evaluate_context,
)
from repro.utils.rng import derive_seed


def pretrain_cross_algorithm(
    dataset: ExecutionDataset,
    algorithms: Optional[Sequence[str]] = None,
    config: Optional[BellamyConfig] = None,
    epochs: Optional[int] = None,
    seed: Optional[int] = None,
) -> PretrainResult:
    """Pre-train one model on the union corpus of several algorithms.

    Parameters
    ----------
    dataset:
        The historical-execution corpus.
    algorithms:
        Algorithms to include (default: every algorithm in the dataset).
    config, epochs, seed:
        Forwarded to :func:`repro.core.pretraining.pretrain`.
    """
    if algorithms is not None:
        wanted = {a.lower() for a in algorithms}
        corpus = dataset.filter(lambda e: e.context.algorithm in wanted)
    else:
        corpus = dataset
    if len(corpus) == 0:
        raise ValueError("cross-algorithm corpus is empty")
    return pretrain(
        corpus,
        algorithm=None,
        config=config,
        variant="cross-algorithm",
        epochs=epochs,
        seed=seed,
    )


@dataclass
class CrossAlgorithmResult:
    """Records of one cross-algorithm study plus diagnostics."""

    records: List[EvaluationRecord] = field(default_factory=list)
    pretrain_seconds: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    scale_name: str = ""

    def methods(self) -> List[str]:
        """Distinct method names, stable order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.method, None)
        return list(seen)


#: Method labels of the three corpus policies under study.
PER_ALGORITHM = "Bellamy (per-algorithm)"
UNION = "Bellamy (union)"
TRANSFER_ONLY = "Bellamy (transfer-only)"


def _method(
    base: BellamyModel, label: str, scale: ExperimentScale
) -> MethodSpec:
    """A fine-tuned-Bellamy spec resolved through the estimator registry."""
    return MethodSpec.from_registry(
        "bellamy-ft",
        name=label,
        base_model=base,
        max_epochs=scale.finetune_max_epochs,
        label=label,
    )


def run_cross_algorithm_experiment(
    dataset: ExecutionDataset,
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
    algorithms: Optional[Sequence[str]] = None,
    contexts_per_algorithm: Optional[int] = None,
    n_workers: Optional[int] = None,
) -> CrossAlgorithmResult:
    """Compare per-algorithm, union, and transfer-only pre-training corpora.

    For each target context the three base models are pre-trained on:

    * ``per-algorithm`` — all other contexts of the *same* algorithm (the
      paper's ``full`` variant, the reference),
    * ``union``         — all other contexts of *every* algorithm,
    * ``transfer-only`` — all contexts of the *other* algorithms only.

    All three are fine-tuned identically on the protocol's splits.
    ``n_workers`` fans the per-target units over a process pool (0 = serial,
    negative = all cores, ``None`` = the ``REPRO_JOBS`` default); records
    are identical for every worker count.
    """
    from repro.runtime import executor_map

    started = time.perf_counter()
    n_contexts = contexts_per_algorithm or scale.contexts_per_algorithm
    result = CrossAlgorithmResult(scale_name=scale.name)

    tasks: List[_CrossAlgorithmTask] = []
    for algorithm in tuple(algorithms or scale.algorithms):
        targets = select_target_contexts(dataset, algorithm, n_contexts, seed=seed)
        tasks.extend((dataset, algorithm, target, scale, seed) for target in targets)

    for records, pretrain_seconds in executor_map(
        _evaluate_cross_algorithm_target, tasks, jobs=n_workers
    ):
        result.records.extend(records)
        for label, seconds in pretrain_seconds.items():
            result.pretrain_seconds[label] = (
                result.pretrain_seconds.get(label, 0.0) + seconds
            )

    result.wall_seconds = time.perf_counter() - started
    return result


#: One parallel work unit: the three corpus policies for one target.
_CrossAlgorithmTask = Tuple[ExecutionDataset, str, "JobContext", ExperimentScale, int]


def _evaluate_cross_algorithm_target(
    task: _CrossAlgorithmTask,
) -> Tuple[List, Dict[str, float]]:
    """Pre-train the three corpus policies and evaluate one target context.

    Module-level (picklable) and self-contained; all randomness derives
    from per-(policy, target) seeds, so results are bit-identical
    regardless of which process runs the task.
    """
    dataset, algorithm, target, scale, seed = task
    config = scale.bellamy_config()
    rest = dataset.exclude_context(target.context_id)
    corpora = {
        PER_ALGORITHM: rest.for_algorithm(algorithm),
        UNION: rest,
        TRANSFER_ONLY: rest.filter(lambda e: e.context.algorithm != algorithm),
    }
    reference_size = max(len(corpora[PER_ALGORITHM]), 1)
    methods: List[MethodSpec] = []
    pretrain_seconds: Dict[str, float] = {}
    for label, corpus in corpora.items():
        # Equalize gradient steps across corpus sizes: the union corpus is
        # ~5x larger, so a fixed epoch count would both quintuple the
        # compute and bias the comparison.
        epochs = max(
            50,
            round(config.pretrain_epochs * reference_size / len(corpus)),
        )
        pretrained = pretrain(
            corpus,
            algorithm=None,
            config=config.with_overrides(
                seed=derive_seed(seed, "xalg", label, target.context_id)
            ),
            variant=label,
            epochs=epochs,
        )
        pretrained.model.eval()
        pretrain_seconds[label] = (
            pretrain_seconds.get(label, 0.0) + pretrained.wall_seconds
        )
        methods.append(_method(pretrained.model, label, scale))

    context_data = dataset.for_context(target.context_id)
    protocol = ProtocolConfig(
        n_train_values=scale.n_train_values,
        max_splits=scale.max_splits,
        seed=derive_seed(seed, "xalg-protocol", target.context_id),
    )
    return evaluate_context(methods, context_data, protocol), pretrain_seconds
