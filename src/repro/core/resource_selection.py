"""Resource selection from runtime predictions (paper §I, §V).

"The predicted runtimes can be used to effectively choose a suitable resource
configuration for a specific job in a particular execution context": given a
fitted model and a runtime target, pick a scale-out — the smallest cluster
that meets the target, the cheapest one, or the fastest within budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.baselines.base import RuntimeModel
from repro.core.model import BellamyModel
from repro.data.schema import JobContext

#: Anything that maps scale-outs to predicted runtimes in seconds.
PredictFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CandidateEvaluation:
    """Prediction for one candidate scale-out."""

    machines: int
    predicted_runtime_s: float
    predicted_cost: Optional[float]
    meets_target: bool


@dataclass(frozen=True)
class ResourceRecommendation:
    """Outcome of a resource-selection query."""

    chosen: Optional[CandidateEvaluation]
    candidates: List[CandidateEvaluation]
    objective: str
    runtime_target_s: Optional[float]

    @property
    def satisfiable(self) -> bool:
        """Whether any candidate met the runtime target."""
        return self.chosen is not None


def _as_predict_fn(
    model: Union[RuntimeModel, BellamyModel, PredictFn],
    context: Optional[JobContext],
) -> PredictFn:
    if isinstance(model, BellamyModel):
        if context is None:
            raise ValueError("a JobContext is required when passing a BellamyModel")
        return lambda machines: model.predict(context, machines)
    if isinstance(model, RuntimeModel):
        return model.predict
    return model


def evaluate_candidates(
    model: Union[RuntimeModel, BellamyModel, PredictFn],
    candidates: Sequence[int],
    runtime_target_s: Optional[float] = None,
    price_per_machine_hour: Optional[float] = None,
    context: Optional[JobContext] = None,
) -> List[CandidateEvaluation]:
    """Predict runtime (and cost) for every candidate scale-out."""
    if not candidates:
        raise ValueError("need at least one candidate scale-out")
    machines = np.asarray(sorted(set(int(c) for c in candidates)), dtype=np.float64)
    if (machines <= 0).any():
        raise ValueError("candidate scale-outs must be positive")
    predict = _as_predict_fn(model, context)
    runtimes = np.asarray(predict(machines), dtype=np.float64).reshape(-1)
    evaluations = []
    for count, runtime in zip(machines, runtimes):
        cost = None
        if price_per_machine_hour is not None:
            cost = float(count) * price_per_machine_hour * (runtime / 3600.0)
        meets = runtime_target_s is None or runtime <= runtime_target_s
        evaluations.append(
            CandidateEvaluation(
                machines=int(count),
                predicted_runtime_s=float(runtime),
                predicted_cost=cost,
                meets_target=bool(meets),
            )
        )
    return evaluations


def select_scaleout(
    model: Union[RuntimeModel, BellamyModel, PredictFn],
    candidates: Sequence[int],
    runtime_target_s: Optional[float] = None,
    objective: str = "min_machines",
    price_per_machine_hour: Optional[float] = None,
    context: Optional[JobContext] = None,
) -> ResourceRecommendation:
    """Choose a scale-out according to ``objective``.

    Objectives
    ----------
    ``min_machines``:
        Smallest cluster whose predicted runtime meets the target.
    ``min_cost``:
        Cheapest candidate meeting the target (requires a price).
    ``min_runtime``:
        Fastest candidate (target, if given, still filters).
    """
    if objective not in ("min_machines", "min_cost", "min_runtime"):
        raise ValueError(f"unknown objective {objective!r}")
    if objective == "min_cost" and price_per_machine_hour is None:
        raise ValueError("objective 'min_cost' requires price_per_machine_hour")

    evaluations = evaluate_candidates(
        model,
        candidates,
        runtime_target_s=runtime_target_s,
        price_per_machine_hour=price_per_machine_hour,
        context=context,
    )
    feasible = [e for e in evaluations if e.meets_target]
    chosen: Optional[CandidateEvaluation] = None
    if feasible:
        if objective == "min_machines":
            chosen = min(feasible, key=lambda e: e.machines)
        elif objective == "min_cost":
            chosen = min(feasible, key=lambda e: e.predicted_cost)
        else:
            chosen = min(feasible, key=lambda e: e.predicted_runtime_s)
    return ResourceRecommendation(
        chosen=chosen,
        candidates=evaluations,
        objective=objective,
        runtime_target_s=runtime_target_s,
    )
