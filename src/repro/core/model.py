"""The assembled Bellamy model (paper Fig. 3).

Combines the scale-out network ``f``, the property auto-encoder ``g``/``h``,
and the runtime predictor ``z``. The forward pass implements paper Eq. 5:

    r = e  ⊕  (c^(1) ‖ ... ‖ c^(m))  ⊕  mean(c^(m+1..m+n))
    runtime = z(r)

together with the reconstructions needed for the joint training objective.

Two pieces of *inference state* accompany the network weights and are
persisted with them:

* the min-max boundaries of the scale-out features ("determined during
  training and used throughout inference", paper §IV-A), and
* a runtime normalization constant. The network predicts runtimes in units
  of this constant (set to a high percentile of the training runtimes), which
  keeps the optimization well-conditioned across algorithms whose absolute
  runtimes differ by orders of magnitude; predictions are always reported in
  seconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.components import (
    AutoEncoder,
    RuntimePredictorNetwork,
    ScaleOutNetwork,
)
from repro.core.config import BellamyConfig
from repro.core.features import BellamyFeaturizer
from repro.data.schema import JobContext
from repro.encoding.scaling import MinMaxScaler
from repro.nn.module import Module
from repro.nn.tensor import Tensor, cat, no_grad


class BellamyModel(Module):
    """Neural runtime predictor reusable across execution contexts."""

    def __init__(self, config: Optional[BellamyConfig] = None) -> None:
        super().__init__()
        self.config = config or BellamyConfig()
        self.f = ScaleOutNetwork(self.config)
        self.autoencoder = AutoEncoder(self.config)
        self.z = RuntimePredictorNetwork(self.config)
        self.featurizer = BellamyFeaturizer(self.config)
        self.scaler = MinMaxScaler()
        self.runtime_scale: float = 1.0

    # ------------------------------------------------------------------ #
    # Inference-state management
    # ------------------------------------------------------------------ #

    def fit_scaler(self, scaleout_raw: np.ndarray) -> None:
        """Fit the scale-out min-max boundaries on training features."""
        self.scaler.fit(scaleout_raw)

    def set_runtime_scale(self, runtimes: np.ndarray, percentile: float = 95.0) -> None:
        """Set the runtime normalization constant from training runtimes."""
        runtimes = np.asarray(runtimes, dtype=np.float64)
        if runtimes.size == 0:
            raise ValueError("cannot derive a runtime scale from no runtimes")
        scale = float(np.percentile(runtimes, percentile))
        self.runtime_scale = max(scale, 1e-6)

    def normalize_runtimes(self, runtimes: np.ndarray) -> np.ndarray:
        """Seconds -> model units."""
        return np.asarray(runtimes, dtype=np.float64) / self.runtime_scale

    def denormalize_runtimes(self, scaled: np.ndarray) -> np.ndarray:
        """Model units -> seconds."""
        return np.asarray(scaled, dtype=np.float64) * self.runtime_scale

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #

    def forward(
        self, scaleout_scaled: Tensor, properties: Tensor
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Full forward pass.

        Parameters
        ----------
        scaleout_scaled:
            ``(B, 3)`` min-max-scaled scale-out features.
        properties:
            ``(B, P, N)`` encoded property matrices.

        Returns
        -------
        (prediction, reconstruction, flat_properties):
            ``(B,)`` normalized runtime predictions, ``(B*P, N)``
            auto-encoder reconstructions, and the matching ``(B*P, N)``
            property targets (for the reconstruction loss).
        """
        batch, n_props, vec_size = properties.shape
        m = self.config.n_essential
        embedding = self.f(scaleout_scaled)  # (B, F)

        flat = properties.reshape(batch * n_props, vec_size)
        codes = self.autoencoder.encode(flat)  # (B*P, M)
        reconstruction = self.autoencoder.decoder(codes)
        codes3 = codes.reshape(batch, n_props, self.config.encoding_dim)

        essential = codes3[:, :m, :].reshape(batch, m * self.config.encoding_dim)
        parts = [embedding, essential]
        if self.config.use_optional:
            if n_props <= m:
                raise ValueError(
                    f"config expects optional properties but got only {n_props} vectors"
                )
            parts.append(codes3[:, m:, :].mean(axis=1))  # mean code, Eq. 6
        combined = cat(parts, axis=1)  # (B, F + (m+1)*M)
        prediction = self.z(combined).reshape(batch)
        return prediction, reconstruction, flat

    # ------------------------------------------------------------------ #
    # High-level prediction API
    # ------------------------------------------------------------------ #

    def predict(self, context: JobContext, machines: Sequence[float]) -> np.ndarray:
        """Predict runtimes (seconds) of ``context`` at the given scale-outs."""
        machines = np.asarray(machines, dtype=np.float64).reshape(-1)
        scaleout_raw, properties = self.featurizer.build_context_arrays(context, machines)
        return self._predict_arrays(scaleout_raw, properties)

    def _predict_arrays(
        self, scaleout_raw: np.ndarray, properties: np.ndarray
    ) -> np.ndarray:
        if not self.scaler.is_fit:
            raise RuntimeError(
                "model has no fitted scale-out scaler; train or load it first"
            )
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                scaled = self.scaler.transform(scaleout_raw)
                prediction, _, _ = self.forward(Tensor(scaled), Tensor(properties))
        finally:
            self.train(was_training)
        # Runtimes are non-negative; aggressive few-shot fine-tuning can push
        # the unconstrained network output below zero far from the training
        # scale-outs, so predictions are clamped at inference.
        return np.maximum(self.denormalize_runtimes(prediction.data), 0.0)

    def predict_one(self, context: JobContext, machines: float) -> float:
        """Scalar convenience wrapper around :meth:`predict`."""
        return float(self.predict(context, [machines])[0])

    def predict_batch(
        self, items: Sequence[Tuple[JobContext, Sequence[float]]]
    ) -> List[np.ndarray]:
        """Predict runtimes for many ``(context, machines)`` requests at once.

        All requests are stacked into a single batched forward pass — one
        matmul sweep instead of one Python-level forward per request — and
        the flat prediction vector is split back per request. The serving
        layer (:meth:`repro.api.session.Session.predict_batch`) uses this to
        answer grouped zero-shot traffic.
        """
        if not items:
            return []
        raw_blocks: List[np.ndarray] = []
        property_blocks: List[np.ndarray] = []
        lengths: List[int] = []
        for context, machines in items:
            machines = np.asarray(machines, dtype=np.float64).reshape(-1)
            raw, properties = self.featurizer.build_context_arrays(context, machines)
            raw_blocks.append(raw)
            property_blocks.append(properties)
            lengths.append(machines.size)
        predictions = self._predict_arrays(
            np.concatenate(raw_blocks, axis=0), np.concatenate(property_blocks, axis=0)
        )
        out: List[np.ndarray] = []
        offset = 0
        for length in lengths:
            out.append(predictions[offset : offset + length])
            offset += length
        return out

    def property_codes(self, context: JobContext) -> np.ndarray:
        """The auto-encoder codes of a context's properties (paper Fig. 4)."""
        matrix = self.featurizer.encode_context(context)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                codes = self.autoencoder.encode(Tensor(matrix))
        finally:
            self.train(was_training)
        return codes.data.copy()

    # ------------------------------------------------------------------ #
    # Extended persistence (weights + inference state)
    # ------------------------------------------------------------------ #

    def full_state_dict(self) -> Dict[str, np.ndarray]:
        """Network weights plus scaler boundaries and runtime scale."""
        state = self.state_dict()
        for key, value in self.scaler.state_dict().items():
            state[f"__scaler__.{key}"] = value
        state["__runtime_scale__"] = np.asarray([self.runtime_scale])
        return state

    def load_full_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`full_state_dict`."""
        scaler_state = {
            key.split(".", 1)[1]: value
            for key, value in state.items()
            if key.startswith("__scaler__.")
        }
        self.scaler.load_state_dict(scaler_state)
        if "__runtime_scale__" in state:
            self.runtime_scale = float(np.asarray(state["__runtime_scale__"]).reshape(-1)[0])
        weights = {
            key: value for key, value in state.items() if not key.startswith("__")
        }
        self.load_state_dict(weights)
