"""Model persistence: save/load pre-trained Bellamy models.

The paper's workflow pre-trains a general model once, preserves the model
state, and later loads + fine-tunes it per context; time-to-fit measurements
explicitly include "loading a pre-trained model from disk". The store writes
one ``.npz`` (weights + scaler + runtime scale + an embedded copy of the
config/metadata JSON) and one ``.json`` sidecar (the same config + metadata,
kept human-readable) per model.

Saves are **crash-safe**: the ``.npz`` is self-contained and written via
temp-file + ``os.replace``, and it is the single commit point — a model
exists exactly when its ``.npz`` does, and any ``.npz`` that exists loads to
a complete, consistent model. An interruption at any instant leaves either
the previous model (fully intact) or the new one, never a torn mix.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.utils.serialization import load_json, load_npz_dict, save_json, save_npz_dict

PathLike = Union[str, os.PathLike]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def model_class_registry() -> Dict[str, type]:
    """Loadable model classes by name (lazy import avoids package cycles)."""
    from repro.core.graph_model import GnnBellamyModel, GraphBellamyModel

    return {
        "BellamyModel": BellamyModel,
        "GraphBellamyModel": GraphBellamyModel,
        "GnnBellamyModel": GnnBellamyModel,
    }


#: Reserved ``.npz`` member holding the embedded config/metadata JSON.
_META_KEY = "__meta_json__"


class ModelStore:
    """A directory of named, pre-trained Bellamy models."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _paths(self, name: str) -> Tuple[Path, Path]:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"model name {name!r} must match [A-Za-z0-9._-]+ (got unsafe characters)"
            )
        return self.root / f"{name}.npz", self.root / f"{name}.json"

    def save(
        self,
        name: str,
        model: BellamyModel,
        metadata: Optional[Dict] = None,
    ) -> None:
        """Persist ``model`` under ``name`` (overwrites silently, atomically).

        The concrete model class is recorded so graph-aware variants
        round-trip (see :func:`model_class_registry`). The config/metadata
        JSON is embedded *inside* the ``.npz``, which is written via
        temp-file + ``os.replace`` — the single atomic commit point. The
        ``.json`` sidecar is written afterwards purely for human inspection;
        a crash between the two replaces still leaves a loadable,
        self-consistent model (the online refresh path relies on this to
        swap models under live traffic).
        """
        weights_path, meta_path = self._paths(name)
        payload = {
            "config": model.config.to_dict(),
            "model_class": type(model).__name__,
            "metadata": metadata or {},
        }
        state = dict(model.full_state_dict())
        if _META_KEY in state:
            raise ValueError(f"model state may not use the reserved key {_META_KEY!r}")
        state[_META_KEY] = np.array(json.dumps(payload, sort_keys=True))
        save_npz_dict(weights_path, state)
        save_json(meta_path, payload)

    @staticmethod
    def _split_state(state: Dict, meta_path: Path) -> Tuple[Dict, Dict]:
        """(weights, config/metadata payload) of a loaded ``.npz`` state.

        Stores written before the embedded-metadata format fall back to the
        ``.json`` sidecar.
        """
        meta_array = state.pop(_META_KEY, None)
        if meta_array is not None:
            return state, json.loads(str(meta_array))
        return state, load_json(meta_path)

    def load(self, name: str) -> BellamyModel:
        """Load the model saved under ``name`` (restoring its concrete class)."""
        weights_path, meta_path = self._paths(name)
        if not weights_path.exists():
            raise FileNotFoundError(f"no model named {name!r} in {self.root}")
        state, payload = self._split_state(load_npz_dict(weights_path), meta_path)
        registry = model_class_registry()
        class_name = payload.get("model_class", "BellamyModel")
        try:
            model_cls = registry[class_name]
        except KeyError:
            raise ValueError(
                f"stored model {name!r} has unknown class {class_name!r}; "
                f"known: {sorted(registry)}"
            ) from None
        model = model_cls(BellamyConfig.from_dict(payload["config"]))
        model.load_full_state_dict(state)
        model.eval()
        return model

    def metadata(self, name: str) -> Dict:
        """The metadata stored alongside ``name``.

        Read from the ``.npz`` (the committed source of truth), falling back
        to the ``.json`` sidecar for stores written by older versions. The
        archive is read lazily — only the embedded metadata member is
        decompressed, never the weights.
        """
        weights_path, meta_path = self._paths(name)
        if weights_path.exists():
            with np.load(weights_path, allow_pickle=False) as archive:
                if _META_KEY in archive.files:
                    return json.loads(str(archive[_META_KEY]))["metadata"]
            return load_json(meta_path)["metadata"]
        if not meta_path.exists():
            raise FileNotFoundError(f"no model named {name!r} in {self.root}")
        return load_json(meta_path)["metadata"]

    def exists(self, name: str) -> bool:
        """Whether a model named ``name`` is stored."""
        weights_path, _ = self._paths(name)
        return weights_path.exists()

    def names(self) -> List[str]:
        """All stored model names (sorted)."""
        return sorted(path.stem for path in self.root.glob("*.npz"))

    def delete(self, name: str) -> None:
        """Remove a stored model (no error if absent)."""
        for path in self._paths(name):
            if path.exists():
                path.unlink()
