"""Model persistence: save/load pre-trained Bellamy models.

The paper's workflow pre-trains a general model once, preserves the model
state, and later loads + fine-tunes it per context; time-to-fit measurements
explicitly include "loading a pre-trained model from disk". The store writes
one ``.npz`` (weights + scaler + runtime scale + an embedded copy of the
config/metadata JSON) and one ``.json`` sidecar (the same config + metadata,
kept human-readable) per model.

Since the runtime refactor, :class:`ModelStore` is a **typed facade over**
:class:`repro.runtime.ArtifactStore`: model files live in a two-level
hash-fan-out layout (``root/ab/cd/<name>.npz``) that stays fast at 10k+
stored models, every save holds the artifact's cross-process file lock (two
processes saving the same name serialize instead of interleaving), and
``names()``/``exists()`` answer from the store index instead of scanning
the directory. Models written by the old flat layout
(``root/<name>.npz``) keep loading transparently and are re-homed into
their shard the next time they are saved (or wholesale via
:meth:`ModelStore.migrate`).

Saves are **crash-safe**: the ``.npz`` is self-contained and committed via
temp-file + ``os.replace``, and it is the single commit point — a model
exists exactly when its ``.npz`` does, and any ``.npz`` that exists loads to
a complete, consistent model. An interruption at any instant leaves either
the previous model (fully intact) or the new one, never a torn mix.

Where the index and locks live is pluggable (see
:mod:`repro.runtime.backends`): ``root`` may be a store URI
(``file://``, ``sqlite://``, ``memory://``), or ``backend=`` may select
one explicitly; plain paths honour the ``REPRO_STORE_BACKEND``
environment variable and default to the historical local-FS layout. The
crash-safety and locking contracts above hold on every backend — they
are pinned by the conformance suite in ``tests/runtime/conformance/``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.resilience.policy import RetryPolicy
from repro.runtime.backends.base import StoreBackend
from repro.runtime.locks import LockTimeout
from repro.runtime.store import ArtifactStore
from repro.utils.serialization import load_json, load_npz_dict, save_json, save_npz_dict

PathLike = Union[str, os.PathLike]


def default_lock_retry() -> RetryPolicy:
    """The retry policy :class:`ModelStore` applies to lock acquisition.

    A contended artifact lock that times out is usually transient (another
    writer mid-save); three attempts with a short seeded backoff ride it
    out without changing any exception type callers see — a persistently
    held lock still surfaces as ``LockTimeout``.

    >>> default_lock_retry().retry_on
    (<class 'repro.runtime.locks.LockTimeout'>,)
    """
    return RetryPolicy(
        max_attempts=3, base_delay_s=0.05, multiplier=2.0, retry_on=(LockTimeout,)
    )


def model_class_registry() -> Dict[str, type]:
    """Loadable model classes by name (lazy import avoids package cycles)."""
    from repro.core.graph_model import GnnBellamyModel, GraphBellamyModel

    return {
        "BellamyModel": BellamyModel,
        "GraphBellamyModel": GraphBellamyModel,
        "GnnBellamyModel": GnnBellamyModel,
    }


#: Reserved ``.npz`` member holding the embedded config/metadata JSON.
_META_KEY = "__meta_json__"

#: The artifact carrying the published serving-overrides document
#: (``group -> refreshed model name``); json-only, so it is never
#: reported by ``names()`` and never loadable as a model.
OVERRIDES_NAME = "online--serving-overrides"


class ModelStore:
    """A directory of named, pre-trained Bellamy models.

    A typed facade: naming, serialization format, and model-class
    round-tripping live here; sharding, locking, indexing, and migration
    live in the underlying :class:`~repro.runtime.ArtifactStore`
    (reachable as :attr:`artifacts` for maintenance operations).
    """

    def __init__(
        self,
        root: PathLike,
        artifacts: Optional[ArtifactStore] = None,
        retry: Optional[RetryPolicy] = None,
        backend: Union[None, str, "StoreBackend"] = None,
    ) -> None:
        self.artifacts = (
            artifacts
            if artifacts is not None
            else ArtifactStore(
                root, retry=retry or default_lock_retry(), backend=backend
            )
        )
        # The real directory model files live under (``root`` itself may
        # have been a ``scheme://`` URI).
        self.root = self.artifacts.root

    def rebind_metrics(self, registry) -> None:
        """Move the underlying store's metrics into ``registry`` (totals
        carried over) — the serve app calls this so per-backend store op
        counters land on the scraped registry::

            session.store.rebind_metrics(app.registry)
        """
        self.artifacts.rebind_metrics(registry)

    def _check_name(self, name: str) -> str:
        # One validation rule for the whole stack: the artifact store's.
        try:
            return ArtifactStore.check_name(name)
        except ValueError:
            raise ValueError(
                f"model name {name!r} must match [A-Za-z0-9._-]+ (got unsafe characters)"
            ) from None

    def weights_path(self, name: str) -> Optional[Path]:
        """The resolved on-disk ``.npz`` path of ``name`` (``None`` when the
        model is not stored). Layout-aware: prefers the sharded location,
        falls back to the pre-shard flat file."""
        self._check_name(name)
        return self.artifacts.find(name, "npz")

    def save(
        self,
        name: str,
        model: BellamyModel,
        metadata: Optional[Dict] = None,
    ) -> None:
        """Persist ``model`` under ``name`` (overwrites silently, atomically).

        The concrete model class is recorded so graph-aware variants
        round-trip (see :func:`model_class_registry`). The config/metadata
        JSON is embedded *inside* the ``.npz``, which is committed via
        temp-file + ``os.replace`` — the single atomic commit point. The
        ``.json`` sidecar is written afterwards purely for human inspection;
        a crash between the two commits still leaves a loadable,
        self-consistent model (the online refresh path relies on this to
        swap models under live traffic). The whole save runs under the
        artifact's cross-process file lock, so concurrent saves of one name
        serialize instead of interleaving their files.
        """
        self._check_name(name)
        payload = {
            "config": model.config.to_dict(),
            "model_class": type(model).__name__,
            "metadata": metadata or {},
        }
        state = dict(model.full_state_dict())
        if _META_KEY in state:
            raise ValueError(f"model state may not use the reserved key {_META_KEY!r}")
        state[_META_KEY] = np.array(json.dumps(payload, sort_keys=True))
        with self.artifacts.transaction(name) as txn:
            txn.write("npz", lambda path: save_npz_dict(path, state))
            txn.write("json", lambda path: save_json(path, payload))

    @staticmethod
    def _split_state(state: Dict, meta_path: Optional[Path]) -> Tuple[Dict, Dict]:
        """(weights, config/metadata payload) of a loaded ``.npz`` state.

        Stores written before the embedded-metadata format fall back to the
        ``.json`` sidecar.
        """
        meta_array = state.pop(_META_KEY, None)
        if meta_array is not None:
            return state, json.loads(str(meta_array))
        if meta_path is None:
            raise FileNotFoundError(
                "model has no embedded metadata and no .json sidecar"
            )
        return state, load_json(meta_path)

    def load(self, name: str) -> BellamyModel:
        """Load the model saved under ``name`` (restoring its concrete class)."""
        weights_path = self.weights_path(name)
        if weights_path is None:
            raise FileNotFoundError(f"no model named {name!r} in {self.root}")
        state, payload = self._split_state(
            load_npz_dict(weights_path), self.artifacts.find(name, "json")
        )
        registry = model_class_registry()
        class_name = payload.get("model_class", "BellamyModel")
        try:
            model_cls = registry[class_name]
        except KeyError:
            raise ValueError(
                f"stored model {name!r} has unknown class {class_name!r}; "
                f"known: {sorted(registry)}"
            ) from None
        model = model_cls(BellamyConfig.from_dict(payload["config"]))
        model.load_full_state_dict(state)
        model.eval()
        return model

    def metadata(self, name: str) -> Dict:
        """The metadata stored alongside ``name``.

        Read from the ``.npz`` (the committed source of truth), falling back
        to the ``.json`` sidecar for stores written by older versions. The
        archive is read lazily — only the embedded metadata member is
        decompressed, never the weights.
        """
        weights_path = self.weights_path(name)
        meta_path = self.artifacts.find(name, "json")
        if weights_path is not None:
            with np.load(weights_path, allow_pickle=False) as archive:
                if _META_KEY in archive.files:
                    return json.loads(str(archive[_META_KEY]))["metadata"]
            if meta_path is None:
                raise FileNotFoundError(
                    f"model {name!r} has neither embedded metadata nor a sidecar"
                )
            return load_json(meta_path)["metadata"]
        if meta_path is None:
            raise FileNotFoundError(f"no model named {name!r} in {self.root}")
        return load_json(meta_path)["metadata"]

    def exists(self, name: str) -> bool:
        """Whether a model named ``name`` is stored (index lookup + O(1)
        ``stat`` fallback — never a directory scan)."""
        self._check_name(name)
        return self.artifacts.exists(name, "npz")

    def names(self) -> List[str]:
        """All stored model names (sorted), answered from the store index
        plus any not-yet-migrated flat-layout files."""
        return self.artifacts.names(member="npz")

    def generation(self) -> int:
        """The store's monotonic generation — bumped (in whichever
        process) by every save, delete, and index rebuild. Serving
        caches poll this to learn that another worker refreshed a
        model."""
        return self.artifacts.generation()

    # ------------------------------------------------------------------ #
    # Serving overrides (the cross-process refresh hand-off document)
    # ------------------------------------------------------------------ #

    def publish_serving_overrides(self, overrides: Dict[str, str]) -> None:
        """Persist the ``group -> model name`` serving-overrides map.

        The online refresh path publishes here after committing a
        refreshed model; the committed transaction bumps the store
        generation, which is what other processes' generation watchers
        poll. The document is a plain JSON artifact
        (:data:`OVERRIDES_NAME`) — ``names()`` never reports it as a
        model because it carries no ``npz`` member.
        """
        payload = {
            "version": 1,
            "overrides": {
                str(group): self._check_name(name)
                for group, name in sorted(overrides.items())
            },
        }
        with self.artifacts.transaction(OVERRIDES_NAME) as txn:
            txn.write("json", lambda path: save_json(path, payload))

    def load_serving_overrides(self) -> Dict[str, str]:
        """The published ``group -> model name`` map (``{}`` when never
        published). A concurrent publish is retried once: the document
        is swapped via ``os.replace``, so a read can race the swap but
        never observes a half-written file."""
        for _ in range(2):
            path = self.artifacts.find(OVERRIDES_NAME, "json")
            if path is None:
                return {}
            try:
                payload = load_json(path)
            except (OSError, ValueError):
                continue  # racing replace: re-resolve and re-read
            overrides = payload.get("overrides", {})
            return {str(group): str(name) for group, name in overrides.items()}
        return {}

    def delete(self, name: str) -> None:
        """Remove a stored model (no error if absent)."""
        self._check_name(name)
        self.artifacts.delete(name)

    # ------------------------------------------------------------------ #
    # Maintenance passthrough
    # ------------------------------------------------------------------ #

    def migrate(self) -> List[str]:
        """Re-home every pre-shard flat-layout model into the sharded
        layout and rebuild the index; returns the migrated names."""
        return self.artifacts.migrate_flat()

    def gc(self, max_age_s: float = 3600.0) -> List[Path]:
        """Sweep orphaned temp files left by crashed writers."""
        return self.artifacts.gc_temp(max_age_s=max_age_s)
