"""Model persistence: save/load pre-trained Bellamy models.

The paper's workflow pre-trains a general model once, preserves the model
state, and later loads + fine-tunes it per context; time-to-fit measurements
explicitly include "loading a pre-trained model from disk". The store writes
one ``.npz`` (weights + scaler + runtime scale) and one ``.json`` (config +
metadata) per model.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.utils.serialization import load_json, load_npz_dict, save_json, save_npz_dict

PathLike = Union[str, os.PathLike]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def model_class_registry() -> Dict[str, type]:
    """Loadable model classes by name (lazy import avoids package cycles)."""
    from repro.core.graph_model import GnnBellamyModel, GraphBellamyModel

    return {
        "BellamyModel": BellamyModel,
        "GraphBellamyModel": GraphBellamyModel,
        "GnnBellamyModel": GnnBellamyModel,
    }


class ModelStore:
    """A directory of named, pre-trained Bellamy models."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _paths(self, name: str) -> Tuple[Path, Path]:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"model name {name!r} must match [A-Za-z0-9._-]+ (got unsafe characters)"
            )
        return self.root / f"{name}.npz", self.root / f"{name}.json"

    def save(
        self,
        name: str,
        model: BellamyModel,
        metadata: Optional[Dict] = None,
    ) -> None:
        """Persist ``model`` under ``name`` (overwrites silently).

        The concrete model class is recorded so graph-aware variants
        round-trip (see :func:`model_class_registry`).
        """
        weights_path, meta_path = self._paths(name)
        save_npz_dict(weights_path, model.full_state_dict())
        save_json(
            meta_path,
            {
                "config": model.config.to_dict(),
                "model_class": type(model).__name__,
                "metadata": metadata or {},
            },
        )

    def load(self, name: str) -> BellamyModel:
        """Load the model saved under ``name`` (restoring its concrete class)."""
        weights_path, meta_path = self._paths(name)
        if not weights_path.exists():
            raise FileNotFoundError(f"no model named {name!r} in {self.root}")
        payload = load_json(meta_path)
        registry = model_class_registry()
        class_name = payload.get("model_class", "BellamyModel")
        try:
            model_cls = registry[class_name]
        except KeyError:
            raise ValueError(
                f"stored model {name!r} has unknown class {class_name!r}; "
                f"known: {sorted(registry)}"
            ) from None
        model = model_cls(BellamyConfig.from_dict(payload["config"]))
        model.load_full_state_dict(load_npz_dict(weights_path))
        model.eval()
        return model

    def metadata(self, name: str) -> Dict:
        """The metadata stored alongside ``name``."""
        _, meta_path = self._paths(name)
        return load_json(meta_path)["metadata"]

    def exists(self, name: str) -> bool:
        """Whether a model named ``name`` is stored."""
        weights_path, _ = self._paths(name)
        return weights_path.exists()

    def names(self) -> List[str]:
        """All stored model names (sorted)."""
        return sorted(path.stem for path in self.root.glob("*.npz"))

    def delete(self, name: str) -> None:
        """Remove a stored model (no error if absent)."""
        for path in self._paths(name):
            if path.exists():
                path.unlink()
