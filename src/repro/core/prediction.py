"""Adapter exposing Bellamy through the common ``RuntimeModel`` interface.

The evaluation protocol fits every method on the same per-context samples and
queries predictions at test scale-outs; this adapter hides whether fitting
means fine-tuning a pre-trained model or training a local one, and supports
the zero-sample case (directly applying a pre-trained model, paper §IV-C1
extrapolation with 0 data points).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import RuntimeModel
from repro.core.config import BellamyConfig
from repro.core.finetuning import (
    FinetuneResult,
    FinetuneStrategy,
    finetune,
    train_local,
)
from repro.core.model import BellamyModel
from repro.data.schema import JobContext


class BellamyRuntimeModel(RuntimeModel):
    """Bellamy as a drop-in runtime model for one concrete context."""

    min_train_points = 0  # a pre-trained model can predict with no samples

    def __init__(
        self,
        context: JobContext,
        base_model: Optional[BellamyModel] = None,
        strategy: FinetuneStrategy = FinetuneStrategy.PARTIAL_UNFREEZE,
        config: Optional[BellamyConfig] = None,
        max_epochs: Optional[int] = None,
        variant_label: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        context:
            The execution context predictions are made for.
        base_model:
            A pre-trained model; ``None`` selects the *local* variant.
        strategy:
            Fine-tuning strategy when a base model is given.
        config:
            Configuration for the local variant (ignored with a base model).
        max_epochs:
            Optional cap on fine-tuning epochs (quick experiment scale).
        variant_label:
            Display name, e.g. ``"Bellamy (full)"``.
        seed:
            Seed for the local variant's initialization.
        """
        self.context = context
        self.base_model = base_model
        self.strategy = strategy
        self.config = config
        self.max_epochs = max_epochs
        self.seed = seed
        self.name = variant_label or (
            "Bellamy (local)" if base_model is None else f"Bellamy ({strategy.value})"
        )
        self._fitted: Optional[BellamyModel] = base_model
        self.last_result: Optional[FinetuneResult] = None
        if base_model is None:
            self.min_train_points = 1  # the local variant needs data

    def fit(self, machines: np.ndarray, runtimes: np.ndarray) -> "BellamyRuntimeModel":
        """Fine-tune (or locally train) on the context samples.

        With zero samples and a pre-trained base model this is a no-op:
        the pre-trained model is used as-is.
        """
        machines, runtimes = self._validate_training_data(
            machines, runtimes, allow_empty=True
        )
        if machines.size == 0:
            if self.base_model is None:
                raise ValueError("the local Bellamy variant requires training samples")
            self._fitted = self.base_model
            self.last_result = None
            return self
        if self.base_model is None:
            result = train_local(
                self.context,
                machines,
                runtimes,
                config=self.config,
                max_epochs=self.max_epochs,
                seed=self.seed,
            )
        else:
            result = finetune(
                self.base_model,
                self.context,
                machines,
                runtimes,
                strategy=self.strategy,
                max_epochs=self.max_epochs,
                copy=True,
            )
        self._fitted = result.model
        self.last_result = result
        return self

    def predict(self, machines: np.ndarray) -> np.ndarray:
        """Predict runtimes (seconds) at the given scale-outs."""
        if self._fitted is None:
            raise RuntimeError(f"{self.name} has no fitted or pre-trained model")
        return self._fitted.predict(self.context, np.asarray(machines, dtype=np.float64))

    @property
    def epochs_trained(self) -> int:
        """Epochs of the most recent fit (0 for zero-shot application)."""
        return self.last_result.epochs_trained if self.last_result else 0

    @property
    def fit_seconds(self) -> float:
        """Wall-clock of the most recent fit (0 for zero-shot application)."""
        return self.last_result.wall_seconds if self.last_result else 0.0
