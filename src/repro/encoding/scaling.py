"""Feature-wise min-max scaling to (0, 1).

The paper normalizes the input of the scale-out network ``f`` feature-wise to
the range (0, 1), "where the boundaries are determined during training and
used throughout inference" — i.e. the scaler is fit once on training data and
then frozen, so extrapolation test points may legitimately map outside (0, 1).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class MinMaxScaler:
    """Per-feature affine map of training range onto [0, 1]."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.max_: Optional[np.ndarray] = None

    @property
    def is_fit(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.min_ is not None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        """Learn per-column minima and maxima from a 2-D array."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] == 0:
            raise ValueError(f"fit expects a non-empty 2-D array, got shape {features.shape}")
        self.min_ = features.min(axis=0)
        self.max_ = features.max(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map features into the unit box; constant columns map to 0.5."""
        if not self.is_fit:
            raise RuntimeError("MinMaxScaler.transform called before fit")
        features = np.asarray(features, dtype=np.float64)
        span = self.max_ - self.min_
        scaled = np.empty_like(features, dtype=np.float64)
        constant = span == 0
        varying = ~constant
        scaled[..., varying] = (features[..., varying] - self.min_[varying]) / span[varying]
        # A feature the training data never varied carries no information;
        # mapping it to the box centre keeps inference well-defined.
        scaled[..., constant] = 0.5
        return scaled

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit, then transform the same array."""
        return self.fit(features).transform(features)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serializable state (empty when unfit)."""
        if not self.is_fit:
            return {}
        return {"min": self.min_.copy(), "max": self.max_.copy()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state:
            self.min_ = np.asarray(state["min"], dtype=np.float64).copy()
            self.max_ = np.asarray(state["max"], dtype=np.float64).copy()
        else:
            self.min_ = None
            self.max_ = None
