"""Scale-out feature maps shared by Bellamy and the Ernest baseline.

Ernest's parametric model (paper Eq. 1) is
``f = t1 + t2/x + t3*log(x) + t4*x``; its design matrix therefore has columns
``[1, 1/x, log(x), x]``. Bellamy's scale-out network consumes the same
information minus the constant: ``[1/x, log(x), x]`` (paper §III-B).
"""

from __future__ import annotations

import numpy as np


def _validate_scaleouts(scaleouts: np.ndarray) -> np.ndarray:
    scaleouts = np.asarray(scaleouts, dtype=np.float64).reshape(-1)
    if scaleouts.size == 0:
        raise ValueError("need at least one scale-out value")
    if (scaleouts <= 0).any():
        raise ValueError(f"scale-outs must be positive, got {scaleouts}")
    return scaleouts


def bellamy_features(scaleouts) -> np.ndarray:
    """Feature matrix ``[1/x, log(x), x]`` with shape ``(n, 3)``."""
    x = _validate_scaleouts(scaleouts)
    return np.column_stack([1.0 / x, np.log(x), x])


def ernest_features(scaleouts) -> np.ndarray:
    """Ernest design matrix ``[1, 1/x, log(x), x]`` with shape ``(n, 4)``."""
    x = _validate_scaleouts(scaleouts)
    return np.column_stack([np.ones_like(x), 1.0 / x, np.log(x), x])
