"""Character vocabulary used before n-gram extraction (paper §III-C).

"We first utilize a simple case insensitive character-vocabulary with
alphanumeric characters and a handful of special symbols. Characters not
present in the vocabulary are stripped away."
"""

from __future__ import annotations

import string
from typing import FrozenSet

#: Special symbols that commonly occur in node types, job parameters, and
#: version strings (e.g. "m4.2xlarge", "--iterations=25", "spark-2.4.4").
DEFAULT_SPECIAL_SYMBOLS: str = ".-_=/ ,:"


class Vocabulary:
    """Case-insensitive character whitelist with a cleaning operation."""

    def __init__(self, special_symbols: str = DEFAULT_SPECIAL_SYMBOLS) -> None:
        self.special_symbols = special_symbols
        self._allowed: FrozenSet[str] = frozenset(
            string.ascii_lowercase + string.digits + special_symbols
        )

    @property
    def characters(self) -> FrozenSet[str]:
        """The set of allowed (lowercase) characters."""
        return self._allowed

    def __contains__(self, char: str) -> bool:
        return char.lower() in self._allowed

    def clean(self, text: str) -> str:
        """Lowercase ``text`` and strip every character not in the vocabulary."""
        lowered = str(text).lower()
        return "".join(char for char in lowered if char in self._allowed)


#: Shared default instance.
DEFAULT_VOCABULARY = Vocabulary()
