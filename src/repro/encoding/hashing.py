"""Feature hashing of textual properties (paper §III-C, Eq. 4, second branch).

Replaces scikit-learn's ``HashingVectorizer``: character n-grams of the
vocabulary-cleaned text are counted and scattered into a fixed-size vector via
a hash function, then the vector is projected onto the Euclidean unit sphere.

The hash is FNV-1a (64-bit), implemented here so the library has no hidden
dependencies and hashing is stable across processes and Python versions
(``hash()`` is salted; ``sklearn`` uses MurmurHash3). A second, independent
bit of the hash decides the *sign* of each update — the same trick sklearn
uses so that colliding terms partially cancel instead of compounding.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.encoding.ngrams import ngram_counts
from repro.encoding.vocabulary import DEFAULT_VOCABULARY, Vocabulary

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


class HashingVectorizer:
    """Hash character n-grams of a text into a fixed-size, unit-norm vector.

    Parameters
    ----------
    n_features:
        Output dimensionality ``L``.
    ngram_range:
        Inclusive (min_n, max_n) for character n-grams; the paper uses (1, 3).
    vocabulary:
        Character whitelist applied before n-gram extraction.
    signed:
        Use one hash bit as the sign of each count update (reduces collision
        bias). The paper's description uses plain counts; both are supported
        and the default follows the description (unsigned).
    normalize:
        Project the output on the Euclidean unit sphere (paper: always).
    """

    def __init__(
        self,
        n_features: int,
        ngram_range: Tuple[int, int] = (1, 3),
        vocabulary: Optional[Vocabulary] = None,
        signed: bool = False,
        normalize: bool = True,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be > 0, got {n_features}")
        self.n_features = n_features
        self.ngram_range = ngram_range
        self.vocabulary = vocabulary if vocabulary is not None else DEFAULT_VOCABULARY
        self.signed = signed
        self.normalize = normalize

    def index_of(self, term: str) -> int:
        """The output index assigned to ``term`` by the hash function."""
        return fnv1a_64(term.encode("utf-8")) % self.n_features

    def sign_of(self, term: str) -> float:
        """The sign assigned to ``term`` (always +1 when unsigned)."""
        if not self.signed:
            return 1.0
        # Use an independent bit (the 33rd) of the hash for the sign so that
        # sign and index are effectively uncorrelated.
        return 1.0 if (fnv1a_64(term.encode("utf-8")) >> 33) & 1 else -1.0

    def transform(self, text: str) -> np.ndarray:
        """Vectorize one text into ``R^{n_features}``.

        Empty inputs (or inputs whose characters are all stripped) yield the
        zero vector, which is left unnormalized.
        """
        cleaned = self.vocabulary.clean(text)
        output = np.zeros(self.n_features)
        for term, count in ngram_counts(cleaned, self.ngram_range).items():
            output[self.index_of(term)] += self.sign_of(term) * count
        if self.normalize:
            norm = float(np.linalg.norm(output))
            if norm > 0.0:
                output /= norm
        return output

    def transform_many(self, texts) -> np.ndarray:
        """Vectorize a sequence of texts into a ``(len(texts), L)`` matrix."""
        return np.stack([self.transform(text) for text in texts]) if len(texts) else np.zeros(
            (0, self.n_features)
        )
