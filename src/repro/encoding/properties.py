"""Descriptive-property vectorization (paper §III-C, Eq. 3–4).

Each property ``p`` of a job-execution context is transformed into a
fixed-size vector ``p_vec in R^N``::

    p_vec = [lambda, q_1, ..., q_L]   with   L = N - 1

where ``q`` comes from the *binarizer* when ``p`` is a natural number and
from the *hashing vectorizer* otherwise, and the binary prefix ``lambda``
indicates which method was used. Hashed vectors are projected onto the
Euclidean unit sphere (inside the vectorizer).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.encoding.binarizer import Binarizer
from repro.encoding.hashing import HashingVectorizer
from repro.encoding.vocabulary import Vocabulary

#: Prefix value marking a binarizer-encoded property.
LAMBDA_BINARIZED: float = 1.0
#: Prefix value marking a hashed textual property.
LAMBDA_HASHED: float = 0.0


class PropertyEncoder:
    """Encode descriptive properties into ``R^N`` vectors.

    Parameters
    ----------
    vector_size:
        Total output size ``N`` (the paper uses 40, "to allow for encoding
        larger numbers while also reducing the collision probability").
    ngram_range:
        Character n-gram range for textual properties.
    vocabulary:
        Character whitelist; defaults to the paper's alphanumeric + symbols.
    signed_hashing:
        Whether the hashing vectorizer uses signed updates.
    """

    def __init__(
        self,
        vector_size: int = 40,
        ngram_range: Tuple[int, int] = (1, 3),
        vocabulary: Optional[Vocabulary] = None,
        signed_hashing: bool = False,
    ) -> None:
        if vector_size < 2:
            raise ValueError(f"vector_size must be >= 2, got {vector_size}")
        self.vector_size = vector_size
        self.code_size = vector_size - 1  # L = N - 1
        self.binarizer = Binarizer(min(self.code_size, 62))
        self.hasher = HashingVectorizer(
            n_features=self.code_size,
            ngram_range=ngram_range,
            vocabulary=vocabulary,
            signed=signed_hashing,
            normalize=True,
        )

    def encode_property(self, value: object) -> np.ndarray:
        """Encode a single property value into ``R^N``.

        Natural numbers (and digit strings) go through the binarizer with
        prefix ``lambda = 1``; everything else is stringified, cleaned, and
        hashed with prefix ``lambda = 0``. Naturals beyond the binarizer's
        bit capacity (``2^(N-1) - 1``) cannot be represented exactly and
        fall back to the hasher like any other text.
        """
        out = np.zeros(self.vector_size)
        if (
            Binarizer.is_encodable(value)
            and Binarizer.to_int(value) <= self.binarizer.capacity
        ):
            out[0] = LAMBDA_BINARIZED
            bits = self.binarizer.encode(Binarizer.to_int(value))
            out[1 : 1 + bits.size] = bits
        else:
            out[0] = LAMBDA_HASHED
            out[1:] = self.hasher.transform(str(value))
        return out

    def encode_properties(self, values: Sequence[object]) -> np.ndarray:
        """Encode a sequence of properties into a ``(len(values), N)`` matrix."""
        if len(values) == 0:
            return np.zeros((0, self.vector_size))
        return np.stack([self.encode_property(value) for value in values])

    def is_binarized(self, encoded: np.ndarray) -> bool:
        """Whether an encoded vector came from the binarizer (by its prefix)."""
        encoded = np.asarray(encoded)
        if encoded.shape != (self.vector_size,):
            raise ValueError(f"expected shape ({self.vector_size},), got {encoded.shape}")
        return bool(encoded[0] == LAMBDA_BINARIZED)

    def decode_numeric(self, encoded: np.ndarray) -> int:
        """Recover the integer from a binarizer-encoded vector (tests only)."""
        if not self.is_binarized(encoded):
            raise ValueError("vector was not binarizer-encoded (lambda prefix is 0)")
        return self.binarizer.decode(encoded[1 : 1 + self.binarizer.length])
