"""Descriptive-property encoding substrate (paper §III-C).

Turns heterogeneous context properties (node types, job parameters, dataset
sizes, software versions) into fixed-size numeric vectors: natural numbers via
binary encoding, text via vocabulary-cleaned character n-gram feature hashing
projected on the unit sphere, each with a method-indicator prefix.
"""

from repro.encoding.binarizer import Binarizer
from repro.encoding.hashing import HashingVectorizer, fnv1a_64
from repro.encoding.ngrams import extract_ngrams, ngram_counts
from repro.encoding.properties import (
    LAMBDA_BINARIZED,
    LAMBDA_HASHED,
    PropertyEncoder,
)
from repro.encoding.scaleout import bellamy_features, ernest_features
from repro.encoding.scaling import MinMaxScaler
from repro.encoding.vocabulary import DEFAULT_VOCABULARY, Vocabulary

__all__ = [
    "Binarizer",
    "DEFAULT_VOCABULARY",
    "HashingVectorizer",
    "LAMBDA_BINARIZED",
    "LAMBDA_HASHED",
    "MinMaxScaler",
    "PropertyEncoder",
    "Vocabulary",
    "bellamy_features",
    "ernest_features",
    "extract_ngrams",
    "fnv1a_64",
    "ngram_counts",
]
