"""Binary encoding of natural numbers (paper §III-C, Eq. 4, first branch).

Natural-number properties (CPU cores, memory in MB, iteration counts, dataset
sizes) are encoded as fixed-length bit vectors. This "saves the trouble of
feature-wise scaling, while allowing for uniquely encoding any number of
reasonable size": any ``p <= 2**L - 1`` gets a unique, bounded representation.
"""

from __future__ import annotations

import numpy as np


class Binarizer:
    """Encode non-negative integers as fixed-length binary vectors.

    Bit order is least-significant-first, i.e. ``encode(6) = [0, 1, 1, 0, ...]``.

    Parameters
    ----------
    length:
        Number of bits ``L``. Values up to ``2**L - 1`` are representable.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        if length > 62:
            raise ValueError(f"length must be <= 62 to fit in int64 arithmetic, got {length}")
        self.length = length

    @property
    def capacity(self) -> int:
        """Largest encodable value (inclusive)."""
        return 2**self.length - 1

    def encode(self, value: int) -> np.ndarray:
        """Encode ``value`` into a float vector of 0.0/1.0 bits."""
        value = int(value)
        if value < 0:
            raise ValueError(f"binarizer requires values >= 0, got {value}")
        if value > self.capacity:
            raise ValueError(
                f"value {value} exceeds binarizer capacity {self.capacity} (L={self.length})"
            )
        bits = (value >> np.arange(self.length)) & 1
        return bits.astype(np.float64)

    def decode(self, bits: np.ndarray) -> int:
        """Inverse of :meth:`encode` (used to verify round-trips)."""
        bits = np.asarray(bits)
        if bits.shape != (self.length,):
            raise ValueError(f"expected shape ({self.length},), got {bits.shape}")
        rounded = np.rint(bits).astype(np.int64)
        if not np.isin(rounded, (0, 1)).all() or not np.allclose(
            bits, rounded, atol=0.25
        ):
            raise ValueError("bit vector must contain only (near-)0/1 values")
        return int((rounded << np.arange(self.length)).sum())

    @staticmethod
    def is_encodable(value: object) -> bool:
        """Whether ``value`` is a non-negative integer (or an integer string).

        Mirrors the paper's dispatch: properties in ``N_0`` go through the
        binarizer, everything else through the hasher. Numeric *strings* such
        as ``"25"`` (a job parameter) count as naturals; floats do not, since
        their binary encoding would not be unique across equal magnitudes.
        """
        if isinstance(value, bool):
            return False
        if isinstance(value, (int, np.integer)):
            return int(value) >= 0
        if isinstance(value, str):
            stripped = value.strip()
            return stripped.isdecimal()
        return False

    @staticmethod
    def to_int(value: object) -> int:
        """Coerce an encodable value (int or digit string) to ``int``."""
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            return int(value)
        if isinstance(value, str) and value.strip().isdecimal():
            return int(value.strip())
        raise TypeError(f"value {value!r} is not binarizer-encodable")
