"""Character n-gram extraction (paper §III-C: unigrams, bigrams, trigrams)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple


def extract_ngrams(text: str, ngram_range: Tuple[int, int] = (1, 3)) -> List[str]:
    """Extract all character n-grams of ``text`` for n in ``ngram_range``.

    Returns n-grams in order of occurrence (duplicates preserved); the
    vectorizer counts them afterwards. An empty string yields no n-grams.
    """
    low, high = ngram_range
    if low < 1 or high < low:
        raise ValueError(f"invalid ngram_range {ngram_range!r}; need 1 <= low <= high")
    grams: List[str] = []
    length = len(text)
    for n in range(low, high + 1):
        if n > length:
            break
        grams.extend(text[idx : idx + n] for idx in range(length - n + 1))
    return grams


def ngram_counts(text: str, ngram_range: Tuple[int, int] = (1, 3)) -> Dict[str, int]:
    """Count unique n-grams of ``text`` (the ``|t_s|`` term counts in Eq. 4)."""
    return dict(Counter(extract_ngrams(text, ngram_range)))
