#!/usr/bin/env python3
"""Reusing a model across environments (public cloud -> private cluster).

Reproduces the paper's §IV-C2 scenario for one algorithm: a Bellamy model
pre-trained on the C3O (cloud) traces is reused on the Bell (private-cluster)
context of the same algorithm — a significant context shift (different
hardware generation, Hadoop 2.7/Spark 2.0, scale-outs up to 60 machines).

All four reuse strategies are compared against training from scratch, both on
prediction error and on fine-tuning time.

Run:  python examples/cross_environment_reuse.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    BellamyConfig,
    FinetuneStrategy,
    finetune,
    pretrain,
    train_local,
)
from repro.data import generate_bell_dataset, generate_c3o_dataset
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

ALGORITHM = "pagerank"
N_SAMPLES = 4


def main() -> None:
    c3o = generate_c3o_dataset(seed=0)
    bell = generate_bell_dataset(seed=0)

    config = BellamyConfig(learning_rate=1e-3, seed=0)
    print(f"pre-training a {ALGORITHM} model on the cloud (C3O) corpus ...")
    base = pretrain(c3o, ALGORITHM, config=config, epochs=demo_epochs(400)).model

    context_data = bell.for_algorithm(ALGORITHM)
    target = context_data.contexts()[0]
    print(
        f"reusing it on the private cluster: {target.node_type}, "
        f"{target.dataset_mb} MB, software: {target.software}\n"
    )

    # A few observed samples from the new environment.
    rng = np.random.default_rng(0)
    machines_all = context_data.scaleouts()
    chosen = np.sort(rng.choice(machines_all, size=N_SAMPLES, replace=False))
    samples = [
        (m, context_data.filter(lambda e: e.machines == m).runtimes_array()[0])
        for m in chosen
    ]
    sample_machines = np.array([m for m, _ in samples], dtype=np.float64)
    sample_runtimes = np.array([r for _, r in samples])
    print(f"observed samples at scale-outs {sample_machines.astype(int).tolist()}\n")

    machines, actual = context_data.mean_runtime_curve()
    rows = []
    for strategy in FinetuneStrategy:
        result = finetune(
            base, target, sample_machines, sample_runtimes,
            strategy=strategy, max_epochs=demo_epochs(800),
        )
        predicted = result.model.predict(target, machines)
        mre = np.mean(np.abs(predicted - actual) / actual)
        rows.append(
            [strategy.value, f"{mre:.3f}", result.epochs_trained,
             f"{result.wall_seconds:.2f}s", result.stop_reason]
        )

    local = train_local(
        target, sample_machines, sample_runtimes, config=config,
        max_epochs=demo_epochs(800), seed=3,
    )
    predicted = local.model.predict(target, machines)
    mre = np.mean(np.abs(predicted - actual) / actual)
    rows.append(
        ["local (from scratch)", f"{mre:.3f}", local.epochs_trained,
         f"{local.wall_seconds:.2f}s", local.stop_reason]
    )

    print(
        ascii_table(
            ["strategy", "curve MRE", "epochs", "fit time", "stop"],
            rows,
            title=f"model reuse on the Bell {ALGORITHM} context "
                  f"({N_SAMPLES} samples)",
        )
    )
    print(
        "\nExpected shape (paper §IV-C2): reusing pre-trained weights does not\n"
        "necessarily win on error after a drastic environment shift, but it\n"
        "accelerates training; local and full-reset are the most stable."
    )


if __name__ == "__main__":
    run_main(main)
