"""Shared plumbing of the runnable examples.

Three things every example gets from here, so they behave consistently:

``optional_import(name, purpose)``
    One uniform guard for optional dependencies (e.g. ``matplotlib`` for
    plotting extras). Returns the module or ``None`` — after printing a
    one-line notice, so a missing extra visibly skips its feature instead
    of silently changing what the script does.

``demo_epochs(default)``
    The training budget, overridable via the ``REPRO_EXAMPLE_EPOCHS``
    environment variable. The CI smoke pass sets it to a tiny value so
    every example runs in seconds; interactively you get the demo default.

``run_main(main)``
    The ``if __name__ == "__main__"`` entry point. It fails loudly (exit
    code 1) if the example produced **no output** — an example that prints
    nothing has silently broken, and the smoke pass treats it as a failure
    rather than a pass.
"""

from __future__ import annotations

import importlib
import os
import sys
from typing import Callable, Optional


def optional_import(name: str, purpose: str = ""):
    """Import an optional dependency, or return ``None`` with a notice.

    >>> optional_import("json") is not None
    True
    """
    try:
        return importlib.import_module(name)
    except ImportError:
        note = f" ({purpose})" if purpose else ""
        print(f"[skip] optional dependency {name!r} not installed{note}")
        return None


def demo_epochs(default: int) -> int:
    """Training epochs for the demo, honoring ``REPRO_EXAMPLE_EPOCHS``.

    >>> demo_epochs(300) if "REPRO_EXAMPLE_EPOCHS" not in __import__("os").environ else 300
    300
    """
    raw = os.environ.get("REPRO_EXAMPLE_EPOCHS", "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class _CountingStdout:
    """Wraps stdout and counts the bytes written through it."""

    def __init__(self, wrapped) -> None:
        self._wrapped = wrapped
        self.written = 0

    def write(self, text: str) -> int:
        self.written += len(text)
        return self._wrapped.write(text)

    def __getattr__(self, name: str):
        return getattr(self._wrapped, name)


def run_main(main: Callable[[], Optional[int]]) -> None:
    """Run an example's ``main`` and exit non-zero on silent success.

    Usage, replacing the bare ``main()`` call::

        if __name__ == "__main__":
            run_main(main)
    """
    counter = _CountingStdout(sys.stdout)
    sys.stdout = counter
    try:
        status = main() or 0
    finally:
        sys.stdout = counter._wrapped
    if status == 0 and counter.written == 0:
        print(
            f"error: {getattr(main, '__module__', 'example')} produced no "
            "output — the example silently did nothing",
            file=sys.stderr,
        )
        status = 1
    raise SystemExit(status)
