#!/usr/bin/env python3
"""Bringing your own traces: CSV import/export, model store, reuse.

Shows the workflow a downstream user follows with their own historical
executions instead of the bundled synthetic datasets:

1. export traces to the flat CSV format (here: generated ones, standing in
   for your own job history),
2. load them back, pre-train a model, and persist it in a model store,
3. later (e.g. in a different process) load the model by name and predict a
   new context without retraining.

Run:  python examples/custom_traces.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import BellamyConfig, ModelStore, pretrain
from repro.data import (
    Execution,
    ExecutionDataset,
    JobContext,
    read_csv,
    write_csv,
)
from repro.simulator.traces import TraceGenerator

from _util import demo_epochs, run_main


def build_history() -> ExecutionDataset:
    """Stand-in for your organization's job history: three grep contexts."""
    generator = TraceGenerator(seed=11)
    dataset = ExecutionDataset()
    for node_type, size_mb, pattern in [
        ("m5.xlarge", 10_000, "error"),
        ("c5.2xlarge", 20_000, "warn|fatal"),
        ("r4.xlarge", 40_000, "error"),
    ]:
        context = JobContext(
            algorithm="grep",
            node_type=node_type,
            dataset_mb=size_mb,
            dataset_characteristics="mixed-lines",
            job_params=(("pattern", pattern),),
        )
        dataset.extend(
            generator.executions_for_context(context, (2, 4, 6, 8, 10, 12), 3)
        )
    return dataset


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="bellamy-custom-"))
    csv_path = workdir / "history.csv"
    store_dir = workdir / "models"

    # 1. Export / import the flat CSV trace format.
    history = build_history()
    write_csv(csv_path, history)
    print(f"wrote {len(history)} executions to {csv_path}")
    loaded = read_csv(csv_path)
    assert len(loaded) == len(history)
    print(f"read them back: {loaded.summary()}\n")

    # 2. Pre-train and persist.
    result = pretrain(
        loaded, "grep", config=BellamyConfig(learning_rate=1e-3, seed=0), epochs=demo_epochs(300)
    )
    store = ModelStore(store_dir)
    store.save(
        "grep-general",
        result.model,
        metadata={
            "algorithm": "grep",
            "contexts": result.n_contexts,
            "samples": result.n_samples,
            "validation_mae_s": result.validation_mae,
        },
    )
    print(f"saved pre-trained model to {store_dir} as 'grep-general'")
    print(f"store contents: {store.names()}\n")

    # 3. Later: load by name and predict a brand-new context zero-shot.
    model = store.load("grep-general")
    print("metadata:", store.metadata("grep-general"))
    new_context = JobContext(
        algorithm="grep",
        node_type="m4.2xlarge",  # a node type not in the history
        dataset_mb=20_000,
        dataset_characteristics="mixed-lines",
        job_params=(("pattern", "error"),),
    )
    machines = [2, 4, 6, 8, 10, 12]
    predictions = model.predict(new_context, machines)
    truth = [
        TraceGenerator(seed=11).expected_runtime(new_context, m) for m in machines
    ]
    print("\nzero-shot prediction for the new context:")
    for m, p, t in zip(machines, predictions, truth):
        print(f"  {m:2d} machines: predicted {p:7.1f}s   ground truth {t:7.1f}s")
    mre = np.mean(np.abs(np.array(predictions) - np.array(truth)) / np.array(truth))
    print(f"\nzero-shot MRE vs simulator ground truth: {mre:.3f}")


if __name__ == "__main__":
    run_main(main)
