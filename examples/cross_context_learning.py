#!/usr/bin/env python3
"""Cross-context learning: local vs filtered vs full pre-training.

Reproduces the core comparison of the paper's §IV-C1 on a single K-Means
context: how much does pre-training on historical executions from *other*
contexts help when only a handful of samples from the context at hand exist?

All five methods come from the unified estimator API: a ``repro.api.Session``
pre-trains the leave-one-out base models (full and filtered corpora) and
hands back registry-resolved ``MethodSpec``s; for each training-set size they
are fitted on the same sub-sampled splits and scored on interpolation test
points.

Run:  python examples/cross_context_learning.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Session
from repro.core import BellamyConfig
from repro.data import subsample_splits, split_arrays, test_point
from repro.data import generate_c3o_dataset
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

ALGORITHM = "kmeans"
PRETRAIN_EPOCHS = demo_epochs(400)
FINETUNE_EPOCHS = demo_epochs(400)
SPLITS_PER_SIZE = 5


def main() -> None:
    dataset = generate_c3o_dataset(seed=0)
    target = dataset.for_algorithm(ALGORITHM).contexts()[3]
    context_data = dataset.for_context(target.context_id)
    print(f"target context: {target.node_type}, {target.dataset_mb} MB, "
          f"{target.params_text}\n")

    session = Session(
        dataset,
        config=BellamyConfig(learning_rate=1e-3, seed=0).with_overrides(
            pretrain_epochs=PRETRAIN_EPOCHS,
            finetune_max_epochs=FINETUNE_EPOCHS,
        ),
        seed=7,
    )

    # Corpus policies (paper §IV-C1) — the session excludes the target's own
    # executions from both pre-training corpora.
    corpus_full = session.corpus_for(ALGORITHM, "full", target)
    corpus_filtered = session.corpus_for(ALGORITHM, "filtered", target)
    print(
        f"pre-training corpora: full = {len(corpus_full)} executions, "
        f"filtered (substantially different contexts only) = "
        f"{len(corpus_filtered)} executions"
    )
    # method_specs pre-trains (and caches) both base models.
    specs = session.method_specs(target, max_epochs=FINETUNE_EPOCHS)
    print("pre-training done\n")

    rows = []
    for n_train in (1, 2, 3, 4):
        splits = subsample_splits(context_data, n_train, SPLITS_PER_SIZE, seed=n_train)
        errors: dict = {spec.name: [] for spec in specs}
        for split in splits:
            machines, runtimes = split_arrays(context_data, split)
            pair = test_point(context_data, split, "interpolation")
            if pair is None:
                continue
            test_machines, actual = pair
            for spec in specs:
                if n_train < spec.min_train_points:
                    continue
                model = spec.build(target).fit(target, machines, runtimes)
                predicted = model.predict_one(test_machines)
                errors[spec.name].append(abs(predicted - actual) / actual)
        rows.append(
            [n_train]
            + [
                f"{np.mean(errors[spec.name]):.3f}" if errors[spec.name] else "-"
                for spec in specs
            ]
        )

    print(
        ascii_table(
            ["#samples"] + [spec.name for spec in specs],
            rows,
            title=f"interpolation MRE on the target {ALGORITHM} context",
        )
    )
    print(
        "\nExpected shape (paper Fig. 5): the pre-trained variants profit from\n"
        "historical data of other contexts and dominate at small sample counts;\n"
        "the local variant needs more samples to catch up."
    )


if __name__ == "__main__":
    run_main(main)
