#!/usr/bin/env python3
"""Cross-context learning: local vs filtered vs full pre-training.

Reproduces the core comparison of the paper's §IV-C1 on a single K-Means
context: how much does pre-training on historical executions from *other*
contexts help when only a handful of samples from the context at hand exist?

For each training-set size the three Bellamy variants and the two baselines
are fitted on the same sub-sampled splits and scored on interpolation test
points.

Run:  python examples/cross_context_learning.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BellModel, ErnestModel
from repro.core import (
    BellamyConfig,
    BellamyRuntimeModel,
    FinetuneStrategy,
    filter_distinct_contexts,
    pretrain,
)
from repro.data import subsample_splits, split_arrays, test_point
from repro.data import generate_c3o_dataset
from repro.utils.tables import ascii_table

ALGORITHM = "kmeans"
PRETRAIN_EPOCHS = 400
FINETUNE_EPOCHS = 400
SPLITS_PER_SIZE = 5


def main() -> None:
    dataset = generate_c3o_dataset(seed=0)
    target = dataset.for_algorithm(ALGORITHM).contexts()[3]
    context_data = dataset.for_context(target.context_id)
    print(f"target context: {target.node_type}, {target.dataset_mb} MB, "
          f"{target.params_text}\n")

    config = BellamyConfig(learning_rate=1e-3, seed=0)

    # Corpus policies (paper §IV-C1).
    corpus_full = dataset.for_algorithm(ALGORITHM).exclude_context(target.context_id)
    corpus_filtered = filter_distinct_contexts(corpus_full, target)
    print(
        f"pre-training corpora: full = {len(corpus_full)} executions, "
        f"filtered (substantially different contexts only) = "
        f"{len(corpus_filtered)} executions"
    )
    base_full = pretrain(corpus_full, ALGORITHM, config=config, epochs=PRETRAIN_EPOCHS).model
    base_filtered = pretrain(
        corpus_filtered, ALGORITHM, config=config, epochs=PRETRAIN_EPOCHS
    ).model
    print("pre-training done\n")

    def bellamy(base, label):
        return lambda: BellamyRuntimeModel(
            target,
            base_model=base,
            strategy=FinetuneStrategy.PARTIAL_UNFREEZE,
            max_epochs=FINETUNE_EPOCHS,
            variant_label=label,
        )

    methods = {
        "NNLS": lambda: ErnestModel(),
        "Bell": lambda: BellModel(),
        "Bellamy (local)": lambda: BellamyRuntimeModel(
            target, base_model=None, config=config, max_epochs=FINETUNE_EPOCHS, seed=7
        ),
        "Bellamy (filtered)": bellamy(base_filtered, "Bellamy (filtered)"),
        "Bellamy (full)": bellamy(base_full, "Bellamy (full)"),
    }

    rows = []
    for n_train in (1, 2, 3, 4):
        splits = subsample_splits(context_data, n_train, SPLITS_PER_SIZE, seed=n_train)
        errors: dict = {name: [] for name in methods}
        for split in splits:
            machines, runtimes = split_arrays(context_data, split)
            pair = test_point(context_data, split, "interpolation")
            if pair is None:
                continue
            test_machines, actual = pair
            for name, factory in methods.items():
                if name == "Bell" and n_train < 3:
                    continue
                model = factory().fit(machines, runtimes)
                predicted = model.predict_one(test_machines)
                errors[name].append(abs(predicted - actual) / actual)
        rows.append(
            [n_train]
            + [
                f"{np.mean(errors[name]):.3f}" if errors[name] else "-"
                for name in methods
            ]
        )

    print(
        ascii_table(
            ["#samples"] + list(methods),
            rows,
            title=f"interpolation MRE on the target {ALGORITHM} context",
        )
    )
    print(
        "\nExpected shape (paper Fig. 5): the pre-trained variants profit from\n"
        "historical data of other contexts and dominate at small sample counts;\n"
        "the local variant needs more samples to catch up."
    )


if __name__ == "__main__":
    main()
