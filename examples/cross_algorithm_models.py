#!/usr/bin/env python3
"""Cross-algorithm performance models (paper §V, future work).

"Since some processing algorithms showed a similar scale-out behavior, we
further plan to research ways of building models across algorithms." This
example pre-trains one Bellamy model on the union corpus of all five C3O
algorithms and compares it — per algorithm — against dedicated per-algorithm
models, plus the pure-transfer case where the model has *never* seen the
target algorithm.

Run:  python examples/cross_algorithm_models.py
"""

from __future__ import annotations

import numpy as np

from repro.core import pretrain
from repro.core.cross_algorithm import pretrain_cross_algorithm
from repro.data import generate_c3o_dataset
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

PRETRAIN_EPOCHS = demo_epochs(300)


def zero_shot_mre(model, dataset, context) -> float:
    """Zero-shot MRE of ``model`` on one context's mean runtime curve."""
    data = dataset.for_context(context.context_id)
    machines, actual = data.mean_runtime_curve()
    predicted = model.predict(context, machines)
    return float(np.mean(np.abs(predicted - actual) / actual))


def main() -> None:
    dataset = generate_c3o_dataset(seed=0)
    algorithms = ("grep", "sort", "pagerank", "sgd", "kmeans")

    print("== 1. One union model over all five algorithms ==")
    union = pretrain_cross_algorithm(dataset, epochs=PRETRAIN_EPOCHS, seed=0)
    union.model.eval()
    print(
        f"trained on {union.n_samples} executions from {union.n_contexts} "
        f"contexts in {union.wall_seconds:.1f}s\n"
    )

    print("== 2. Per-algorithm zero-shot comparison ==")
    rows = []
    for algorithm in algorithms:
        target = dataset.for_algorithm(algorithm).contexts()[1]
        corpus = dataset.for_algorithm(algorithm).exclude_context(target.context_id)

        dedicated = pretrain(corpus, algorithm, epochs=PRETRAIN_EPOCHS, seed=0).model
        dedicated.eval()

        transfer_corpus = dataset.filter(
            lambda e, a=algorithm: e.context.algorithm != a
        )
        transfer = pretrain_cross_algorithm(
            transfer_corpus, epochs=PRETRAIN_EPOCHS, seed=0
        ).model
        transfer.eval()

        rows.append(
            [
                algorithm,
                zero_shot_mre(dedicated, dataset, target),
                zero_shot_mre(union.model, dataset, target),
                zero_shot_mre(transfer, dataset, target),
            ]
        )
    print(
        ascii_table(
            ["algorithm", "per-algorithm", "union", "transfer-only"],
            rows,
            title="zero-shot MRE on an unseen context (lower is better)",
            digits=3,
        )
    )
    print(
        "\nThe union model stays close to the dedicated models (the job-name\n"
        "property separates algorithms in code space); the transfer-only\n"
        "model has never seen the target algorithm and degrades, most\n"
        "strongly across the trivial/non-trivial divide."
    )


if __name__ == "__main__":
    run_main(main)
