#!/usr/bin/env python3
"""Choosing cluster resources to meet a runtime target.

The end-to-end use case the paper motivates (§I, §V): a user must pick a
scale-out for an SGD job with a runtime target and a budget. A
``repro.api.Session`` owns the whole pipeline — it pre-trains the base model
once, fine-tunes on two profiling runs per request, and picks

* the smallest cluster meeting the runtime target, and
* the cheapest cluster meeting it (using on-demand node prices),

and validate the choice against the simulator's ground truth.

Run:  python examples/resource_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Session
from repro.core import BellamyConfig, select_scaleout
from repro.data import generate_c3o_dataset, c3o_trace_generator
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

RUNTIME_TARGET_S = 240.0
CANDIDATES = [2, 4, 6, 8, 10, 12]


def main() -> None:
    dataset = generate_c3o_dataset(seed=0)
    generator = c3o_trace_generator(seed=0)

    # The job at hand: one concrete SGD context.
    target = dataset.for_algorithm("sgd").contexts()[8]
    target_data = dataset.for_context(target.context_id)
    price = target.node.price_per_hour
    print(f"job: SGD on {target.node_type} (${price}/h per node), "
          f"{target.dataset_mb} MB, {target.params_text}")
    print(f"runtime target: {RUNTIME_TARGET_S:.0f}s\n")

    # A Session over every other context: it pre-trains the base model once
    # and fine-tunes per request on the two profiling runs.
    session = Session(
        dataset.exclude_context(target.context_id),
        config=BellamyConfig(learning_rate=1e-3, seed=1).with_overrides(
            pretrain_epochs=demo_epochs(400)
        ),
    )
    profiling_machines = np.array([4.0, 12.0])
    profiling_runtimes = np.array(
        [
            target_data.filter(lambda e: e.machines == m).runtimes_array()[0]
            for m in profiling_machines
        ]
    )
    # Fine-tune once; both selection objectives below reuse the fitted
    # estimator instead of re-running the 800-epoch fine-tune per call.
    model = session.finetune(
        target, profiling_machines, profiling_runtimes, max_epochs=demo_epochs(800)
    )

    # Smallest cluster that meets the target.
    recommendation = select_scaleout(
        model.predict,
        CANDIDATES,
        runtime_target_s=RUNTIME_TARGET_S,
        objective="min_machines",
        price_per_machine_hour=price,
    )
    rows = [
        [
            candidate.machines,
            candidate.predicted_runtime_s,
            generator.expected_runtime(target, candidate.machines),
            f"${candidate.predicted_cost:.3f}",
            "yes" if candidate.meets_target else "no",
        ]
        for candidate in recommendation.candidates
    ]
    print(
        ascii_table(
            ["machines", "predicted [s]", "ground truth [s]", "cost", "meets target"],
            rows,
            title="candidate evaluation",
            digits=1,
        )
    )

    if recommendation.satisfiable:
        chosen = recommendation.chosen
        truth = generator.expected_runtime(target, chosen.machines)
        print(
            f"\nsmallest cluster meeting the target: {chosen.machines} machines "
            f"(predicted {chosen.predicted_runtime_s:.0f}s, ground truth {truth:.0f}s)"
        )
        print(
            "target actually met:" ,
            "yes" if truth <= RUNTIME_TARGET_S * 1.05 else "no (prediction error)",
        )
    else:
        print("\nno candidate meets the target — consider a larger budget")

    # Cheapest cluster meeting the target — same fitted estimator.
    cheapest = select_scaleout(
        model.predict,
        CANDIDATES,
        runtime_target_s=RUNTIME_TARGET_S,
        objective="min_cost",
        price_per_machine_hour=price,
    )
    if cheapest.satisfiable:
        print(
            f"cheapest feasible cluster: {cheapest.chosen.machines} machines at "
            f"${cheapest.chosen.predicted_cost:.3f} per run"
        )


if __name__ == "__main__":
    run_main(main)
