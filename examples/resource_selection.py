#!/usr/bin/env python3
"""Choosing cluster resources to meet a runtime target.

The end-to-end use case the paper motivates (§I, §V): a user must pick a
scale-out for an SGD job with a runtime target and a budget. We fine-tune a
pre-trained Bellamy model on two profiling runs, then use it to pick

* the smallest cluster meeting the runtime target, and
* the cheapest cluster meeting it (using on-demand node prices),

and validate the choice against the simulator's ground truth.

Run:  python examples/resource_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BellamyConfig, finetune, pretrain, select_scaleout
from repro.data import generate_c3o_dataset, c3o_trace_generator
from repro.utils.tables import ascii_table

RUNTIME_TARGET_S = 240.0
CANDIDATES = [2, 4, 6, 8, 10, 12]


def main() -> None:
    dataset = generate_c3o_dataset(seed=0)
    generator = c3o_trace_generator(seed=0)

    # The job at hand: one concrete SGD context.
    target = dataset.for_algorithm("sgd").contexts()[8]
    target_data = dataset.for_context(target.context_id)
    price = target.node.price_per_hour
    print(f"job: SGD on {target.node_type} (${price}/h per node), "
          f"{target.dataset_mb} MB, {target.params_text}")
    print(f"runtime target: {RUNTIME_TARGET_S:.0f}s\n")

    # Pre-train on every other context, fine-tune on two profiling runs.
    corpus = dataset.exclude_context(target.context_id)
    base = pretrain(
        corpus, "sgd", config=BellamyConfig(learning_rate=1e-3, seed=1), epochs=400
    ).model
    profiling_machines = np.array([4.0, 12.0])
    profiling_runtimes = np.array(
        [
            target_data.filter(lambda e: e.machines == m).runtimes_array()[0]
            for m in profiling_machines
        ]
    )
    model = finetune(
        base, target, profiling_machines, profiling_runtimes, max_epochs=800
    ).model

    # Smallest cluster that meets the target.
    recommendation = select_scaleout(
        model,
        CANDIDATES,
        runtime_target_s=RUNTIME_TARGET_S,
        objective="min_machines",
        price_per_machine_hour=price,
        context=target,
    )
    rows = [
        [
            candidate.machines,
            candidate.predicted_runtime_s,
            generator.expected_runtime(target, candidate.machines),
            f"${candidate.predicted_cost:.3f}",
            "yes" if candidate.meets_target else "no",
        ]
        for candidate in recommendation.candidates
    ]
    print(
        ascii_table(
            ["machines", "predicted [s]", "ground truth [s]", "cost", "meets target"],
            rows,
            title="candidate evaluation",
            digits=1,
        )
    )

    if recommendation.satisfiable:
        chosen = recommendation.chosen
        truth = generator.expected_runtime(target, chosen.machines)
        print(
            f"\nsmallest cluster meeting the target: {chosen.machines} machines "
            f"(predicted {chosen.predicted_runtime_s:.0f}s, ground truth {truth:.0f}s)"
        )
        print(
            "target actually met:" ,
            "yes" if truth <= RUNTIME_TARGET_S * 1.05 else "no (prediction error)",
        )
    else:
        print("\nno candidate meets the target — consider a larger budget")

    # Cheapest cluster meeting the target.
    cheapest = select_scaleout(
        model,
        CANDIDATES,
        runtime_target_s=RUNTIME_TARGET_S,
        objective="min_cost",
        price_per_machine_hour=price,
        context=target,
    )
    if cheapest.satisfiable:
        print(
            f"cheapest feasible cluster: {cheapest.chosen.machines} machines at "
            f"${cheapest.chosen.predicted_cost:.3f} per run"
        )


if __name__ == "__main__":
    main()
