#!/usr/bin/env python3
"""Quickstart: generate traces, pre-train a Bellamy model, predict runtimes.

Walks the happy path of the unified estimator API (``repro.api``) in about a
minute:

1. generate the synthetic C3O dataset (930 unique experiments, 5 algorithms),
2. look at how differently SGD scales across contexts (the paper's Fig. 2),
3. open a ``Session`` over all SGD executions except one target context and
   pre-train its base model,
4. predict the target context zero-shot, then fine-tune on two samples,
5. compare against the NNLS baseline — resolved from the same model
   registry by name.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Session, make_estimator
from repro.core import BellamyConfig
from repro.data import generate_c3o_dataset
from repro.eval.experiments import runtime_variance_summary
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

PRETRAIN_EPOCHS = demo_epochs(400)  # paper: 2500; a few hundred suffice for the demo


def main() -> None:
    print("== 1. Generating the synthetic C3O dataset ==")
    dataset = generate_c3o_dataset(seed=0)
    summary = dataset.summary()
    print(
        f"{summary['executions']} executions, {summary['contexts']} contexts, "
        f"algorithms: {', '.join(summary['algorithms'])}\n"
    )

    print("== 2. Scale-out behaviour varies across contexts (cf. paper Fig. 2) ==")
    variance = runtime_variance_summary(dataset, "sgd")
    rows = [
        [scaleout, *quantile]
        for scaleout, quantile in variance.quantiles.items()
    ]
    print(
        ascii_table(
            ["scale-out", "min", "q25", "median", "q75", "max"],
            rows,
            title="normalized SGD runtime across 30 contexts",
            digits=2,
        ),
        "\n",
    )

    print("== 3. A Session over SGD executions from other contexts ==")
    sgd = dataset.for_algorithm("sgd")
    target_context = sgd.contexts()[5]
    target_data = dataset.for_context(target_context.context_id)
    session = Session(
        dataset.exclude_context(target_context.context_id),
        config=BellamyConfig(learning_rate=1e-3, seed=0),
    )
    result = session.pretrain(algorithm="sgd", epochs=PRETRAIN_EPOCHS)
    print(
        f"pre-trained on {result.n_samples} executions from {result.n_contexts} "
        f"contexts in {result.wall_seconds:.1f}s "
        f"(validation MAE {result.validation_mae:.1f}s)\n"
    )

    print(f"== 4. Predicting the unseen context ==")
    print(f"target: {target_context.node_type}, {target_context.dataset_mb} MB, "
          f"{target_context.params_text}")
    machines, actual = target_data.mean_runtime_curve()
    # The session reuses the cached base model — no re-training happens here.
    zero_shot = session.predict(target_context, machines)

    # Fine-tune on two observed samples (scale-outs 4 and 10).
    sample_machines = np.array([4.0, 10.0])
    sample_runtimes = np.array(
        [
            target_data.filter(lambda e: e.machines == m).runtimes_array()[0]
            for m in sample_machines
        ]
    )
    tuned = session.finetune(
        target_context, sample_machines, sample_runtimes, max_epochs=demo_epochs(800)
    )
    fine_tuned = tuned.predict(machines)
    print(
        f"fine-tuned on {len(sample_machines)} samples in "
        f"{tuned.epochs_trained} epochs / {tuned.fit_seconds:.2f}s\n"
    )

    print("== 5. Comparison against the NNLS baseline (same registry) ==")
    ernest = make_estimator("nnls").fit(
        target_context, sample_machines, sample_runtimes
    )
    nnls_prediction = ernest.predict(machines)
    rows = [
        [int(m), a, z, f, e]
        for m, a, z, f, e in zip(
            machines, actual, zero_shot, fine_tuned, nnls_prediction
        )
    ]
    print(
        ascii_table(
            ["scale-out", "actual [s]", "Bellamy 0-shot", "Bellamy tuned", "NNLS (2 pts)"],
            rows,
            digits=1,
        )
    )
    for name, prediction in [
        ("Bellamy zero-shot", zero_shot),
        ("Bellamy fine-tuned", fine_tuned),
        ("NNLS", nnls_prediction),
    ]:
        mre = np.mean(np.abs(prediction - actual) / actual)
        print(f"{name:20s} MRE = {mre:.3f}")


if __name__ == "__main__":
    run_main(main)
