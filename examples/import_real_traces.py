#!/usr/bin/env python3
"""Importing real trace CSVs (C3O / Bell public datasets).

The repository evaluates against simulator-generated traces, but the import
adapters accept the *real* public datasets. This example demonstrates the
workflow without network access by writing a small CSV in the C3O layout,
importing it through a :class:`ColumnMapping`, and training on the result —
exactly what a user with a checkout of ``dos-group/c3o-experiments`` does.

Run:  python examples/import_real_traces.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import pretrain
from repro.data import C3O_DEFAULT_MAPPING, load_real_traces
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

#: A miniature trace file in the C3O CSV layout (values synthetic).
SAMPLE_CSV = """\
machine_count,instance_type,data_size_MB,data_characteristics,gross_runtime,max_iterations,step_size
2,m4.2xlarge,19353,dense-features,905.1,50,0.1
2,m4.2xlarge,19353,dense-features,921.7,50,0.1
4,m4.2xlarge,19353,dense-features,512.8,50,0.1
6,m4.2xlarge,19353,dense-features,398.2,50,0.1
8,m4.2xlarge,19353,dense-features,344.9,50,0.1
2,r4.2xlarge,14540,sparse-features,451.0,100,0.01
4,r4.2xlarge,14540,sparse-features,263.9,100,0.01
6,r4.2xlarge,14540,sparse-features,206.4,100,0.01
8,r4.2xlarge,14540,sparse-features,188.0,100,0.01
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sgd.csv"
        path.write_text(SAMPLE_CSV, encoding="utf-8")

        print("== 1. Importing with a column mapping ==")
        mapping = C3O_DEFAULT_MAPPING.with_overrides(
            param_columns=("max_iterations", "step_size"),
        )
        dataset = load_real_traces(path, mapping=mapping, algorithm="sgd")
        rows = [
            [
                context.node_type,
                context.dataset_mb,
                context.dataset_characteristics,
                context.params_text,
            ]
            for context in dataset.contexts()
        ]
        print(
            ascii_table(
                ["node type", "dataset MB", "characteristics", "job parameters"],
                rows,
                title=f"{len(dataset)} executions, {len(dataset.contexts())} contexts",
            ),
            "\n",
        )

        print("== 2. Training on the imported traces ==")
        result = pretrain(dataset, "sgd", epochs=demo_epochs(200), seed=0)
        result.model.eval()
        context = dataset.contexts()[0]
        prediction = result.model.predict(context, [2, 4, 6, 8])
        rows = [[m, p] for m, p in zip((2, 4, 6, 8), prediction)]
        print(
            ascii_table(
                ["scale-out", "predicted runtime [s]"],
                rows,
                title=f"predictions for {context.node_type}",
                digits=1,
            )
        )
        print(
            "\nFor the real datasets, point load_real_traces / load_trace_directory\n"
            "at your checkout and adjust the ColumnMapping to its headers."
        )


if __name__ == "__main__":
    run_main(main)
