#!/usr/bin/env python3
"""Profiling cost of resource selection: BO search vs model-based (paper §I).

Bellamy's pitch is that pre-trained models recommend resources with little
or no additional profiling, while iterative approaches (CherryPick-style
Bayesian optimization) and designed-experiment approaches (Ernest) pay for
every probe with a real job execution. This example quantifies that:

1. pre-train Bellamy models for SGD and K-Means,
2. for several unseen target contexts, ask each approach for the smallest
   scale-out meeting a runtime target,
3. compare profiling runs spent, success rates, and machine-count regret
   against the noise-free oracle.

Run:  python examples/profiling_cost_comparison.py
"""

from __future__ import annotations

from repro.core import pretrain
from repro.data import c3o_trace_generator, generate_c3o_dataset
from repro.selection.comparison import (
    render_profiling_cost,
    run_profiling_cost_experiment,
)

from _util import demo_epochs, run_main

PRETRAIN_EPOCHS = demo_epochs(300)
CONTEXTS_PER_ALGORITHM = 3


def main() -> None:
    dataset = generate_c3o_dataset(seed=0)
    generator = c3o_trace_generator(seed=0)

    print("== 1. Pre-training base models (one per algorithm) ==")
    pretrained = {}
    targets = []
    for algorithm in ("sgd", "kmeans"):
        contexts = dataset.for_algorithm(algorithm).contexts()
        chosen = contexts[:CONTEXTS_PER_ALGORITHM]
        targets.extend(chosen)
        corpus = dataset.for_algorithm(algorithm)
        for context in chosen:  # none of the targets leaks into the corpus
            corpus = corpus.exclude_context(context.context_id)
        result = pretrain(corpus, algorithm, epochs=PRETRAIN_EPOCHS, seed=0)
        result.model.eval()
        pretrained[algorithm] = result.model
        print(
            f"{algorithm}: {result.n_samples} executions, "
            f"{result.wall_seconds:.1f}s, val MAE {result.validation_mae:.0f}s"
        )

    print(f"\n== 2. Selecting resources for {len(targets)} unseen contexts ==")
    print("target: smallest scale-out whose true runtime meets the deadline\n")

    for samples, label in ((0, "zero-shot"), (1, "one profiling run")):
        result = run_profiling_cost_experiment(
            generator,
            targets,
            pretrained,
            bellamy_samples=samples,
            ernest_samples=4,
            bo_max_runs=6,
            finetune_max_epochs=400,
            seed=0,
        )
        print(f"--- Bellamy budget: {label} ---")
        print(render_profiling_cost(result))
        print()

    print(
        "Every CherryPick/Ernest probe is a full job execution; Bellamy\n"
        "amortizes historical executions from other contexts instead."
    )


if __name__ == "__main__":
    run_main(main)
