#!/usr/bin/env python3
"""Dataflow-graph information for runtime prediction (paper §V, future work).

The paper closes with the outlook of "incorporating dataflow graph
information into the prediction process". This example shows the two
integration levels the library provides:

1. inspect the canonical operator DAGs of the C3O algorithms,
2. encode a graph as a text property and as numeric node features,
3. pre-train the graph-as-property variant (``GraphBellamyModel``) next to
   plain Bellamy on the same corpus and compare zero-shot predictions,
4. embed graphs with the message-passing encoder (``GraphEncoder``).

Run:  python examples/dataflow_graphs.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BellamyConfig, pretrain
from repro.core.graph_model import GraphBellamyModel
from repro.data import generate_c3o_dataset
from repro.dataflow import (
    GraphEncoder,
    graph_for_algorithm,
    graph_text,
)
from repro.dataflow.features import graph_node_features, graph_summary_vector
from repro.utils.tables import ascii_table

from _util import demo_epochs, run_main

PRETRAIN_EPOCHS = demo_epochs(300)


def main() -> None:
    print("== 1. Canonical dataflow graphs of the C3O algorithms ==")
    rows = []
    for algorithm in ("grep", "sort", "pagerank", "sgd", "kmeans"):
        graph = graph_for_algorithm(algorithm)
        rows.append(
            [
                algorithm,
                len(graph),
                len(graph.edges()),
                graph.depth(),
                len(graph.loop_body()),
                graph.iterations,
            ]
        )
    print(
        ascii_table(
            ["algorithm", "operators", "edges", "depth", "loop ops", "iterations"],
            rows,
        ),
        "\n",
    )

    print("== 2. Graph encodings ==")
    sgd = graph_for_algorithm("sgd", {"max_iterations": "50"})
    print("canonical text (hashed like any textual property):")
    print(" ", graph_text(sgd)[:100], "...\n")
    features = graph_node_features(sgd)
    print(f"numeric node features: {features.shape} (operators x features)")
    print(f"structural summary:    {np.round(graph_summary_vector(sgd), 2)}\n")

    print("== 3. Plain Bellamy vs graph-as-property variant ==")
    dataset = generate_c3o_dataset(seed=0)
    target = dataset.for_algorithm("kmeans").contexts()[3]
    corpus = dataset.for_algorithm("kmeans").exclude_context(target.context_id)
    config = BellamyConfig(seed=0)

    plain = pretrain(corpus, "kmeans", config=config, epochs=PRETRAIN_EPOCHS).model
    graphy = pretrain(
        corpus, "kmeans", config=config, epochs=PRETRAIN_EPOCHS,
        model_factory=GraphBellamyModel,
    ).model
    plain.eval()
    graphy.eval()

    target_data = dataset.for_context(target.context_id)
    machines, actual = target_data.mean_runtime_curve()
    rows = [
        [int(m), a, p, g]
        for m, a, p, g in zip(
            machines,
            actual,
            plain.predict(target, machines),
            graphy.predict(target, machines),
        )
    ]
    print(f"target context: {target.node_type}, {target.dataset_mb} MB, "
          f"{target.params_text}")
    print(
        ascii_table(
            ["scale-out", "actual [s]", "Bellamy 0-shot", "Bellamy+graph 0-shot"],
            rows,
            digits=1,
        ),
        "\n",
    )

    print("== 4. Message-passing graph embeddings ==")
    encoder = GraphEncoder(out_dim=4, seed=0)
    graphs = {
        f"sgd x{n}": graph_for_algorithm("sgd", {"max_iterations": str(n)})
        for n in (25, 100)
    }
    graphs["grep"] = graph_for_algorithm("grep")
    rows = [
        [name, *np.round(encoder.embed(graph).data, 3)]
        for name, graph in graphs.items()
    ]
    print(
        ascii_table(
            ["graph", "e1", "e2", "e3", "e4"],
            rows,
            title="untrained GraphEncoder codes (structure already separates graphs)",
        )
    )


if __name__ == "__main__":
    run_main(main)
