"""Tests for the BO search and the profiling-cost comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pretraining import pretrain
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.selection.bayesian import (
    BayesianScaleoutSearch,
    expected_improvement,
)
from repro.selection.comparison import (
    render_profiling_cost,
    run_profiling_cost_experiment,
)
from repro.simulator.traces import TraceGenerator

#: A deterministic U-shaped runtime curve over the candidate grid.
CURVE = {2: 400.0, 4: 210.0, 6: 150.0, 8: 140.0, 10: 150.0, 12: 165.0}


class TestExpectedImprovement:
    def test_zero_sigma_clamps(self):
        ei = expected_improvement(np.array([5.0]), np.array([0.0]), best=4.0)
        assert ei[0] == 0.0

    def test_improvement_direction(self):
        """Lower predicted mean (minimization) yields higher EI."""
        ei = expected_improvement(
            np.array([1.0, 3.0]), np.array([1.0, 1.0]), best=2.0
        )
        assert ei[0] > ei[1]

    def test_uncertainty_raises_ei(self):
        ei = expected_improvement(
            np.array([2.0, 2.0]), np.array([0.1, 2.0]), best=2.0
        )
        assert ei[1] > ei[0]

    def test_non_negative(self):
        ei = expected_improvement(
            np.linspace(-5, 5, 11), np.linspace(0, 2, 11), best=0.0
        )
        assert np.all(ei >= 0.0)


class TestBayesianSearch:
    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            BayesianScaleoutSearch([])
        with pytest.raises(ValueError):
            BayesianScaleoutSearch([0, 2])

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            BayesianScaleoutSearch([2, 4], max_runs=0)
        with pytest.raises(ValueError):
            BayesianScaleoutSearch([2, 4], max_runs=2, initial_runs=3)

    def test_respects_budget(self):
        calls = []

        def profile(machines: int) -> float:
            calls.append(machines)
            return CURVE[machines]

        search = BayesianScaleoutSearch(
            sorted(CURVE), runtime_target_s=200.0, max_runs=3, seed=0
        )
        outcome = search.run(profile)
        assert outcome.profiling_runs == len(calls) <= 3

    def test_finds_feasible_configuration(self):
        search = BayesianScaleoutSearch(
            sorted(CURVE), runtime_target_s=200.0, max_runs=6, seed=1
        )
        outcome = search.run(lambda machines: CURVE[machines])
        assert outcome.meets_target
        assert CURVE[outcome.best_machines] <= 200.0

    def test_infeasible_target(self):
        search = BayesianScaleoutSearch(
            sorted(CURVE), runtime_target_s=50.0, max_runs=6, seed=0
        )
        outcome = search.run(lambda machines: CURVE[machines])
        assert not outcome.meets_target
        assert outcome.best_machines is None

    def test_never_profiles_same_config_twice(self):
        calls = []

        def profile(machines: int) -> float:
            calls.append(machines)
            return CURVE[machines]

        search = BayesianScaleoutSearch(sorted(CURVE), max_runs=6, seed=2)
        search.run(profile)
        assert len(calls) == len(set(calls))

    def test_deterministic_per_seed(self):
        outcome_a = BayesianScaleoutSearch(sorted(CURVE), max_runs=4, seed=5).run(
            lambda m: CURVE[m]
        )
        outcome_b = BayesianScaleoutSearch(sorted(CURVE), max_runs=4, seed=5).run(
            lambda m: CURVE[m]
        )
        assert outcome_a.history == outcome_b.history


class TestProfilingCostExperiment:
    @pytest.fixture(scope="class")
    def setup(self):
        contexts = [c for c in generate_c3o_contexts(seed=8) if c.algorithm == "sgd"][:4]
        generator = TraceGenerator(seed=8)
        dataset = ExecutionDataset()
        for context in contexts:
            dataset.extend(
                generator.executions_for_context(context, (2, 4, 6, 8, 10, 12), 2)
            )
        base = pretrain(dataset, "sgd", epochs=40, seed=0).model
        base.eval()
        return generator, contexts[:2], {"sgd": base}

    def test_runs_all_methods(self, setup):
        generator, contexts, pretrained = setup
        result = run_profiling_cost_experiment(
            generator, contexts, pretrained, finetune_max_epochs=60, seed=0
        )
        assert set(result.methods()) == {
            "CherryPick (BO)",
            "Ernest (NNLS)",
            "Bellamy (pre-trained)",
        }
        assert len(result.trials) == 3 * len(contexts)

    def test_bellamy_uses_fewest_runs(self, setup):
        generator, contexts, pretrained = setup
        result = run_profiling_cost_experiment(
            generator, contexts, pretrained,
            bellamy_samples=1, ernest_samples=4, finetune_max_epochs=60, seed=0,
        )
        assert result.mean_profiling_runs("Bellamy (pre-trained)") == 1.0
        assert result.mean_profiling_runs("Ernest (NNLS)") == 4.0
        assert (
            result.mean_profiling_runs("Bellamy (pre-trained)")
            < result.mean_profiling_runs("CherryPick (BO)")
        )

    def test_zero_shot_mode(self, setup):
        generator, contexts, pretrained = setup
        result = run_profiling_cost_experiment(
            generator, contexts, pretrained,
            bellamy_samples=0, finetune_max_epochs=60, seed=0,
        )
        assert result.mean_profiling_runs("Bellamy (pre-trained)") == 0.0

    def test_missing_model_rejected(self, setup):
        generator, contexts, _ = setup
        with pytest.raises(KeyError, match="no pre-trained model"):
            run_profiling_cost_experiment(generator, contexts, {}, seed=0)

    def test_invalid_sample_counts(self, setup):
        generator, contexts, pretrained = setup
        with pytest.raises(ValueError):
            run_profiling_cost_experiment(
                generator, contexts, pretrained, bellamy_samples=-1
            )

    def test_render(self, setup):
        generator, contexts, pretrained = setup
        result = run_profiling_cost_experiment(
            generator, contexts, pretrained, finetune_max_epochs=60, seed=0
        )
        text = render_profiling_cost(result)
        assert "CherryPick (BO)" in text and "success rate" in text
