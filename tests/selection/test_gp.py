"""Tests for the Gaussian-process surrogate (repro.selection.gp)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selection.gp import GaussianProcess, RBFKernel


class TestRBFKernel:
    def test_diagonal_is_signal_variance(self):
        kernel = RBFKernel(length_scale=2.0, signal_variance=3.0)
        x = np.array([1.0, 5.0, 9.0])
        np.testing.assert_allclose(np.diag(kernel(x, x)), 3.0)

    def test_symmetry(self):
        kernel = RBFKernel()
        x = np.array([0.0, 1.0, 4.0])
        gram = kernel(x, x)
        np.testing.assert_allclose(gram, gram.T)

    def test_decay_with_distance(self):
        kernel = RBFKernel(length_scale=1.0)
        values = kernel(np.array([0.0]), np.array([0.5, 1.0, 3.0])).ravel()
        assert values[0] > values[1] > values[2]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0.0)
        with pytest.raises(ValueError):
            RBFKernel(signal_variance=-1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    def test_gram_positive_semidefinite(self, points):
        gram = RBFKernel()(np.array(points), np.array(points))
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8


class TestGaussianProcess:
    def test_unfit_predict_raises(self):
        with pytest.raises(RuntimeError, match="not fit"):
            GaussianProcess().predict([1.0])

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit([1.0, 2.0], [1.0])

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            GaussianProcess(noise_variance=0.0)

    def test_interpolates_training_points(self):
        x = np.array([2.0, 4.0, 8.0, 12.0])
        y = np.array([100.0, 60.0, 45.0, 50.0])
        gp = GaussianProcess(noise_variance=1e-8).fit(x, y)
        np.testing.assert_allclose(gp.predict(x), y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self):
        gp = GaussianProcess(noise_variance=1e-6).fit([2.0, 4.0], [10.0, 8.0])
        _, std = gp.predict([3.0, 40.0], return_std=True)
        assert std[1] > std[0]

    def test_zero_variance_at_training_points(self):
        gp = GaussianProcess(noise_variance=1e-8).fit([2.0, 6.0], [5.0, 3.0])
        _, std = gp.predict([2.0, 6.0], return_std=True)
        assert np.all(std < 1e-2)

    def test_far_extrapolation_reverts_to_mean(self):
        """Away from the data, the posterior reverts to the target mean."""
        gp = GaussianProcess().fit([2.0, 4.0, 6.0], [10.0, 20.0, 30.0])
        far = gp.predict([1e6])
        np.testing.assert_allclose(far, 20.0, rtol=1e-6)

    def test_single_point_fit(self):
        gp = GaussianProcess().fit([5.0], [42.0])
        np.testing.assert_allclose(gp.predict([5.0]), 42.0, atol=1e-2)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=100),
                st.floats(min_value=-1000, max_value=1000),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_posterior_variance_never_negative(self, points):
        x = np.array([p[0] for p in points])
        y = np.array([p[1] for p in points])
        gp = GaussianProcess().fit(x, y)
        _, std = gp.predict(np.linspace(0.0, 120.0, 30), return_std=True)
        assert np.all(np.isfinite(std)) and np.all(std >= 0.0)
