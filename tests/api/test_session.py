"""Tests of the lifecycle Session: pre-train caching, serving, selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionRequest, Session, make_estimator
from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore
from repro.eval.protocol import MethodSpec

#: Tiny budgets — these tests exercise plumbing, not model quality.
FAST = BellamyConfig(
    pretrain_epochs=3,
    finetune_max_epochs=8,
    finetune_patience=5,
    seed=0,
)


@pytest.fixture(scope="module")
def sgd_slice(request):
    """A 3-context SGD slice of the C3O data (module-scoped for speed)."""
    c3o_dataset = request.getfixturevalue("c3o_dataset")
    contexts = c3o_dataset.for_algorithm("sgd").contexts()[:3]
    wanted = {c.context_id for c in contexts}
    return c3o_dataset.filter(lambda e: e.context.context_id in wanted)


@pytest.fixture()
def session(sgd_slice) -> Session:
    return Session(sgd_slice, config=FAST, seed=0)


class TestCorpusPolicies:
    def test_full_excludes_target(self, session, sgd_slice):
        target = sgd_slice.contexts()[0]
        corpus = session.corpus_for("sgd", "full", target)
        assert all(e.context.context_id != target.context_id for e in corpus)

    def test_unknown_variant_rejected(self, session):
        with pytest.raises(ValueError, match="variant"):
            session.corpus_for("sgd", "everything")

    def test_corpusless_session_rejects(self):
        with pytest.raises(ValueError, match="no corpus"):
            Session().corpus_for("sgd")


class TestPretrainCache:
    def test_memory_memoization(self, session):
        a = session.base_model("sgd")
        b = session.base_model("sgd")
        assert a is b
        sources = [source for source, _ in session.cache_log]
        assert sources == ["train", "memory"]
        assert len(session.pretrain_seconds) == 1

    def test_store_cache_hit_across_sessions(self, sgd_slice, tmp_path):
        store = tmp_path / "models"
        first = Session(sgd_slice, config=FAST, store=store, seed=0)
        trained = first.base_model("sgd")
        assert first.cache_log[-1][0] == "train"
        assert ModelStore(store).names()  # persisted

        second = Session(sgd_slice, config=FAST, store=store, seed=0)
        loaded = second.base_model("sgd")
        assert second.cache_log == [("store", first.cache_log[-1][1])]
        assert not second.pretrain_seconds  # nothing was trained
        np.testing.assert_allclose(
            loaded.full_state_dict()["f.layer1.weight"],
            trained.full_state_dict()["f.layer1.weight"],
        )

    def test_explicit_pretrain_seeds_the_cache(self, session):
        result = session.pretrain(algorithm="sgd", epochs=2)
        assert session.base_model("sgd") is result.model
        assert session.cache_log[-1][0] == "memory"

    def test_save_as_still_hits_store_cache_later(self, sgd_slice, tmp_path):
        store = tmp_path / "models"
        first = Session(sgd_slice, config=FAST, store=store, seed=0)
        first.pretrain(algorithm="sgd", save_as="prod")
        assert "prod" in ModelStore(store).names()

        second = Session(sgd_slice, config=FAST, store=store, seed=0)
        second.base_model("sgd")
        assert second.cache_log[-1][0] == "store"  # no silent retraining
        assert not second.pretrain_seconds

    def test_variants_cached_separately(self, session, sgd_slice):
        target = sgd_slice.contexts()[0]
        full = session.base_model("sgd", variant="full", target=target)
        filtered = session.base_model("sgd", variant="filtered", target=target)
        assert full is not filtered
        assert len(session.pretrain_seconds) == 2

    def test_pretrain_rejects_baseline_estimators(self, session):
        with pytest.raises(ValueError, match="does not use a pre-trained"):
            session.pretrain(algorithm="sgd", estimator="nnls")

    def test_save_as_without_store_rejected(self, session):
        with pytest.raises(ValueError, match="no\\s+ModelStore"):
            session.pretrain(algorithm="sgd", save_as="prod")

    def test_different_corpus_never_serves_stale_store_model(self, c3o_dataset, tmp_path):
        store = tmp_path / "models"
        contexts = c3o_dataset.for_algorithm("sgd").contexts()[:3]
        wanted = {c.context_id for c in contexts}
        corpus = c3o_dataset.filter(lambda e: e.context.context_id in wanted)

        first = Session(corpus.exclude_context(contexts[0].context_id),
                        config=FAST, store=store, seed=0)
        first.base_model("sgd")

        # Same config, same store, but a different leave-one-out slice: the
        # corpus fingerprint must force fresh training, not a store hit on a
        # model whose corpus includes this slice's held-out context.
        second = Session(corpus.exclude_context(contexts[1].context_id),
                         config=FAST, store=store, seed=0)
        second.base_model("sgd")
        assert second.cache_log[-1][0] == "train"

    def test_different_config_never_serves_stale_store_model(self, sgd_slice, tmp_path):
        store = tmp_path / "models"
        Session(sgd_slice, config=FAST, store=store, seed=0).base_model("sgd")

        other_config = FAST.with_overrides(pretrain_epochs=5)
        second = Session(sgd_slice, config=other_config, store=store, seed=0)
        second.base_model("sgd")
        # The config fingerprint in the store key forces a fresh training
        # run instead of silently serving the 3-epoch model.
        assert second.cache_log[-1][0] == "train"


class TestServing:
    def test_zero_shot_predict(self, session, sgd_slice):
        context = sgd_slice.contexts()[0]
        predictions = session.predict(context, [2, 4, 8])
        assert predictions.shape == (3,)
        assert (predictions > 0).all()

    def test_few_shot_predict(self, session, sgd_slice):
        context = sgd_slice.contexts()[0]
        data = sgd_slice.for_context(context.context_id)
        machines, runtimes = data.machines_array()[:2], data.runtimes_array()[:2]
        predictions = session.predict(
            context, [4], samples=(machines, runtimes), max_epochs=5
        )
        assert predictions.shape == (1,)

    def test_finetune_with_filtered_variant(self, session, sgd_slice):
        # The filtered corpus policy needs a target; finetune must pass the
        # context through instead of crashing in corpus_for.
        context = sgd_slice.contexts()[0]
        data = sgd_slice.for_context(context.context_id)
        est = session.finetune(
            context,
            data.machines_array()[:2],
            data.runtimes_array()[:2],
            variant="filtered",
            max_epochs=4,
        )
        assert est.predict([6]).shape == (1,)

    def test_finetune_returns_fitted_estimator(self, session, sgd_slice):
        context = sgd_slice.contexts()[1]
        data = sgd_slice.for_context(context.context_id)
        est = session.finetune(
            context,
            data.machines_array()[:3],
            data.runtimes_array()[:3],
            max_epochs=5,
        )
        assert est.context is context
        assert est.predict([6]).shape == (1,)
        assert est.epochs_trained >= 1

    def test_predict_batch(self, session, sgd_slice):
        contexts = sgd_slice.contexts()[:2]
        requests = [
            PredictionRequest(machines=[2, 4], context=contexts[0]),
            PredictionRequest(machines=[8], context=contexts[1]),
        ]
        out = session.predict_batch(requests)
        assert [o.shape for o in out] == [(2,), (1,)]
        # Both requests share one cached per-algorithm base model.
        assert len(session.pretrain_seconds) == 1

    def test_predict_batch_requires_context(self, session):
        with pytest.raises(ValueError, match="context"):
            session.predict_batch([PredictionRequest(machines=[2])])

    def test_predict_batch_with_numpy_samples(self, session, sgd_slice):
        # Regression: multi-element numpy sample arrays must not hit a
        # truthiness check while being unpacked.
        context = sgd_slice.contexts()[0]
        data = sgd_slice.for_context(context.context_id)
        request = PredictionRequest(
            machines=[6],
            context=context,
            train_machines=data.machines_array()[:2],
            train_runtimes=data.runtimes_array()[:2],
        )
        out = session.predict_batch([request], max_epochs=4)
        assert out[0].shape == (1,)

    def test_predict_with_explicit_model(self, session, sgd_slice):
        context = sgd_slice.contexts()[0]
        base = session.base_model("sgd")
        assert isinstance(base, BellamyModel)
        predictions = session.predict(context, [4], model=base)
        assert predictions.shape == (1,)

    def test_select_scaleout(self, session, sgd_slice):
        context = sgd_slice.contexts()[0]
        recommendation = session.select_scaleout(
            context, [2, 4, 6, 8], runtime_target_s=1e9
        )
        assert recommendation.satisfiable
        assert recommendation.chosen.machines == 2  # min_machines objective


class TestEstimatorIntegration:
    def test_estimator_injects_base_model(self, session):
        est = session.estimator("bellamy-ft", algorithm="sgd")
        assert est.base_model is session.base_model("sgd")

    def test_estimator_without_base_need(self, session):
        est = session.estimator("nnls")
        assert est.get_params() == {}

    def test_method_specs_cover_paper_methods(self, session, sgd_slice):
        target = sgd_slice.contexts()[0]
        specs = session.method_specs(target, max_epochs=5)
        names = [spec.name for spec in specs]
        assert names == [
            "NNLS",
            "Bell",
            "Bellamy (local)",
            "Bellamy (filtered)",
            "Bellamy (full)",
        ]
        assert all(isinstance(spec, MethodSpec) for spec in specs)
        # Pre-trained variants support the paper's zero-sample case.
        assert specs[-1].min_train_points == 0
        model = specs[-1].build(target)
        model.fit(target, [], [])
        assert model.predict([4]).shape == (1,)
