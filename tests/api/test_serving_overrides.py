"""Session.serving_overrides: the atomic swap point of model refresh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PredictionRequest, Session
from repro.core.config import BellamyConfig
from repro.data.dataset import ExecutionDataset
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    """A small session plus a distinct second model stored under a name."""
    from repro.data.schema import JobContext

    context = JobContext(
        algorithm="sgd", node_type="m4.2xlarge", dataset_mb=19353,
        dataset_characteristics="dense-features",
        job_params=(("max_iterations", "25"), ("step_size", "1.0")),
    )
    generator = TraceGenerator(seed=7)
    corpus = ExecutionDataset(
        generator.executions_for_context(context, (2, 4, 6, 8, 10, 12), 2)
    )
    config = BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=60, finetune_max_epochs=80, finetune_patience=40
    )
    store = tmp_path_factory.mktemp("override-store")
    session = Session(corpus, config=config, store=store)
    base = session.base_model("sgd")
    est = session.finetune(context, [4.0, 10.0], [500.0, 300.0], max_epochs=80)
    session.save("adapted", est._runtime_model._fitted)
    return session, context, base


def test_override_by_name_changes_predictions(setup):
    session, context, base = setup
    before = session.predict(context, [4, 8])
    session.serving_overrides[context.context_id] = "adapted"
    try:
        after = session.predict(context, [4, 8])
        assert not np.array_equal(before, after)
        # resolve_base follows the same rule: it now loads the named model.
        resolved = session.resolve_base(context)
        adapted = session.load("adapted")
        assert all(
            np.array_equal(a, b)
            for a, b in zip(
                resolved.full_state_dict().values(),
                adapted.full_state_dict().values(),
            )
        )
    finally:
        session.serving_overrides.clear()
    assert np.array_equal(session.predict(context, [4, 8]), before)


def test_explicit_model_argument_beats_the_override(setup):
    session, context, base = setup
    session.serving_overrides[context.context_id] = "adapted"
    try:
        explicit = session.predict(context, [4, 8], model=base)
        assert np.array_equal(
            explicit, session.predict(context, [4, 8], model=base)
        )
        # The override applies only to model=None resolution.
        assert not np.array_equal(explicit, session.predict(context, [4, 8]))
    finally:
        session.serving_overrides.clear()


def test_predict_batch_resolves_overrides_per_group(setup):
    session, context, base = setup
    requests = [PredictionRequest(machines=[4, 8], context=context)]
    plain = session.predict_batch(requests, exact=True)[0]
    session.serving_overrides[context.context_id] = "adapted"
    try:
        swapped = session.predict_batch(requests, exact=True)[0]
        serial = session.predict(context, [4, 8])
        assert not np.array_equal(plain, swapped)
        assert np.array_equal(swapped, serial)  # batched == serial, post-swap
    finally:
        session.serving_overrides.clear()


def test_override_with_model_object(setup):
    session, context, base = setup
    adapted = session.load("adapted")
    session.serving_overrides[context.context_id] = adapted
    try:
        assert session.resolve_base(context) is adapted
    finally:
        session.serving_overrides.clear()
    assert session.resolve_base(context) is base
