"""Tests of the estimator registry and the Estimator protocol surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Estimator,
    LegacyModelEstimator,
    PredictionRequest,
    UnknownEstimatorError,
    as_estimator,
    available_estimators,
    estimator_class,
    is_registered,
    make_estimator,
    register,
)
from repro.baselines.ernest import ErnestModel

EXPECTED_NAMES = {
    "nnls",
    "bell",
    "interpolation",
    "bellamy-local",
    "bellamy-zeroshot",
    "bellamy-ft",
    "bellamy-graph",
    "bellamy-gnn",
}


class TestRegistryContents:
    def test_all_expected_names_registered(self):
        assert EXPECTED_NAMES <= set(available_estimators())

    def test_every_registered_name_constructs(self):
        for name in available_estimators():
            estimator = make_estimator(name)
            assert isinstance(estimator, Estimator)
            assert estimator.registry_name == name

    def test_aliases_resolve_to_primary_class(self):
        assert estimator_class("ernest") is estimator_class("nnls")
        assert estimator_class("bellamy") is estimator_class("bellamy-ft")
        # Aliases are resolvable but not listed as primary names.
        assert "ernest" not in available_estimators()
        assert is_registered("ernest")

    def test_min_train_points_match_paper(self):
        assert estimator_class("nnls").min_train_points == 1
        assert estimator_class("bell").min_train_points == 3
        assert estimator_class("bellamy-ft").min_train_points == 0
        assert estimator_class("bellamy-zeroshot").min_train_points == 0
        assert estimator_class("bellamy-local").min_train_points == 1


class TestParamsRoundTrip:
    def test_get_params_reconstructs_every_estimator(self):
        for name in available_estimators():
            estimator = make_estimator(name)
            rebuilt = make_estimator(name, **estimator.get_params())
            assert type(rebuilt) is type(estimator)
            assert rebuilt.get_params() == estimator.get_params()

    def test_clone_is_fresh_and_equal(self):
        estimator = make_estimator("bellamy-ft", max_epochs=50)
        clone = estimator.clone()
        assert clone is not estimator
        assert clone.get_params() == estimator.get_params()

    def test_set_params_rejects_unknown(self):
        estimator = make_estimator("bellamy-local")
        with pytest.raises(ValueError, match="no parameter"):
            estimator.set_params(bogus=1)

    def test_set_params_updates(self):
        estimator = make_estimator("bellamy-ft").set_params(max_epochs=7)
        assert estimator.get_params()["max_epochs"] == 7


class TestUnknownNames:
    def test_error_lists_alternatives(self):
        with pytest.raises(UnknownEstimatorError) as excinfo:
            make_estimator("does-not-exist")
        message = str(excinfo.value)
        for name in sorted(EXPECTED_NAMES):
            assert name in message

    def test_error_suggests_close_matches(self):
        with pytest.raises(UnknownEstimatorError, match="did you mean"):
            make_estimator("belamy-ft")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register("nnls")
            class Impostor(Estimator):  # pragma: no cover - never constructed
                def fit(self, context, machines, runtimes):
                    return self

                def predict(self, machines):
                    return np.zeros(0)


class TestEstimatorSurface:
    def test_fit_predict_predict_one(self, sgd_context):
        estimator = make_estimator("nnls")
        machines = np.array([2.0, 4.0, 8.0])
        runtimes = np.array([400.0, 220.0, 130.0])
        assert estimator.fit(sgd_context, machines, runtimes) is estimator
        predictions = estimator.predict([2, 4, 8])
        assert predictions.shape == (3,)
        assert estimator.predict_one(4) == pytest.approx(predictions[1])
        assert estimator.context is sgd_context

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            make_estimator("bell").predict([2])

    def test_predict_batch_contextless_uses_fitted_state(self, sgd_context):
        estimator = make_estimator("interpolation")
        estimator.fit(sgd_context, [2.0, 4.0, 8.0], [400.0, 220.0, 130.0])
        out = estimator.predict_batch(
            [PredictionRequest(machines=[2, 4]), PredictionRequest(machines=[8])]
        )
        assert len(out) == 2
        assert out[0].shape == (2,) and out[1].shape == (1,)

    def test_predict_batch_with_context_refits_clone(self, sgd_context):
        estimator = make_estimator("nnls")
        request = PredictionRequest(
            machines=[4],
            context=sgd_context,
            train_machines=[2.0, 4.0, 8.0],
            train_runtimes=[400.0, 220.0, 130.0],
        )
        (prediction,) = estimator.predict_batch([request])
        assert prediction.shape == (1,)
        # The serving estimator itself stays unfitted.
        with pytest.raises(RuntimeError):
            estimator.predict([4])

    def test_zeroshot_without_base_points_to_session(self, sgd_context):
        with pytest.raises(RuntimeError, match="Session"):
            make_estimator("bellamy-zeroshot").fit(sgd_context, [], [])

    def test_finetuned_without_base_points_to_session(self, sgd_context):
        with pytest.raises(RuntimeError, match="Session"):
            make_estimator("bellamy-ft").fit(sgd_context, [2.0], [100.0])


class TestLegacyAdapter:
    def test_runtime_model_adapts(self, sgd_context):
        adapted = as_estimator(ErnestModel())
        assert isinstance(adapted, LegacyModelEstimator)
        adapted.fit(sgd_context, [2.0, 4.0], [400.0, 230.0])
        assert adapted.predict([8]).shape == (1,)
        assert adapted.name == "NNLS"

    def test_estimator_passes_through(self):
        estimator = make_estimator("bell")
        assert as_estimator(estimator) is estimator

    def test_clone_does_not_share_wrapped_model(self, sgd_context):
        adapted = as_estimator(ErnestModel())
        adapted.fit(sgd_context, [2.0, 4.0], [400.0, 230.0])
        before = adapted.predict([8.0])[0]
        # Refitting a clone must not leak into the original's fitted state.
        adapted.clone().fit(sgd_context, [2.0, 4.0], [40.0, 23.0])
        assert adapted.predict([8.0])[0] == pytest.approx(before)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot adapt"):
            as_estimator(object())
