"""Session.predict_batch request grouping and the vectorized zero-shot path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.api.estimator import PredictionRequest
from repro.core.config import BellamyConfig
from repro.data import generate_c3o_dataset


@pytest.fixture(scope="module")
def session():
    config = BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=20, finetune_max_epochs=60, finetune_patience=40
    )
    return Session(generate_c3o_dataset(seed=0), config=config)


@pytest.fixture(scope="module")
def contexts(session):
    return session.corpus.for_algorithm("sgd").contexts()[:3]


class TestGrouping:
    def test_same_context_same_samples_fits_once(self, session, contexts):
        request = PredictionRequest(
            machines=[4, 8],
            context=contexts[0],
            train_machines=[2, 6],
            train_runtimes=[500.0, 300.0],
        )
        out = session.predict_batch([request] * 5)
        stats = session.last_batch_stats
        assert stats["requests"] == 5
        assert stats["groups"] == 1
        assert stats["finetune_fits"] == 1
        for result in out[1:]:
            np.testing.assert_array_equal(out[0], result)

    def test_distinct_samples_fit_separately(self, session, contexts):
        shared = dict(machines=[4], context=contexts[0])
        requests = [
            PredictionRequest(train_machines=[2], train_runtimes=[500.0], **shared),
            PredictionRequest(train_machines=[2], train_runtimes=[400.0], **shared),
            PredictionRequest(train_machines=[2], train_runtimes=[500.0], **shared),
        ]
        session.predict_batch(requests)
        assert session.last_batch_stats["groups"] == 2
        assert session.last_batch_stats["finetune_fits"] == 2

    def test_zero_shot_requests_share_one_batched_forward(self, session, contexts):
        requests = [
            PredictionRequest(machines=[2, 4, 8], context=context)
            for context in contexts
        ] * 2
        out = session.predict_batch(requests)
        stats = session.last_batch_stats
        assert stats["finetune_fits"] == 0
        assert stats["zero_shot_batches"] == 1
        # Matches per-request serving.
        for request, result in zip(requests, out):
            reference = session.predict(request.context, request.machines)
            np.testing.assert_allclose(result, reference, rtol=1e-9, atol=1e-9)

    def test_mixed_batch_preserves_request_order(self, session, contexts):
        requests = [
            PredictionRequest(machines=[4], context=contexts[0]),
            PredictionRequest(
                machines=[4],
                context=contexts[1],
                train_machines=[2, 6],
                train_runtimes=[500.0, 300.0],
            ),
            PredictionRequest(machines=[4], context=contexts[2]),
        ]
        out = session.predict_batch(requests)
        assert len(out) == 3
        for request, result in zip(requests, out):
            samples = None
            if request.train_machines is not None:
                samples = (request.train_machines, request.train_runtimes)
            reference = session.predict(request.context, request.machines, samples=samples)
            np.testing.assert_allclose(result, reference, rtol=1e-9, atol=1e-9)

    def test_requests_without_context_rejected(self, session):
        with pytest.raises(ValueError, match="need a context"):
            session.predict_batch([PredictionRequest(machines=[2])])


class TestModelPredictBatch:
    def test_batched_forward_matches_individual_predicts(self, session, contexts):
        model = session.base_model("sgd")
        items = [(context, [2, 4, 8]) for context in contexts] + [(contexts[0], [16])]
        batched = model.predict_batch(items)
        assert [len(b) for b in batched] == [3, 3, 3, 1]
        for (context, machines), result in zip(items, batched):
            np.testing.assert_allclose(
                result, model.predict(context, machines), rtol=1e-9, atol=1e-9
            )

    def test_empty_batch(self, session):
        assert session.base_model("sgd").predict_batch([]) == []
