"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_bell_dataset, generate_c3o_dataset
from repro.data.dataset import ExecutionDataset
from repro.data.schema import Execution, JobContext
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="session")
def c3o_dataset() -> ExecutionDataset:
    """The full synthetic C3O dataset (expensive; generated once per session)."""
    return generate_c3o_dataset(seed=0)


@pytest.fixture(scope="session")
def bell_dataset() -> ExecutionDataset:
    """The full synthetic Bell dataset."""
    return generate_bell_dataset(seed=0)


@pytest.fixture()
def sgd_context() -> JobContext:
    """A representative SGD cloud context."""
    return JobContext(
        algorithm="sgd",
        node_type="m4.2xlarge",
        dataset_mb=19353,
        dataset_characteristics="dense-features",
        job_params=(("max_iterations", "25"), ("step_size", "1.0")),
    )


@pytest.fixture()
def small_context_dataset(sgd_context) -> ExecutionDataset:
    """Executions of one context over the C3O scale-out grid (3 repeats)."""
    generator = TraceGenerator(seed=7)
    return ExecutionDataset(
        generator.executions_for_context(sgd_context, (2, 4, 6, 8, 10, 12), 3)
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A seeded generator for test-local randomness."""
    return np.random.default_rng(1234)
