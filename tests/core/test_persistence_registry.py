"""Tests for model-class round-tripping through the ModelStore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.graph_model import GnnBellamyModel, GraphBellamyModel
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore, model_class_registry
from repro.core.pretraining import pretrain
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="module")
def sgd_dataset():
    contexts = [c for c in generate_c3o_contexts(seed=9) if c.algorithm == "sgd"][:2]
    generator = TraceGenerator(seed=9)
    dataset = ExecutionDataset()
    for context in contexts:
        dataset.extend(generator.executions_for_context(context, (2, 4, 6), 2))
    return dataset


class TestRegistry:
    def test_contains_all_model_classes(self):
        registry = model_class_registry()
        assert registry["BellamyModel"] is BellamyModel
        assert registry["GraphBellamyModel"] is GraphBellamyModel
        assert registry["GnnBellamyModel"] is GnnBellamyModel

    def test_plain_model_round_trip(self, sgd_dataset, tmp_path):
        store = ModelStore(tmp_path)
        model = pretrain(sgd_dataset, "sgd", epochs=10, seed=0).model
        store.save("plain", model)
        loaded = store.load("plain")
        assert type(loaded) is BellamyModel
        context = sgd_dataset.contexts()[0]
        np.testing.assert_allclose(
            loaded.predict(context, [2, 6]), model.predict(context, [2, 6])
        )

    def test_graph_model_round_trip(self, sgd_dataset, tmp_path):
        store = ModelStore(tmp_path)
        model = pretrain(
            sgd_dataset, "sgd", epochs=10, seed=0, model_factory=GraphBellamyModel
        ).model
        store.save("graphy", model)
        loaded = store.load("graphy")
        assert type(loaded) is GraphBellamyModel
        context = sgd_dataset.contexts()[0]
        np.testing.assert_allclose(
            loaded.predict(context, [2, 6]), model.predict(context, [2, 6])
        )

    def test_gnn_model_round_trip(self, sgd_dataset, tmp_path):
        from repro.core.graph_model import pretrain_gnn

        store = ModelStore(tmp_path)
        model = pretrain_gnn(sgd_dataset, "sgd", epochs=10, seed=0).model
        store.save("gnn", model)
        loaded = store.load("gnn")
        assert type(loaded) is GnnBellamyModel
        context = sgd_dataset.contexts()[0]
        np.testing.assert_allclose(
            loaded.predict(context, [2, 6]), model.predict(context, [2, 6])
        )

    def test_unknown_class_rejected(self, sgd_dataset, tmp_path):
        store = ModelStore(tmp_path)
        model = BellamyModel(BellamyConfig())
        model.fit_scaler(model.featurizer.scaleout_features([2.0, 12.0]))
        store.save("weird", model)
        # Corrupt the stored class name.
        import json

        meta_path = tmp_path / "weird.json"
        payload = json.loads(meta_path.read_text())
        payload["model_class"] = "EvilModel"
        meta_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unknown class"):
            store.load("weird")

    def test_legacy_payload_defaults_to_base_class(self, sgd_dataset, tmp_path):
        """Stores written before the registry load as plain BellamyModel."""
        store = ModelStore(tmp_path)
        model = pretrain(sgd_dataset, "sgd", epochs=5, seed=0).model
        store.save("legacy", model)
        import json

        meta_path = tmp_path / "legacy.json"
        payload = json.loads(meta_path.read_text())
        del payload["model_class"]
        meta_path.write_text(json.dumps(payload))
        assert type(store.load("legacy")) is BellamyModel
