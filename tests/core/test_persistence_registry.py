"""Tests for model-class round-tripping through the ModelStore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.graph_model import GnnBellamyModel, GraphBellamyModel
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore, model_class_registry
from repro.core.pretraining import pretrain
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="module")
def sgd_dataset():
    contexts = [c for c in generate_c3o_contexts(seed=9) if c.algorithm == "sgd"][:2]
    generator = TraceGenerator(seed=9)
    dataset = ExecutionDataset()
    for context in contexts:
        dataset.extend(generator.executions_for_context(context, (2, 4, 6), 2))
    return dataset


class TestRegistry:
    def test_contains_all_model_classes(self):
        registry = model_class_registry()
        assert registry["BellamyModel"] is BellamyModel
        assert registry["GraphBellamyModel"] is GraphBellamyModel
        assert registry["GnnBellamyModel"] is GnnBellamyModel

    def test_plain_model_round_trip(self, sgd_dataset, tmp_path):
        store = ModelStore(tmp_path)
        model = pretrain(sgd_dataset, "sgd", epochs=10, seed=0).model
        store.save("plain", model)
        loaded = store.load("plain")
        assert type(loaded) is BellamyModel
        context = sgd_dataset.contexts()[0]
        np.testing.assert_allclose(
            loaded.predict(context, [2, 6]), model.predict(context, [2, 6])
        )

    def test_graph_model_round_trip(self, sgd_dataset, tmp_path):
        store = ModelStore(tmp_path)
        model = pretrain(
            sgd_dataset, "sgd", epochs=10, seed=0, model_factory=GraphBellamyModel
        ).model
        store.save("graphy", model)
        loaded = store.load("graphy")
        assert type(loaded) is GraphBellamyModel
        context = sgd_dataset.contexts()[0]
        np.testing.assert_allclose(
            loaded.predict(context, [2, 6]), model.predict(context, [2, 6])
        )

    def test_gnn_model_round_trip(self, sgd_dataset, tmp_path):
        from repro.core.graph_model import pretrain_gnn

        store = ModelStore(tmp_path)
        model = pretrain_gnn(sgd_dataset, "sgd", epochs=10, seed=0).model
        store.save("gnn", model)
        loaded = store.load("gnn")
        assert type(loaded) is GnnBellamyModel
        context = sgd_dataset.contexts()[0]
        np.testing.assert_allclose(
            loaded.predict(context, [2, 6]), model.predict(context, [2, 6])
        )

    def test_unknown_class_rejected(self, sgd_dataset, tmp_path):
        store = ModelStore(tmp_path)
        model = BellamyModel(BellamyConfig())
        model.fit_scaler(model.featurizer.scaleout_features([2.0, 12.0]))
        store.save("weird", model)
        # Corrupt the stored class name (inside the committed .npz payload).
        import json

        from repro.utils.serialization import load_npz_dict, save_npz_dict

        weights_path = store.weights_path("weird")  # layout-aware (sharded)
        state = load_npz_dict(weights_path)
        payload = json.loads(str(state["__meta_json__"]))
        payload["model_class"] = "EvilModel"
        state["__meta_json__"] = np.array(json.dumps(payload))
        save_npz_dict(weights_path, state)
        with pytest.raises(ValueError, match="unknown class"):
            store.load("weird")

    def test_legacy_payload_defaults_to_base_class(self, sgd_dataset, tmp_path):
        """Stores written before the registry load as plain BellamyModel."""
        store = ModelStore(tmp_path)
        model = pretrain(sgd_dataset, "sgd", epochs=5, seed=0).model
        import json

        from repro.utils.serialization import save_json, save_npz_dict

        # Reproduce the pre-registry, pre-atomic layout: a plain state .npz
        # and a sidecar .json with no model_class.
        save_npz_dict(tmp_path / "legacy.npz", model.full_state_dict())
        save_json(
            tmp_path / "legacy.json",
            {"config": model.config.to_dict(), "metadata": {}},
        )
        assert type(store.load("legacy")) is BellamyModel
