"""ModelStore over the sharded ArtifactStore: migration + concurrency.

Covers the runtime-refactor contract: pre-shard flat-layout models keep
loading (and are re-homed on save or via ``migrate()``), lookups are
index-backed, and concurrent cross-process saves of the same name are
serialized by the store lock — never corrupted or interleaved.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore
from repro.data.schema import JobContext
from repro.utils.serialization import save_json, save_npz_dict


def _make_model(seed: int = 0) -> BellamyModel:
    model = BellamyModel(BellamyConfig(seed=seed))
    context = JobContext("sgd", "m4.xlarge", 1000, "dense")
    raw, _ = model.featurizer.build_context_arrays(context, [2, 4, 8, 12])
    model.fit_scaler(raw)
    model.set_runtime_scale(np.array([100.0, 300.0]))
    model.eval()
    return model


def _states_equal(a: BellamyModel, b: BellamyModel) -> bool:
    sa, sb = a.full_state_dict(), b.full_state_dict()
    return set(sa) == set(sb) and all(np.array_equal(sa[k], sb[k]) for k in sa)


def _write_flat_legacy(root, name: str, model: BellamyModel, metadata: dict) -> None:
    """Reproduce the pre-shard flat layout exactly as old stores wrote it."""
    save_npz_dict(root / f"{name}.npz", model.full_state_dict())
    save_json(
        root / f"{name}.json",
        {
            "config": model.config.to_dict(),
            "model_class": "BellamyModel",
            "metadata": metadata,
        },
    )


class TestFlatMigration:
    def test_flat_models_visible_and_loadable(self, tmp_path):
        model = _make_model()
        _write_flat_legacy(tmp_path, "old", model, {"era": "flat"})
        store = ModelStore(tmp_path)
        assert store.exists("old")
        assert store.names() == ["old"]
        assert _states_equal(model, store.load("old"))
        assert store.metadata("old") == {"era": "flat"}

    def test_save_rehomes_flat_model(self, tmp_path):
        model = _make_model()
        _write_flat_legacy(tmp_path, "old", model, {"era": "flat"})
        store = ModelStore(tmp_path)
        store.save("old", model, metadata={"era": "sharded"})
        assert not (tmp_path / "old.npz").exists()  # re-homed into its shard
        assert not (tmp_path / "old.json").exists()
        assert store.names() == ["old"]
        assert store.metadata("old") == {"era": "sharded"}
        assert store.weights_path("old").parent != tmp_path

    def test_migrate_moves_all_flat_models(self, tmp_path):
        model = _make_model()
        for name in ("a", "b"):
            _write_flat_legacy(tmp_path, name, model, {"name": name})
        store = ModelStore(tmp_path)
        store.save("c", model)  # one already-sharded neighbor
        assert sorted(store.migrate()) == ["a", "b"]
        assert list(tmp_path.glob("*.npz")) == []
        assert store.names() == ["a", "b", "c"]
        for name in ("a", "b"):
            assert _states_equal(model, store.load(name))
            assert store.metadata(name) == {"name": name}

    def test_names_and_exists_are_index_backed(self, tmp_path):
        # Pinned to local_fs: this test inspects the index.json file
        # itself, which only that backend materializes. (Cross-backend
        # index semantics live in tests/runtime/conformance/.)
        store = ModelStore(tmp_path, backend="local_fs")
        model = _make_model()
        for i in range(5):
            store.save(f"m{i}", model)
        index = json.loads((tmp_path / "index.json").read_text())
        assert sorted(index["artifacts"]) == store.names()
        # A second instance answers from the same index file.
        fresh = ModelStore(tmp_path, backend="local_fs")
        assert fresh.names() == [f"m{i}" for i in range(5)]
        assert fresh.exists("m3") and not fresh.exists("m9")

    def test_gc_passthrough(self, tmp_path):
        store = ModelStore(tmp_path)
        store.save("m", _make_model())
        assert store.gc(max_age_s=0.0) == []  # a clean store has no orphans


def _save_tagged(args):
    """Worker: repeatedly save a model whose weights and metadata carry the
    same tag; the lock must keep them consistent."""
    root, seed, rounds = args
    store = ModelStore(root)
    model = _make_model(seed=seed)
    for i in range(rounds):
        tag = seed * 1000 + i
        model.set_runtime_scale(np.array([float(tag), float(tag) + 1.0]))
        store.save("shared", model, metadata={"tag": tag})
    return seed


@pytest.mark.stress
def test_concurrent_cross_process_saves_stay_consistent(tmp_path):
    """Two processes hammering one model name: the final artifact is one
    writer's save, whole — embedded metadata, sidecar, and weights agree."""
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(_save_tagged, (str(tmp_path), seed, 8)) for seed in (1, 2)
        ]
        for future in futures:
            future.result(timeout=120)
    store = ModelStore(tmp_path)
    tag = store.metadata("shared")["tag"]
    loaded = store.load("shared")
    # The runtime scale encodes the writer's tag: weights match metadata.
    expected = _make_model(seed=tag // 1000)
    expected.set_runtime_scale(np.array([float(tag), float(tag) + 1.0]))
    assert loaded.runtime_scale == expected.runtime_scale
    # The sidecar matches the committed npz payload too.
    sidecar = json.loads(store.artifacts.find("shared", "json").read_text())
    assert sidecar["metadata"]["tag"] == tag
    assert store.names() == ["shared"]
