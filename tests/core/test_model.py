"""Tests of the assembled Bellamy model (components, forward, persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.components import AutoEncoder, ScaleOutNetwork
from repro.core.config import BellamyConfig
from repro.core.features import BellamyFeaturizer
from repro.core.model import BellamyModel
from repro.nn.tensor import Tensor


@pytest.fixture()
def model() -> BellamyModel:
    return BellamyModel(BellamyConfig(seed=0))


class TestComponents:
    def test_scaleout_network_shapes(self):
        net = ScaleOutNetwork(BellamyConfig())
        out = net(Tensor(np.zeros((5, 3))))
        assert out.shape == (5, 8)

    def test_autoencoder_shapes(self):
        ae = AutoEncoder(BellamyConfig())
        ae.eval()
        out = ae(Tensor(np.zeros((7, 40))))
        assert out.shape == (7, 40)
        codes = ae.encode(Tensor(np.zeros((7, 40))))
        assert codes.shape == (7, 4)

    def test_autoencoder_has_no_biases(self):
        ae = AutoEncoder(BellamyConfig())
        assert all("bias" not in name for name, _ in ae.named_parameters())

    def test_decoder_output_bounded_by_tanh(self):
        ae = AutoEncoder(BellamyConfig())
        ae.eval()
        out = ae(Tensor(np.random.default_rng(0).normal(size=(20, 40))))
        assert (np.abs(out.data) <= 1.0).all()

    def test_parameter_count_is_small(self, model):
        # The paper's architecture is tiny; sanity-bound the total.
        assert model.num_parameters() < 2500


class TestForward:
    def test_forward_shapes(self, model, sgd_context):
        featurizer = model.featurizer
        raw, props = featurizer.build_context_arrays(sgd_context, [2, 4, 6])
        model.fit_scaler(raw)
        prediction, reconstruction, flat = model.forward(
            Tensor(model.scaler.transform(raw)), Tensor(props)
        )
        assert prediction.shape == (3,)
        assert reconstruction.shape == (3 * 7, 40)
        assert flat.shape == (3 * 7, 40)

    def test_forward_rejects_missing_optional(self, model):
        with pytest.raises(ValueError):
            model.forward(Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 4, 40))))

    def test_predict_requires_fitted_scaler(self, model, sgd_context):
        with pytest.raises(RuntimeError):
            model.predict(sgd_context, [2, 4])

    def test_predict_returns_seconds(self, model, sgd_context):
        raw, _ = model.featurizer.build_context_arrays(sgd_context, [2, 4, 6, 8])
        model.fit_scaler(raw)
        model.runtime_scale = 100.0
        out = model.predict(sgd_context, [2, 4])
        assert out.shape == (2,)
        assert np.isfinite(out).all()

    def test_predict_preserves_training_mode(self, model, sgd_context):
        raw, _ = model.featurizer.build_context_arrays(sgd_context, [2, 4])
        model.fit_scaler(raw)
        model.train()
        model.predict(sgd_context, [2])
        assert model.training

    def test_predict_deterministic_in_eval(self, model, sgd_context):
        raw, _ = model.featurizer.build_context_arrays(sgd_context, [2, 4])
        model.fit_scaler(raw)
        a = model.predict(sgd_context, [2, 4])
        b = model.predict(sgd_context, [2, 4])
        np.testing.assert_array_equal(a, b)

    def test_property_codes_shape(self, model, sgd_context):
        codes = model.property_codes(sgd_context)
        assert codes.shape == (7, 4)  # 4 essential + 3 optional


class TestRuntimeScaling:
    def test_set_runtime_scale_percentile(self, model):
        model.set_runtime_scale(np.array([10.0, 100.0, 1000.0]), percentile=100.0)
        assert model.runtime_scale == pytest.approx(1000.0)

    def test_normalize_denormalize_roundtrip(self, model):
        model.runtime_scale = 250.0
        values = np.array([10.0, 500.0])
        np.testing.assert_allclose(
            model.denormalize_runtimes(model.normalize_runtimes(values)), values
        )

    def test_empty_runtimes_rejected(self, model):
        with pytest.raises(ValueError):
            model.set_runtime_scale(np.array([]))


class TestPersistence:
    def test_full_state_roundtrip(self, model, sgd_context):
        raw, _ = model.featurizer.build_context_arrays(sgd_context, [2, 4, 8])
        model.fit_scaler(raw)
        model.set_runtime_scale(np.array([50.0, 100.0]))
        clone = BellamyModel(model.config)
        clone.load_full_state_dict(model.full_state_dict())
        np.testing.assert_allclose(
            clone.predict(sgd_context, [2, 4, 8]),
            model.predict(sgd_context, [2, 4, 8]),
        )
        assert clone.runtime_scale == model.runtime_scale

    def test_state_contains_scaler_and_scale(self, model):
        model.fit_scaler(np.array([[0.1, 0.0, 2.0], [0.5, 2.0, 12.0]]))
        state = model.full_state_dict()
        assert "__scaler__.min" in state
        assert "__runtime_scale__" in state

    def test_weights_only_roundtrip_excludes_scaler(self, model):
        state = model.state_dict()
        assert all(not key.startswith("__") for key in state)


class TestFeaturizer:
    def test_context_arrays_broadcast_properties(self, sgd_context):
        featurizer = BellamyFeaturizer(BellamyConfig())
        raw, props = featurizer.build_context_arrays(sgd_context, [2, 4, 6])
        assert raw.shape == (3, 3)
        assert props.shape == (3, 7, 40)
        np.testing.assert_array_equal(props[0], props[2])

    def test_context_encoding_cached(self, sgd_context):
        featurizer = BellamyFeaturizer(BellamyConfig())
        a = featurizer.encode_context(sgd_context)
        b = featurizer.encode_context(sgd_context)
        assert a is b

    def test_build_arrays_from_dataset(self, small_context_dataset):
        featurizer = BellamyFeaturizer(BellamyConfig())
        raw, props, runtimes = featurizer.build_arrays(small_context_dataset)
        n = len(small_context_dataset)
        assert raw.shape == (n, 3)
        assert props.shape == (n, 7, 40)
        assert runtimes.shape == (n,)

    def test_empty_dataset_rejected(self):
        from repro.data.dataset import ExecutionDataset

        featurizer = BellamyFeaturizer(BellamyConfig())
        with pytest.raises(ValueError):
            featurizer.build_arrays(ExecutionDataset())

    def test_properties_per_sample(self):
        assert BellamyFeaturizer(BellamyConfig()).properties_per_sample == 7
        assert (
            BellamyFeaturizer(BellamyConfig(use_optional=False)).properties_per_sample
            == 4
        )
