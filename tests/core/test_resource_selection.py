"""Tests of resource selection from runtime predictions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ernest import ErnestModel
from repro.core.resource_selection import (
    evaluate_candidates,
    select_scaleout,
)


def linear_speedup(machines: np.ndarray) -> np.ndarray:
    """Toy predictor: runtime = 600 / x seconds."""
    return 600.0 / np.asarray(machines, dtype=np.float64)


CANDIDATES = [2, 4, 6, 8, 10, 12]


class TestEvaluateCandidates:
    def test_all_candidates_scored(self):
        evaluations = evaluate_candidates(linear_speedup, CANDIDATES)
        assert [e.machines for e in evaluations] == CANDIDATES

    def test_duplicates_removed_and_sorted(self):
        evaluations = evaluate_candidates(linear_speedup, [8, 2, 8, 4])
        assert [e.machines for e in evaluations] == [2, 4, 8]

    def test_cost_computation(self):
        evaluations = evaluate_candidates(
            linear_speedup, [2], price_per_machine_hour=3.6
        )
        # runtime 300 s = 1/12 h; cost = 2 machines * 3.6 $/h / 12 = 0.6 $.
        assert evaluations[0].predicted_cost == pytest.approx(0.6)

    def test_target_flag(self):
        evaluations = evaluate_candidates(
            linear_speedup, CANDIDATES, runtime_target_s=100.0
        )
        meets = {e.machines: e.meets_target for e in evaluations}
        assert not meets[2]  # 300 s
        assert meets[6]  # 100 s
        assert meets[12]  # 50 s

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            evaluate_candidates(linear_speedup, [])

    def test_nonpositive_candidates_rejected(self):
        with pytest.raises(ValueError):
            evaluate_candidates(linear_speedup, [0, 2])


class TestSelectScaleout:
    def test_min_machines_meets_target(self):
        recommendation = select_scaleout(
            linear_speedup, CANDIDATES, runtime_target_s=100.0
        )
        assert recommendation.satisfiable
        assert recommendation.chosen.machines == 6

    def test_unsatisfiable_target(self):
        recommendation = select_scaleout(
            linear_speedup, CANDIDATES, runtime_target_s=10.0
        )
        assert not recommendation.satisfiable
        assert recommendation.chosen is None
        assert len(recommendation.candidates) == len(CANDIDATES)

    def test_min_runtime_objective(self):
        recommendation = select_scaleout(
            linear_speedup, CANDIDATES, objective="min_runtime"
        )
        assert recommendation.chosen.machines == 12

    def test_min_cost_objective(self):
        # With a U-shaped runtime curve, cost = x * t(x) has an interior optimum.
        def u_shaped(machines):
            machines = np.asarray(machines, dtype=np.float64)
            return 600.0 / machines + 10.0 * machines

        recommendation = select_scaleout(
            u_shaped,
            CANDIDATES,
            objective="min_cost",
            price_per_machine_hour=1.0,
        )
        costs = {
            e.machines: e.predicted_cost for e in recommendation.candidates
        }
        assert recommendation.chosen.predicted_cost == min(costs.values())

    def test_min_cost_requires_price(self):
        with pytest.raises(ValueError):
            select_scaleout(linear_speedup, CANDIDATES, objective="min_cost")

    def test_unknown_objective(self):
        with pytest.raises(ValueError):
            select_scaleout(linear_speedup, CANDIDATES, objective="fastest")

    def test_works_with_runtime_model(self):
        machines = np.array([2.0, 4.0, 8.0, 12.0])
        runtimes = 600.0 / machines + 5.0
        model = ErnestModel().fit(machines, runtimes)
        recommendation = select_scaleout(model, CANDIDATES, runtime_target_s=80.0)
        assert recommendation.satisfiable

    def test_works_with_bellamy_model(self, sgd_context):
        from repro.core.config import BellamyConfig
        from repro.core.model import BellamyModel

        model = BellamyModel(BellamyConfig(seed=0))
        raw, _ = model.featurizer.build_context_arrays(sgd_context, CANDIDATES)
        model.fit_scaler(raw)
        recommendation = select_scaleout(
            model, CANDIDATES, context=sgd_context, objective="min_runtime"
        )
        assert recommendation.chosen is not None

    def test_bellamy_model_requires_context(self):
        from repro.core.config import BellamyConfig
        from repro.core.model import BellamyModel

        with pytest.raises(ValueError):
            select_scaleout(BellamyModel(BellamyConfig()), CANDIDATES)
