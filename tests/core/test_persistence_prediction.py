"""Tests of the model store and the RuntimeModel adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore
from repro.core.prediction import BellamyRuntimeModel
from repro.core.finetuning import FinetuneStrategy


@pytest.fixture()
def fitted_model(sgd_context) -> BellamyModel:
    model = BellamyModel(BellamyConfig(seed=3))
    raw, _ = model.featurizer.build_context_arrays(sgd_context, [2, 4, 8, 12])
    model.fit_scaler(raw)
    model.set_runtime_scale(np.array([100.0, 300.0]))
    return model


class TestModelStore:
    def test_save_load_roundtrip(self, tmp_path, fitted_model, sgd_context):
        store = ModelStore(tmp_path)
        store.save("sgd-full", fitted_model, metadata={"algorithm": "sgd"})
        loaded = store.load("sgd-full")
        np.testing.assert_allclose(
            loaded.predict(sgd_context, [2, 6]),
            fitted_model.predict(sgd_context, [2, 6]),
        )

    def test_metadata_roundtrip(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model, metadata={"contexts": 29})
        assert store.metadata("m") == {"contexts": 29}

    def test_loaded_model_in_eval_mode(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        assert not store.load("m").training

    def test_exists_names_delete(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        assert not store.exists("m")
        store.save("m", fitted_model)
        assert store.exists("m")
        assert store.names() == ["m"]
        store.delete("m")
        assert store.names() == []

    def test_missing_model_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelStore(tmp_path).load("ghost")

    def test_unsafe_names_rejected(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("../escape", fitted_model)
        with pytest.raises(ValueError):
            store.save("a/b", fitted_model)

    def test_overwrite_allowed(self, tmp_path, fitted_model):
        store = ModelStore(tmp_path)
        store.save("m", fitted_model)
        store.save("m", fitted_model)
        assert store.names() == ["m"]


class TestBellamyRuntimeModel:
    def test_zero_shot_uses_base(self, fitted_model, sgd_context):
        adapter = BellamyRuntimeModel(sgd_context, base_model=fitted_model)
        adapter.fit(np.array([]), np.array([]))
        np.testing.assert_allclose(
            adapter.predict(np.array([4.0])),
            fitted_model.predict(sgd_context, [4.0]),
        )
        assert adapter.epochs_trained == 0
        assert adapter.fit_seconds == 0.0

    def test_local_variant_requires_data(self, sgd_context):
        adapter = BellamyRuntimeModel(sgd_context, base_model=None)
        with pytest.raises(ValueError):
            adapter.fit(np.array([]), np.array([]))

    def test_local_variant_min_train_points(self, sgd_context):
        adapter = BellamyRuntimeModel(sgd_context, base_model=None)
        assert adapter.min_train_points == 1

    def test_fit_finetunes_copy(self, fitted_model, sgd_context):
        adapter = BellamyRuntimeModel(
            sgd_context, base_model=fitted_model, max_epochs=15
        )
        before = {k: v.copy() for k, v in fitted_model.state_dict().items()}
        adapter.fit(np.array([2.0, 8.0]), np.array([300.0, 120.0]))
        for key, value in fitted_model.state_dict().items():
            np.testing.assert_array_equal(before[key], value)
        assert adapter.epochs_trained > 0
        assert adapter.fit_seconds > 0

    def test_variant_labels(self, fitted_model, sgd_context):
        assert (
            BellamyRuntimeModel(sgd_context, base_model=None).name == "Bellamy (local)"
        )
        assert (
            BellamyRuntimeModel(
                sgd_context,
                base_model=fitted_model,
                strategy=FinetuneStrategy.FULL_RESET,
            ).name
            == "Bellamy (full-reset)"
        )

    def test_predict_without_any_model_raises(self, sgd_context):
        adapter = BellamyRuntimeModel(sgd_context, base_model=None)
        with pytest.raises(RuntimeError):
            adapter.predict(np.array([2.0]))

    def test_local_fit_then_predict(self, sgd_context):
        adapter = BellamyRuntimeModel(
            sgd_context,
            base_model=None,
            config=BellamyConfig(seed=0),
            max_epochs=60,
            seed=5,
        )
        adapter.fit(np.array([2.0, 6.0, 12.0]), np.array([300.0, 180.0, 200.0]))
        out = adapter.predict(np.array([4.0, 8.0]))
        assert out.shape == (2,)
        assert np.isfinite(out).all()
