"""Tests of fine-tuning strategies and the local training variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.finetuning import (
    FinetuneStrategy,
    finetune,
    train_local,
    unfreeze_epoch_for,
)
from repro.core.model import BellamyModel
from repro.core.pretraining import pretrain


@pytest.fixture(scope="module")
def pretrained(request):
    """A small pre-trained SGD model shared across this module's tests."""
    dataset = request.getfixturevalue("c3o_dataset")
    return pretrain(dataset, "sgd", epochs=40, seed=0).model


@pytest.fixture()
def context_samples(c3o_dataset):
    context_data = c3o_dataset.for_algorithm("sgd").by_context()
    cid, data = next(iter(context_data.items()))
    context = data.contexts()[0]
    machines = np.array([2.0, 6.0, 12.0])
    runtimes = np.array(
        [data.filter(lambda e: e.machines == m).runtimes_array().mean() for m in machines]
    )
    return context, machines, runtimes


class TestStrategyEnum:
    def test_reset_semantics(self):
        assert FinetuneStrategy.PARTIAL_RESET.resets_z()
        assert FinetuneStrategy.FULL_RESET.resets_z()
        assert FinetuneStrategy.FULL_RESET.resets_f()
        assert not FinetuneStrategy.PARTIAL_UNFREEZE.resets_z()

    def test_delay_semantics(self):
        assert FinetuneStrategy.PARTIAL_UNFREEZE.delays_f()
        assert FinetuneStrategy.PARTIAL_RESET.delays_f()
        assert not FinetuneStrategy.FULL_UNFREEZE.delays_f()
        assert not FinetuneStrategy.FULL_RESET.delays_f()

    def test_values_match_paper_labels(self):
        assert FinetuneStrategy.PARTIAL_UNFREEZE.value == "partial-unfreeze"
        assert FinetuneStrategy.FULL_RESET.value == "full-reset"


class TestUnfreezeEpoch:
    def test_more_samples_unlock_earlier(self):
        assert unfreeze_epoch_for(1) > unfreeze_epoch_for(5)

    def test_floor(self):
        assert unfreeze_epoch_for(100) == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            unfreeze_epoch_for(-1)

    def test_scales_with_budget(self):
        # At the paper's 2500-epoch budget the rule is max(100, 600 - 100n);
        # shorter budgets shrink the threshold proportionally.
        assert unfreeze_epoch_for(1, max_epochs=2500) == 500
        assert unfreeze_epoch_for(1, max_epochs=500) == 100
        assert unfreeze_epoch_for(3, max_epochs=250) == 30

    def test_minimum_threshold(self):
        assert unfreeze_epoch_for(6, max_epochs=50) == 10

    def test_budget_never_raises_threshold(self):
        # A budget above 2500 must not delay the unfreeze beyond the base rule.
        assert unfreeze_epoch_for(2, max_epochs=10_000) == 400

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            unfreeze_epoch_for(2, max_epochs=0)


class TestFinetune:
    def test_base_model_untouched_with_copy(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        before = {k: v.copy() for k, v in pretrained.state_dict().items()}
        finetune(pretrained, context, machines, runtimes, max_epochs=30)
        after = pretrained.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_autoencoder_never_updated(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(pretrained, context, machines, runtimes, max_epochs=30)
        for (name, before) in pretrained.autoencoder.named_parameters():
            after = dict(result.model.autoencoder.named_parameters())[name]
            np.testing.assert_array_equal(before.data, after.data)

    def test_z_adapts(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(pretrained, context, machines, runtimes, max_epochs=30)
        changed = any(
            not np.array_equal(before.data, dict(result.model.z.named_parameters())[name].data)
            for name, before in pretrained.z.named_parameters()
        )
        assert changed

    def test_partial_keeps_f_frozen_initially(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(
            pretrained,
            context,
            machines,
            runtimes,
            strategy=FinetuneStrategy.PARTIAL_UNFREEZE,
            max_epochs=8,  # below the minimum unfreeze threshold of 10
        )
        for name, before in pretrained.f.named_parameters():
            after = dict(result.model.f.named_parameters())[name]
            np.testing.assert_array_equal(before.data, after.data)

    def test_full_unfreeze_updates_f(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(
            pretrained,
            context,
            machines,
            runtimes,
            strategy=FinetuneStrategy.FULL_UNFREEZE,
            max_epochs=30,
        )
        changed = any(
            not np.array_equal(
                before.data, dict(result.model.f.named_parameters())[name].data
            )
            for name, before in pretrained.f.named_parameters()
        )
        assert changed

    def test_reset_variants_reinitialize(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(
            pretrained,
            context,
            machines,
            runtimes,
            strategy=FinetuneStrategy.FULL_RESET,
            max_epochs=1,
        )
        # After reset + 1 epoch, f must differ from the pre-trained f.
        diffs = [
            np.abs(before.data - dict(result.model.f.named_parameters())[name].data).max()
            for name, before in pretrained.f.named_parameters()
        ]
        assert max(diffs) > 1e-3

    def test_requires_samples(self, pretrained, context_samples):
        context, _, _ = context_samples
        with pytest.raises(ValueError):
            finetune(pretrained, context, [], [])

    def test_mismatched_lengths(self, pretrained, context_samples):
        context, machines, _ = context_samples
        with pytest.raises(ValueError):
            finetune(pretrained, context, machines, [1.0])

    def test_stops_at_mae_target(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(pretrained, context, machines, runtimes, max_epochs=400)
        if result.stop_reason == "target":
            assert result.final_mae <= pretrained.config.finetune_target_mae

    def test_result_diagnostics(self, pretrained, context_samples):
        context, machines, runtimes = context_samples
        result = finetune(pretrained, context, machines, runtimes, max_epochs=20)
        assert result.epochs_trained <= 20
        assert result.wall_seconds > 0
        assert result.strategy == "partial-unfreeze"


class TestTrainLocal:
    def test_local_model_predicts(self, context_samples):
        context, machines, runtimes = context_samples
        result = train_local(context, machines, runtimes, max_epochs=200, seed=0)
        predictions = result.model.predict(context, [4, 8])
        assert predictions.shape == (2,)
        assert (predictions > 0).any()

    def test_local_fits_training_points(self, context_samples):
        context, machines, runtimes = context_samples
        result = train_local(context, machines, runtimes, max_epochs=400, seed=0)
        predictions = result.model.predict(context, machines)
        mae = np.abs(predictions - runtimes).mean()
        assert mae < 0.2 * runtimes.mean()  # fits 3 points reasonably

    def test_local_autoencoder_frozen(self, context_samples):
        context, machines, runtimes = context_samples
        result = train_local(context, machines, runtimes, max_epochs=10, seed=0)
        assert result.model.autoencoder.is_frozen()

    def test_local_requires_samples(self, sgd_context):
        with pytest.raises(ValueError):
            train_local(sgd_context, [], [])

    def test_local_strategy_label(self, context_samples):
        context, machines, runtimes = context_samples
        result = train_local(context, machines, runtimes, max_epochs=5, seed=0)
        assert result.strategy == "local"

    def test_single_point_works(self, context_samples):
        context, machines, runtimes = context_samples
        result = train_local(context, machines[:1], runtimes[:1], max_epochs=100, seed=0)
        assert np.isfinite(result.model.predict(context, [8])).all()
