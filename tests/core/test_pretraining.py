"""Tests of pre-training and corpus policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.pretraining import (
    filter_distinct_contexts,
    pretrain,
    pretrain_with_search,
)


class TestFilterDistinctContexts:
    def test_excludes_same_node_type(self, c3o_dataset):
        sgd = c3o_dataset.for_algorithm("sgd")
        target = sgd.contexts()[0]
        filtered = filter_distinct_contexts(sgd, target)
        assert all(
            e.context.node_type != target.node_type for e in filtered
        )

    def test_excludes_same_characteristics_and_params(self, c3o_dataset):
        sgd = c3o_dataset.for_algorithm("sgd")
        target = sgd.contexts()[0]
        filtered = filter_distinct_contexts(sgd, target)
        for execution in filtered:
            assert execution.context.dataset_characteristics != target.dataset_characteristics
            assert execution.context.params_text != target.params_text

    def test_dataset_size_margin(self, c3o_dataset):
        sgd = c3o_dataset.for_algorithm("sgd")
        target = sgd.contexts()[0]
        filtered = filter_distinct_contexts(sgd, target, size_margin=0.20)
        for execution in filtered:
            relative = abs(execution.context.dataset_mb - target.dataset_mb) / target.dataset_mb
            assert relative >= 0.20

    def test_target_itself_excluded(self, c3o_dataset):
        sgd = c3o_dataset.for_algorithm("sgd")
        target = sgd.contexts()[0]
        filtered = filter_distinct_contexts(sgd, target)
        assert all(e.context.context_id != target.context_id for e in filtered)

    def test_filtered_is_subset(self, c3o_dataset):
        sgd = c3o_dataset.for_algorithm("sgd")
        target = sgd.contexts()[0]
        assert len(filter_distinct_contexts(sgd, target)) < len(sgd)


class TestPretrain:
    def test_result_metadata(self, c3o_dataset):
        result = pretrain(c3o_dataset, "grep", epochs=10, seed=0)
        assert result.algorithm == "grep"
        assert result.n_samples == len(c3o_dataset.for_algorithm("grep"))
        assert result.n_contexts == 27
        assert result.wall_seconds > 0
        assert result.validation_mae is not None

    def test_model_is_usable_after_pretraining(self, c3o_dataset):
        result = pretrain(c3o_dataset, "grep", epochs=10, seed=0)
        context = c3o_dataset.for_algorithm("grep").contexts()[0]
        predictions = result.model.predict(context, [2, 4, 8])
        assert np.isfinite(predictions).all()

    def test_scaler_fitted_and_scale_set(self, c3o_dataset):
        result = pretrain(c3o_dataset, "grep", epochs=5, seed=0)
        assert result.model.scaler.is_fit
        assert result.model.runtime_scale > 1.0

    def test_loss_decreases(self, c3o_dataset):
        result = pretrain(c3o_dataset, "sgd", epochs=60, seed=0)
        history = result.train_result.history
        first = np.mean([h["loss"] for h in history[:5]])
        last = np.mean([h["loss"] for h in history[-5:]])
        assert last < first

    def test_unknown_algorithm_rejected(self, c3o_dataset):
        with pytest.raises(ValueError):
            pretrain(c3o_dataset, "wordcount", epochs=5)

    def test_deterministic_given_seed(self, c3o_dataset):
        a = pretrain(c3o_dataset, "grep", epochs=5, seed=11)
        b = pretrain(c3o_dataset, "grep", epochs=5, seed=11)
        for key, value in a.model.state_dict().items():
            np.testing.assert_array_equal(value, b.model.state_dict()[key])

    def test_seed_changes_model(self, c3o_dataset):
        a = pretrain(c3o_dataset, "grep", epochs=5, seed=1)
        b = pretrain(c3o_dataset, "grep", epochs=5, seed=2)
        diffs = [
            np.abs(a.model.state_dict()[k] - b.model.state_dict()[k]).max()
            for k in a.model.state_dict()
        ]
        assert max(diffs) > 0


class TestPretrainWithSearch:
    def test_search_returns_best_of_trials(self, c3o_dataset):
        result = pretrain_with_search(
            c3o_dataset, "grep", n_samples=2, epochs=5, seed=0
        )
        assert result.hyperparameters["dropout"] in (0.05, 0.10, 0.20)
        assert result.hyperparameters["learning_rate"] in (1e-1, 1e-2, 1e-3)
        assert result.hyperparameters["weight_decay"] in (1e-2, 1e-3, 1e-4)

    def test_search_samples_from_table_grid(self, c3o_dataset):
        result = pretrain_with_search(
            c3o_dataset, "grep", n_samples=1, epochs=3, seed=4
        )
        assert result.validation_mae is not None
