"""Tests that the default configuration mirrors the paper's Table I."""

from __future__ import annotations

import pytest

from repro.core.config import (
    PRETRAIN_SEARCH_SAMPLES,
    PRETRAIN_SEARCH_SPACE,
    BellamyConfig,
)


class TestTableIDefaults:
    """Assert the architecture constants the paper fixes in §IV-A/Table I."""

    def test_general_dimensions(self):
        config = BellamyConfig()
        assert config.hidden_dim == 8          # Hidden-Dim. = 8
        assert config.out_dim == 1             # Out-Dim. = 1
        assert config.property_vector_size == 40  # Decoding-Dim. = 40
        assert config.encoding_dim == 4        # Encoding-Dim. = 4

    def test_scaleout_network_dimensions(self):
        config = BellamyConfig()
        assert config.scaleout_hidden_dim == 16  # f: hidden 16
        assert config.scaleout_dim == 8          # f: output F = 8

    def test_batch_size(self):
        assert BellamyConfig().batch_size == 64

    def test_pretrain_epochs(self):
        assert BellamyConfig().pretrain_epochs == 2500

    def test_search_space_matches_table(self):
        assert PRETRAIN_SEARCH_SPACE["dropout"] == (0.05, 0.10, 0.20)
        assert PRETRAIN_SEARCH_SPACE["learning_rate"] == (1e-1, 1e-2, 1e-3)
        assert PRETRAIN_SEARCH_SPACE["weight_decay"] == (1e-2, 1e-3, 1e-4)
        assert PRETRAIN_SEARCH_SAMPLES == 12

    def test_finetune_settings(self):
        config = BellamyConfig()
        assert config.finetune_max_epochs == 2500
        assert config.finetune_lr_min == 1e-3   # cyclical annealing in
        assert config.finetune_lr_max == 1e-2   # (1e-2, 1e-3)
        assert config.finetune_weight_decay == 1e-3
        assert config.finetune_target_mae == 5.0  # MAE <= 5 stopping criterion
        assert config.finetune_patience == 1000   # no improvement in 1000 epochs

    def test_combined_dim_formula(self):
        # F + (m + 1) * M = 8 + 5 * 4 = 28 (paper Eq. 5 with m=4 essential).
        assert BellamyConfig().combined_dim == 28

    def test_combined_dim_without_optional(self):
        config = BellamyConfig(use_optional=False)
        assert config.combined_dim == 8 + 4 * 4


class TestValidationAndHelpers:
    def test_with_overrides(self):
        config = BellamyConfig().with_overrides(dropout=0.2, seed=9)
        assert config.dropout == 0.2
        assert config.seed == 9
        assert BellamyConfig().dropout != 0.2 or True  # original untouched

    def test_dict_roundtrip(self):
        config = BellamyConfig(dropout=0.05, learning_rate=1e-3)
        assert BellamyConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "overrides",
        [
            {"property_vector_size": 1},
            {"encoding_dim": 0},
            {"n_essential": 0},
            {"dropout": 1.0},
            {"validation_fraction": 1.0},
            {"finetune_lr_min": 0.0},
            {"finetune_lr_min": 0.02, "finetune_lr_max": 0.01},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        with pytest.raises(ValueError):
            BellamyConfig(**overrides)

    def test_frozen(self):
        with pytest.raises(Exception):
            BellamyConfig().dropout = 0.5
