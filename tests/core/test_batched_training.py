"""Batched multi-group training vs the serial per-group loop — bit-identical.

The batched substrate's correctness contract (the existing engine's
bit-identity discipline, extended to the group axis): stacking N contexts
into one fused tape pass must reproduce each context's serial
``finetune``/``pretrain`` run **bitwise** — identical seeds, identical
dropout-mask replay per group slot, identical shuffled batch orders,
identical stop epochs — for uniform and ragged sample counts, with and
without compiled tapes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.finetuning import FinetuneFailure, finetune, finetune_batch
from repro.core.pretraining import pretrain, pretrain_batch
from repro.data.schema import JobContext


@pytest.fixture(scope="module")
def base_model(request):
    """A small pre-trained SGD model shared across this module's tests."""
    dataset = request.getfixturevalue("c3o_dataset")
    return pretrain(dataset, "sgd", epochs=30, seed=0).model


@pytest.fixture(scope="module")
def template_context(request) -> JobContext:
    dataset = request.getfixturevalue("c3o_dataset")
    return next(c for c in dataset.contexts() if c.algorithm == "sgd")


def _make_items(base_model, template, n_groups, sample_counts=None):
    """N same-architecture fine-tune items with deterministic samples."""
    items = []
    for g in range(n_groups):
        n = 8 if sample_counts is None else sample_counts[g]
        machines = np.arange(2.0, 2.0 + n)
        runtimes = 700.0 / machines * (1.0 + 0.3 * np.sin(g + machines)) + 90.0
        context = replace(template, dataset_mb=9_000 + 137 * g, context_id="")
        items.append((base_model, context, machines, runtimes))
    return items


def _assert_results_identical(serial, batched):
    assert not isinstance(batched, FinetuneFailure), batched
    assert serial.epochs_trained == batched.epochs_trained
    assert serial.stop_reason == batched.stop_reason
    assert serial.final_mae == batched.final_mae
    assert serial.train_result.best_epoch == batched.train_result.best_epoch
    assert serial.train_result.history == batched.train_result.history
    serial_state = serial.model.state_dict()
    batched_state = batched.model.state_dict()
    assert set(serial_state) == set(batched_state)
    for name in serial_state:
        assert np.array_equal(serial_state[name], batched_state[name]), name


@pytest.mark.parametrize("n_groups", [1, 2, 50])
def test_finetune_batch_bit_identical_across_group_counts(
    base_model, template_context, n_groups
):
    items = _make_items(base_model, template_context, n_groups)
    max_epochs = 8 if n_groups == 50 else 25
    serial = [finetune(*item, max_epochs=max_epochs) for item in items]
    batched = finetune_batch(items, max_epochs=max_epochs)
    assert len(batched) == n_groups
    for s, b in zip(serial, batched):
        _assert_results_identical(s, b)


def test_finetune_batch_bit_identical_for_ragged_sample_counts(
    base_model, template_context
):
    """Groups with different sample counts pad + mask, yet match serially."""
    items = _make_items(base_model, template_context, 3, sample_counts=[3, 5, 4])
    serial = [finetune(*item, max_epochs=25) for item in items]
    batched = finetune_batch(items, max_epochs=25)
    for s, b in zip(serial, batched):
        _assert_results_identical(s, b)


def test_finetune_batch_isolates_a_bad_group(base_model, template_context):
    """One group's bad data fails only that group; the rest train normally."""
    items = _make_items(base_model, template_context, 3)
    good_serial = [finetune(*items[0], max_epochs=12), finetune(*items[2], max_epochs=12)]
    base, context, machines, _ = items[1]
    items[1] = (base, context, machines, np.array([]))  # length mismatch
    batched = finetune_batch(items, max_epochs=12)
    assert isinstance(batched[1], FinetuneFailure)
    assert batched[1].error.startswith("ValueError")
    _assert_results_identical(good_serial[0], batched[0])
    _assert_results_identical(good_serial[1], batched[2])


def test_finetune_batch_parity_without_tapes(
    base_model, template_context, monkeypatch
):
    """REPRO_NO_TAPE=1 (eager fallback) keeps batched == serial bitwise."""
    monkeypatch.setenv("REPRO_NO_TAPE", "1")
    items = _make_items(base_model, template_context, 2, sample_counts=[4, 6])
    serial = [finetune(*item, max_epochs=15) for item in items]
    batched = finetune_batch(items, max_epochs=15)
    for s, b in zip(serial, batched):
        _assert_results_identical(s, b)


def test_pretrain_batch_bit_identical_to_serial_sweep(c3o_dataset):
    """A two-algorithm warm sweep equals the per-algorithm serial runs."""
    serial = [
        pretrain(c3o_dataset, algorithm, epochs=6, seed=0)
        for algorithm in ("grep", "kmeans")
    ]
    batched = pretrain_batch(c3o_dataset, ["grep", "kmeans"], epochs=6, seed=0)
    assert len(batched) == 2
    for s, b in zip(serial, batched):
        assert s.algorithm == b.algorithm
        assert s.n_samples == b.n_samples
        assert s.validation_mae == b.validation_mae
        assert s.train_result.history == b.train_result.history
        serial_state = s.model.state_dict()
        batched_state = b.model.state_dict()
        for name in serial_state:
            assert np.array_equal(serial_state[name], batched_state[name]), name


def test_pretrain_batch_accepts_per_item_configs(c3o_dataset):
    """(algorithm, config) pairs batch different hyperparameters together."""
    configs = [
        BellamyConfig(seed=0).with_overrides(dropout=0.05),
        BellamyConfig(seed=0).with_overrides(dropout=0.2),
    ]
    batched = pretrain_batch(
        c3o_dataset,
        [("grep", configs[0]), ("grep", configs[1])],
        epochs=4,
        seed=0,
    )
    serial = [
        pretrain(c3o_dataset, "grep", config=config.with_overrides(pretrain_epochs=4, seed=0))
        for config in configs
    ]
    for s, b in zip(serial, batched):
        assert s.validation_mae == b.validation_mae
        for name, value in s.model.state_dict().items():
            assert np.array_equal(value, b.model.state_dict()[name]), name
