"""Tests for cross-algorithm pre-training (repro.core.cross_algorithm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cross_algorithm import (
    PER_ALGORITHM,
    TRANSFER_ONLY,
    UNION,
    pretrain_cross_algorithm,
    run_cross_algorithm_experiment,
)
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.eval.experiments.common import SMOKE_SCALE
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="module")
def mixed_dataset():
    """A small grep+sgd dataset (two algorithms, three contexts each)."""
    contexts = [
        c
        for c in generate_c3o_contexts(seed=4)
        if c.algorithm in ("grep", "sgd")
    ]
    by_algo: dict = {}
    for c in contexts:
        by_algo.setdefault(c.algorithm, []).append(c)
    generator = TraceGenerator(seed=4)
    dataset = ExecutionDataset()
    for algo in ("grep", "sgd"):
        for context in by_algo[algo][:3]:
            dataset.extend(generator.executions_for_context(context, (2, 4, 6, 8), 2))
    return dataset


class TestPretrainCrossAlgorithm:
    def test_union_corpus_trains(self, mixed_dataset):
        result = pretrain_cross_algorithm(mixed_dataset, epochs=20, seed=0)
        assert result.variant == "cross-algorithm"
        assert result.algorithm == "*"
        assert result.n_samples == len(mixed_dataset)

    def test_algorithm_subset(self, mixed_dataset):
        result = pretrain_cross_algorithm(
            mixed_dataset, algorithms=("grep",), epochs=10, seed=0
        )
        grep_count = len(mixed_dataset.for_algorithm("grep"))
        assert result.n_samples == grep_count

    def test_subset_case_insensitive(self, mixed_dataset):
        result = pretrain_cross_algorithm(
            mixed_dataset, algorithms=("GREP",), epochs=5, seed=0
        )
        assert result.n_samples == len(mixed_dataset.for_algorithm("grep"))

    def test_empty_corpus_rejected(self, mixed_dataset):
        with pytest.raises(ValueError, match="empty"):
            pretrain_cross_algorithm(mixed_dataset, algorithms=("sort",), epochs=5)

    def test_model_predicts_both_algorithms(self, mixed_dataset):
        model = pretrain_cross_algorithm(mixed_dataset, epochs=25, seed=0).model
        model.eval()
        for algorithm in ("grep", "sgd"):
            context = mixed_dataset.for_algorithm(algorithm).contexts()[0]
            prediction = model.predict_one(context, 6)
            assert np.isfinite(prediction) and prediction >= 0

    def test_job_name_codes_distinguish_algorithms(self, mixed_dataset):
        """Contexts of different algorithms receive different property codes."""
        model = pretrain_cross_algorithm(mixed_dataset, epochs=10, seed=0).model
        grep_ctx = mixed_dataset.for_algorithm("grep").contexts()[0]
        sgd_ctx = mixed_dataset.for_algorithm("sgd").contexts()[0]
        assert not np.allclose(
            model.property_codes(grep_ctx), model.property_codes(sgd_ctx)
        )


class TestCrossAlgorithmExperiment:
    @pytest.fixture(scope="class")
    def result(self, mixed_dataset):
        return run_cross_algorithm_experiment(
            mixed_dataset,
            scale=SMOKE_SCALE,
            seed=0,
            algorithms=("sgd",),
            contexts_per_algorithm=1,
        )

    def test_three_methods_evaluated(self, result):
        assert set(result.methods()) == {PER_ALGORITHM, UNION, TRANSFER_ONLY}

    def test_records_cover_both_tasks(self, result):
        assert {r.task for r in result.records} == {"interpolation", "extrapolation"}

    def test_pretrain_seconds_per_method(self, result):
        for label in (PER_ALGORITHM, UNION, TRANSFER_ONLY):
            assert result.pretrain_seconds[label] > 0.0

    def test_wall_clock_recorded(self, result):
        assert result.wall_seconds > 0.0

    def test_zero_shot_records_exist(self, result):
        zeroshot = [r for r in result.records if r.n_train == 0]
        assert zeroshot, "pre-trained methods should produce zero-shot records"
