"""Crash-safety of ModelStore.save: an interrupted save never corrupts."""

from __future__ import annotations

import numpy as np
import pytest

import repro.utils.serialization as serialization
from repro.core.config import BellamyConfig
from repro.core.model import BellamyModel
from repro.core.persistence import ModelStore
from repro.utils.serialization import save_json, save_npz_dict


@pytest.fixture()
def model() -> BellamyModel:
    config = BellamyConfig(seed=0).with_overrides(pretrain_epochs=1)
    model = BellamyModel(config)
    model.eval()
    return model


def _states_equal(a: BellamyModel, b: BellamyModel) -> bool:
    sa, sb = a.full_state_dict(), b.full_state_dict()
    return set(sa) == set(sb) and all(np.array_equal(sa[k], sb[k]) for k in sa)


def _stray_files(store: ModelStore) -> list:
    """Files that are neither model members nor store infrastructure.

    The sharded layout adds two-level fan-out directories, ``*.lock``
    files, and ``index.json`` — all expected; the sqlite backend keeps
    its index in ``store.sqlite3`` (plus WAL side files) instead.
    Anything else (``*.tmp`` leftovers in particular) is a leak."""
    return [
        p.name
        for p in store.root.rglob("*")
        if p.is_file()
        and p.suffix not in (".npz", ".json", ".lock")
        and not p.name.startswith("store.sqlite3")
    ]


class _Crash(RuntimeError):
    """The simulated crash."""


def test_round_trip_and_metadata(tmp_path, model):
    store = ModelStore(tmp_path)
    store.save("m", model, metadata={"origin": "test"})
    loaded = store.load("m")
    assert _states_equal(model, loaded)
    assert store.metadata("m") == {"origin": "test"}


def test_crash_during_weights_write_leaves_no_model(tmp_path, model, monkeypatch):
    """A crash before the .npz commit point: the model simply does not exist."""
    store = ModelStore(tmp_path)

    def exploding_savez(*args, **kwargs):
        raise _Crash("disk full")

    monkeypatch.setattr(serialization.np, "savez_compressed", exploding_savez)
    with pytest.raises(_Crash):
        store.save("m", model)
    monkeypatch.undo()

    assert not store.exists("m")
    assert store.names() == []
    with pytest.raises(FileNotFoundError):
        store.load("m")
    assert _stray_files(store) == []  # no leaked temp files
    # The store recovers: the same save succeeds afterwards.
    store.save("m", model)
    assert _states_equal(model, store.load("m"))


def test_crash_between_weights_and_sidecar_still_loads(tmp_path, model, monkeypatch):
    """A crash after the .npz replace: the model is committed and loadable
    even though the human-readable .json sidecar was never written."""
    store = ModelStore(tmp_path)

    def exploding_save_json(*args, **kwargs):
        raise _Crash("power loss")

    import repro.core.persistence as persistence

    monkeypatch.setattr(persistence, "save_json", exploding_save_json)
    with pytest.raises(_Crash):
        store.save("m", model, metadata={"v": 1})
    monkeypatch.undo()

    assert store.exists("m")
    assert not (tmp_path / "m.json").exists()
    loaded = store.load("m")  # metadata embedded in the .npz
    assert _states_equal(model, loaded)
    assert store.metadata("m") == {"v": 1}


def test_interrupted_overwrite_keeps_a_consistent_model(tmp_path, model, monkeypatch):
    """Overwriting an existing model and crashing mid-way serves either the
    old or the new model — never a torn mix of weights and config."""
    store = ModelStore(tmp_path)
    store.save("m", model, metadata={"version": 1})
    old_state = store.load("m").full_state_dict()

    def exploding_savez(*args, **kwargs):
        raise _Crash("interrupted")

    monkeypatch.setattr(serialization.np, "savez_compressed", exploding_savez)
    other = BellamyModel(BellamyConfig(seed=1).with_overrides(pretrain_epochs=1))
    with pytest.raises(_Crash):
        store.save("m", other, metadata={"version": 2})
    monkeypatch.undo()

    survivor = store.load("m")  # the old model, fully intact
    state = survivor.full_state_dict()
    assert set(state) == set(old_state)
    assert all(np.array_equal(state[k], old_state[k]) for k in state)
    assert store.metadata("m") == {"version": 1}


def test_legacy_two_file_layout_still_loads(tmp_path, model):
    """Stores written before the embedded-metadata format keep loading."""
    store = ModelStore(tmp_path)
    # Reproduce the old save(): plain state .npz + separate .json.
    save_npz_dict(tmp_path / "legacy.npz", model.full_state_dict())
    save_json(
        tmp_path / "legacy.json",
        {
            "config": model.config.to_dict(),
            "model_class": "BellamyModel",
            "metadata": {"era": "pre-atomic"},
        },
    )
    loaded = store.load("legacy")
    assert _states_equal(model, loaded)
    assert store.metadata("legacy") == {"era": "pre-atomic"}


def test_reserved_meta_key_is_rejected(tmp_path, model, monkeypatch):
    store = ModelStore(tmp_path)
    state = model.full_state_dict()
    state["__meta_json__"] = np.zeros(1)
    monkeypatch.setattr(model, "full_state_dict", lambda: state)
    with pytest.raises(ValueError, match="reserved"):
        store.save("m", model)
