"""Compiled-tape and fused-kernel correctness.

The contract under test: the fused kernels (`selu`, `linear_act`,
`huber_loss`) agree with their composed reference implementations and with
finite differences, and a training loop driven through a compiled tape is
**bit-identical** to the same loop run eagerly — including dropout (mask
replay), staged unfreezing (re-recording), and weight-decayed Adam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, FeedForward, GraphCompiler, HuberLoss, Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import gradcheck
from repro.nn.tape import Tape
from repro.nn.tensor import recording, where


class TestFusedKernels:
    def test_selu_matches_reference_forward(self):
        x = np.random.default_rng(0).normal(size=(5, 7)) * 3
        fused = F.selu(Tensor(x)).data
        reference = F.selu_reference(Tensor(x)).data
        assert np.array_equal(fused, reference)

    def test_selu_gradient_matches_reference(self):
        x = np.random.default_rng(1).normal(size=(4, 6))
        a = Tensor(x, requires_grad=True)
        F.selu(a).sum().backward()
        b = Tensor(x, requires_grad=True)
        F.selu_reference(b).sum().backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-12, rtol=0)

    def test_selu_gradcheck(self):
        x = np.array([-2.0, -0.3, 0.4, 1.7])
        assert gradcheck(lambda ts: F.selu(ts[0]).sum(), [x])

    @pytest.mark.parametrize("activation", ["selu", "tanh", "identity"])
    @pytest.mark.parametrize("use_bias", [True, False])
    def test_linear_act_gradcheck(self, activation, use_bias):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 5))
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=3)
        if use_bias:
            fn = lambda ts: F.linear_act(ts[0], ts[1], ts[2], activation).sum()
            assert gradcheck(fn, [x, w, b])
        else:
            fn = lambda ts: F.linear_act(ts[0], ts[1], None, activation).sum()
            assert gradcheck(fn, [x, w])

    def test_linear_act_matches_composition(self):
        rng = np.random.default_rng(4)
        x, w, b = rng.normal(size=(6, 5)), rng.normal(size=(3, 5)), rng.normal(size=3)
        fused = F.linear_act(Tensor(x), Tensor(w), Tensor(b), "selu").data
        composed = F.selu_reference(F.linear(Tensor(x), Tensor(w), Tensor(b))).data
        assert np.array_equal(fused, composed)

    def test_linear_act_rejects_unfusable_activation(self):
        with pytest.raises(ValueError, match="cannot fuse"):
            F.linear_act(Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 2))), None, "relu")

    def test_huber_matches_reference(self):
        rng = np.random.default_rng(5)
        p, t = rng.normal(size=9) * 2, rng.normal(size=9)
        fused = F.huber_loss(Tensor(p), Tensor(t)).item()
        reference = F.huber_loss_reference(Tensor(p), Tensor(t)).item()
        assert fused == pytest.approx(reference, abs=1e-15)

    def test_huber_gradient_matches_reference(self):
        rng = np.random.default_rng(6)
        p, t = rng.normal(size=(8, 1)) * 2, rng.normal(size=(8, 1))
        a = Tensor(p, requires_grad=True)
        F.huber_loss(a, Tensor(t)).backward()
        b = Tensor(p, requires_grad=True)
        F.huber_loss_reference(b, Tensor(t)).backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-8, rtol=0)

    def test_huber_gradcheck_both_regions(self):
        values = np.array([-3.0, -0.5, 0.2, 2.5])
        assert gradcheck(
            lambda ts: F.huber_loss(ts[0], Tensor(np.zeros(4)), delta=1.0), [values]
        )

    def test_huber_target_gradient(self):
        rng = np.random.default_rng(7)
        p, t = rng.normal(size=5), rng.normal(size=5)
        assert gradcheck(lambda ts: F.huber_loss(Tensor(p), ts[0], delta=0.8), [t])


def _train(enabled: bool, *, dropout: float = 0.0, unfreeze_at: int = -1, steps: int = 25):
    """One deterministic training run; returns the final state dict."""
    net = FeedForward(6, 4, 1, seed=0, dropout=dropout)
    if unfreeze_at >= 0:
        net.layer1.freeze()
    optimizer = Adam(net.parameters(), lr=1e-2, weight_decay=1e-3)
    loss_fn = HuberLoss()
    rng = np.random.default_rng(7)
    x_all = rng.normal(size=(32, 6))
    y_all = rng.normal(size=(32, 1))
    compiler = GraphCompiler(
        lambda x_t, y_t: (loss_fn(net(x_t), y_t),), params=net.parameters, enabled=enabled
    )
    for step in range(steps):
        if step == unfreeze_at:
            net.layer1.unfreeze()
        batch = np.random.default_rng(100 + step).permutation(32)[:16]
        compiler.run(x_all[batch], y_all[batch])
        optimizer.zero_grad()
        compiler.loss_handle.backward()
        optimizer.step()
    return net.state_dict(), compiler


class TestCompiledTape:
    def test_replay_is_bit_identical_to_eager(self):
        eager, _ = _train(False)
        taped, compiler = _train(True)
        assert compiler.n_tapes == 1
        for key in eager:
            assert np.array_equal(eager[key], taped[key]), key

    def test_dropout_masks_replay_from_the_same_stream(self):
        eager, _ = _train(False, dropout=0.25)
        taped, compiler = _train(True, dropout=0.25)
        assert compiler.n_tapes == 1  # dropout recorded as a refresh op
        for key in eager:
            assert np.array_equal(eager[key], taped[key]), key

    def test_unfreeze_triggers_rerecord(self):
        eager, _ = _train(False, unfreeze_at=12)
        taped, compiler = _train(True, unfreeze_at=12)
        assert compiler.n_tapes == 2  # one tape per parameter signature
        for key in eager:
            assert np.array_equal(eager[key], taped[key]), key

    def test_shape_change_gets_its_own_tape(self):
        net = FeedForward(3, 4, 1, seed=1)
        loss_fn = HuberLoss()
        compiler = GraphCompiler(
            lambda x_t, y_t: (loss_fn(net(x_t), y_t),), params=net.parameters, enabled=True
        )
        rng = np.random.default_rng(0)
        for batch_size in (8, 8, 3, 8, 3):
            compiler.run(rng.normal(size=(batch_size, 3)), rng.normal(size=(batch_size, 1)))
        assert compiler.n_tapes == 2

    def test_unsafe_op_falls_back_to_eager(self):
        # where() with a data-dependent condition cannot replay; the
        # compiler must detect it and keep producing correct eager results.
        weight = Tensor(np.array([[2.0]]), requires_grad=True)

        def build(x_t):
            h = x_t @ weight
            return (where(h.data > 0.0, h, h * 0.1).sum(),)

        compiler = GraphCompiler(build, enabled=True)
        for value in (1.0, -1.0, 2.0):
            (loss,) = compiler.run(np.array([[value]]))
            weight.zero_grad()
            compiler.loss_handle.backward()
            expected = value if value * 2.0 > 0 else value * 0.1
            assert loss.item() == pytest.approx(2.0 * value if value * 2.0 > 0 else 0.2 * value)
            assert weight.grad[0, 0] == pytest.approx(expected)
        assert compiler.n_tapes == 0  # never compiled
        assert not compiler.compiled

    def test_recording_collects_forward_thunks(self):
        tape = Tape()
        with recording(tape):
            a = Tensor(np.ones((2, 2)), requires_grad=True)
            ((a * 2.0) + 1.0).sum()
        assert len(tape.steps) == 3  # mul, add, sum
        assert not tape.unsafe

    def test_replayed_aux_tensors_are_refreshed(self):
        net = FeedForward(4, 3, 1, seed=2)
        compiler = GraphCompiler(
            lambda x_t: (net(x_t).sum(), net(x_t)), params=net.parameters, enabled=True
        )
        rng = np.random.default_rng(1)
        x1, x2 = rng.normal(size=(5, 4)), rng.normal(size=(5, 4))
        _, out_first = compiler.run(x1)
        first = out_first.data.copy()
        _, out_second = compiler.run(x2)
        assert out_first is out_second  # same tensor object, new buffer values
        assert not np.array_equal(first, out_second.data)

    def test_tape_vs_eager_gradients_close(self):
        # The satellite contract: tape and eager gradients agree to 1e-8.
        net = FeedForward(5, 4, 2, seed=3)
        loss_fn = HuberLoss()
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(10, 5)), rng.normal(size=(10, 2))

        def grads(enabled):
            compiler = GraphCompiler(
                lambda x_t, y_t: (loss_fn(net(x_t), y_t),),
                params=net.parameters,
                enabled=enabled,
            )
            for _ in range(2):  # second run exercises the replay path
                compiler.run(x, y)
                for param in net.parameters():
                    param.zero_grad()
                compiler.loss_handle.backward()
            return [param.grad.copy() for param in net.parameters()]

        for eager_grad, taped_grad in zip(grads(False), grads(True)):
            np.testing.assert_allclose(eager_grad, taped_grad, atol=1e-8, rtol=0)
