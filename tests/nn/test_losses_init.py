"""Tests of the loss modules and weight initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.init import (
    get_initializer,
    he_normal,
    he_uniform,
    lecun_normal,
    xavier_uniform,
    zeros,
)
from repro.nn.losses import HuberLoss, JointLoss, MAELoss, MSELoss
from repro.nn.tensor import Tensor


class TestInitializers:
    def test_he_normal_statistics(self):
        weights = he_normal((512, 256), seed=0)
        expected_std = np.sqrt(2.0 / 256)
        assert abs(weights.std() - expected_std) / expected_std < 0.05
        assert abs(weights.mean()) < 0.01

    def test_lecun_normal_statistics(self):
        weights = lecun_normal((512, 256), seed=0)
        expected_std = np.sqrt(1.0 / 256)
        assert abs(weights.std() - expected_std) / expected_std < 0.05

    def test_he_uniform_bounds(self):
        weights = he_uniform((100, 64), seed=0)
        bound = np.sqrt(6.0 / 64)
        assert (np.abs(weights) <= bound).all()

    def test_xavier_uniform_bounds(self):
        weights = xavier_uniform((100, 50), seed=0)
        bound = np.sqrt(6.0 / 150)
        assert (np.abs(weights) <= bound).all()

    def test_zeros(self):
        np.testing.assert_array_equal(zeros((3, 2)), np.zeros((3, 2)))

    def test_1d_shape(self):
        assert he_normal((10,), seed=0).shape == (10,)

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(he_normal((4, 4), seed=7), he_normal((4, 4), seed=7))

    def test_lookup(self):
        assert get_initializer("he_normal") is he_normal
        with pytest.raises(ValueError):
            get_initializer("glorot_magic")


class TestLossModules:
    def test_mse_module(self):
        loss = MSELoss()(Tensor([1.0, 3.0]), Tensor([1.0, 1.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_mae_module(self):
        loss = MAELoss()(Tensor([1.0, 3.0]), Tensor([1.0, 1.0]))
        assert loss.item() == pytest.approx(1.0)

    def test_huber_module_delta(self):
        loss = HuberLoss(delta=2.0)(Tensor([5.0]), Tensor([0.0]))
        assert loss.item() == pytest.approx(2.0 * (5.0 - 1.0))

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=-1.0)


class TestJointLoss:
    def make_joint(self, weight=2.0):
        return JointLoss(
            [("runtime", HuberLoss(delta=1.0), 1.0), ("reconstruction", MSELoss(), weight)]
        )

    def test_weighted_sum(self):
        joint = self.make_joint(weight=2.0)
        pairs = {
            "runtime": (Tensor([0.5]), Tensor([0.0])),
            "reconstruction": (Tensor([1.0]), Tensor([0.0])),
        }
        total, parts = joint(pairs)
        assert parts["runtime"] == pytest.approx(0.125)
        assert parts["reconstruction"] == pytest.approx(1.0)
        assert total.item() == pytest.approx(0.125 + 2.0)

    def test_missing_term_raises(self):
        joint = self.make_joint()
        with pytest.raises(KeyError):
            joint({"runtime": (Tensor([1.0]), Tensor([1.0]))})

    def test_gradients_flow_through_all_terms(self):
        joint = self.make_joint()
        a = Tensor([0.5], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        total, _ = joint(
            {"runtime": (a, Tensor([0.0])), "reconstruction": (b, Tensor([0.0]))}
        )
        total.backward()
        assert a.grad is not None and b.grad is not None

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            JointLoss([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            JointLoss([("x", MSELoss(), -1.0)])

    def test_parameters_of_terms_registered(self):
        joint = self.make_joint()
        # Loss modules are parameterless but must be registered as children.
        assert len(joint.children()) == 2
