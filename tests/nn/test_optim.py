"""Tests of the optimizers: update rules, weight decay, convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW


def quadratic_step(param: Parameter) -> None:
    """Set the gradient of f(w) = 0.5 ||w||^2, i.e. grad = w."""
    param.grad = param.data.copy()


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.8)

    def test_weight_decay_adds_l2_gradient(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_momentum_accelerates(self):
        p1, p2 = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        plain, momentum = SGD([p1], lr=0.01), SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_step(p1)
            plain.step()
            quadratic_step(p2)
            momentum.step()
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_skips_frozen_parameters(self):
        p = Parameter(np.array([1.0]))
        p.requires_grad = False
        opt = SGD([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        assert p.data[0] == 1.0

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the very first Adam step is ~lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([7.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.9, abs=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            quadratic_step(p)
            opt.step()
        np.testing.assert_allclose(p.data, 0.0, atol=1e-3)

    def test_coupled_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.01, weight_decay=0.1)
        for _ in range(200):
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_per_parameter_state_is_independent(self):
        p1, p2 = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.array([1.0])
        opt.step()  # only p1 has a gradient
        assert id(p2) not in opt.state
        assert opt.state[id(p1)]["t"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, eps=0.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, weight_decay=-0.1)


class TestAdamW:
    def test_decoupled_decay_independent_of_gradient_scale(self):
        # AdamW's decay shrinks weights by lr*wd*w regardless of gradients.
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_differs_from_adam_under_decay(self):
        pa, pw = Parameter(np.array([2.0])), Parameter(np.array([2.0]))
        adam = Adam([pa], lr=0.05, weight_decay=0.2)
        adamw = AdamW([pw], lr=0.05, weight_decay=0.2)
        for _ in range(10):
            pa.grad = np.array([0.3])
            pw.grad = np.array([0.3])
            adam.step()
            adamw.step()
        assert pa.data[0] != pytest.approx(pw.data[0])
