"""Tests of the training loop: stopping criteria, best-state restore, callbacks."""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.optim import Adam, SGD
from repro.nn.schedulers import CyclicLR, StepLR
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainResult, Trainer, TrainerConfig, unfreeze_after


class LineModel(Module):
    def __init__(self, seed=0):
        super().__init__()
        self.fc = Linear(1, 1, seed=seed)

    def forward(self, x):
        return self.fc(x)


def make_problem(n=64, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 1))
    Y = 3.0 * X + 0.5
    return X, Y


def batch_loss_fn(model, X, Y):
    def batch_loss(indices):
        prediction = model(Tensor(X[indices]))
        loss = F.mse_loss(prediction, Tensor(Y[indices]))
        mae = float(np.abs(prediction.data - Y[indices]).mean())
        return loss, {"mae": mae}

    return batch_loss


class TestBasicTraining:
    def test_converges_on_linear_problem(self):
        model = LineModel()
        X, Y = make_problem()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=1e-2),
            TrainerConfig(max_epochs=400, batch_size=16, monitor="mae", seed=0),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        assert result.best_metric < 0.05

    def test_history_recorded_per_epoch(self):
        model = LineModel()
        X, Y = make_problem()
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-2),
            TrainerConfig(max_epochs=7, batch_size=32, seed=0),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        assert len(result.history) == 7
        assert all("loss" in h and "mae" in h and "lr" in h for h in result.history)

    def test_metric_series_helper(self):
        result = TrainResult(
            epochs_trained=2,
            best_epoch=1,
            best_metric=0.5,
            stop_reason="max_epochs",
            history=[{"mae": 1.0}, {"mae": 0.5}],
        )
        assert result.metric_series("mae") == [1.0, 0.5]

    def test_invalid_n_samples(self):
        model = LineModel()
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.1), TrainerConfig(max_epochs=1)
        )
        with pytest.raises(ValueError):
            trainer.fit(0, lambda idx: None)


class TestStoppingCriteria:
    def test_target_stop(self):
        model = LineModel()
        X, Y = make_problem()
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=5e-2),
            TrainerConfig(max_epochs=2000, batch_size=64, monitor="mae", target=0.2, seed=0),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        assert result.stop_reason == "target"
        assert result.epochs_trained < 2000

    def test_patience_stop(self):
        model = LineModel()
        X, Y = make_problem()
        # A tiny LR improves the metric by less than min_delta each epoch,
        # so patience must terminate the run.
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-12),
            TrainerConfig(
                max_epochs=500, monitor="mae", patience=10, min_delta=0.01, seed=0
            ),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        assert result.stop_reason == "patience"
        assert result.epochs_trained <= 15

    def test_max_epochs_stop(self):
        model = LineModel()
        X, Y = make_problem()
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-3),
            TrainerConfig(max_epochs=3, seed=0),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        assert result.stop_reason == "max_epochs"

    def test_callback_stop(self):
        model = LineModel()
        X, Y = make_problem()

        def stop_at_five(trainer, epoch, metrics):
            if epoch == 4:
                trainer.should_stop = True

        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-3),
            TrainerConfig(max_epochs=100, seed=0),
            callbacks=[stop_at_five],
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        assert result.stop_reason == "callback"
        assert result.epochs_trained == 5


class TestBestStateRestore:
    def test_best_state_restored(self):
        model = LineModel()
        X, Y = make_problem()

        # Monitor via the end-of-epoch evaluate hook so the monitored value
        # corresponds exactly to the state that gets snapshotted.
        def evaluate():
            prediction = model(Tensor(X)).data
            return {"val_mae": float(np.abs(prediction - Y).mean())}

        # Huge LR makes late epochs diverge; restore must pick the best.
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=2.5),
            TrainerConfig(max_epochs=60, monitor="val_mae", restore_best=True, seed=0),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y), evaluate=evaluate)
        final_pred = model(Tensor(X)).data
        final_mae = float(np.abs(final_pred - Y).mean())
        assert final_mae == pytest.approx(result.best_metric, rel=1e-9)

    def test_no_restore_keeps_last_state(self):
        model = LineModel()
        X, Y = make_problem()
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-2),
            TrainerConfig(max_epochs=5, monitor="mae", restore_best=False, seed=0),
        )
        trainer.fit(len(X), batch_loss_fn(model, X, Y))  # should not raise


class TestSchedulerIntegration:
    def test_scheduler_steps_each_epoch(self):
        model = LineModel()
        X, Y = make_problem()
        optimizer = SGD(model.parameters(), lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        trainer = Trainer(
            model, optimizer, TrainerConfig(max_epochs=4, seed=0), scheduler=scheduler
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        lrs = result.metric_series("lr")
        np.testing.assert_allclose(lrs, [1.0, 1.0, 0.1, 0.1])

    def test_cyclic_lr_recorded(self):
        model = LineModel()
        X, Y = make_problem()
        optimizer = Adam(model.parameters(), lr=1e-2)
        scheduler = CyclicLR(optimizer, min_lr=1e-3, max_lr=1e-2, cycle_length=10)
        trainer = Trainer(
            model, optimizer, TrainerConfig(max_epochs=10, seed=0), scheduler=scheduler
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y))
        lrs = result.metric_series("lr")
        assert max(lrs) <= 1e-2 + 1e-12
        assert min(lrs) >= 1e-3 - 1e-12


class TestEvaluateHook:
    def test_monitor_uses_evaluate_metrics(self):
        model = LineModel()
        X, Y = make_problem()
        calls = []

        def evaluate():
            calls.append(1)
            return {"val_mae": 123.0}

        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-3),
            TrainerConfig(max_epochs=3, monitor="val_mae", seed=0),
        )
        result = trainer.fit(len(X), batch_loss_fn(model, X, Y), evaluate=evaluate)
        assert len(calls) == 3
        assert result.best_metric == 123.0


class TestUnfreezeCallback:
    def test_unfreezes_at_threshold(self):
        model = LineModel()
        X, Y = make_problem()
        model.fc.freeze()
        trainer = Trainer(
            model,
            SGD(model.parameters(), lr=1e-2),
            TrainerConfig(max_epochs=6, seed=0),
            callbacks=[unfreeze_after(model.fc, 3)],
        )
        weights = []

        def spy(trainer, epoch, metrics):
            weights.append(model.fc.weight.data.copy())

        trainer.callbacks.append(spy)
        trainer.fit(len(X), batch_loss_fn(model, X, Y))
        # Frozen during the first 3 epochs, trained afterwards.
        np.testing.assert_array_equal(weights[0], weights[2])
        assert not np.array_equal(weights[2], weights[5])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            unfreeze_after(LineModel(), -1)
