"""Tests of the module system: registration, state dicts, freezing, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import FeedForward, Linear
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.tensor import Tensor


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(2, 3, seed=0)
        self.fc2 = Linear(3, 1, seed=1)

    def forward(self, x):
        return self.fc2(self.fc1(x))


class TestRegistration:
    def test_parameters_found_recursively(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 2 * 3 + 3 + 3 * 1 + 1

    def test_attribute_overwrite_removes_old_registration(self):
        net = TinyNet()
        net.fc2 = Linear(3, 2, seed=2)
        assert dict(net.named_parameters())["fc2.weight"].shape == (2, 3)

    def test_replacing_module_with_plain_value_unregisters(self):
        net = TinyNet()
        net.fc2 = None
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias"]

    def test_named_modules_includes_self_and_children(self):
        net = TinyNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_children(self):
        assert len(TinyNet().children()) == 2

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros(3))
        assert isinstance(p, Tensor)
        assert p.requires_grad


class TestModes:
    def test_train_eval_propagate(self):
        net = TinyNet()
        net.eval()
        assert not net.training
        assert not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestFreezing:
    def test_freeze_unfreeze(self):
        net = TinyNet()
        net.freeze()
        assert net.is_frozen()
        assert all(not p.requires_grad for p in net.parameters())
        net.unfreeze()
        assert not net.is_frozen()

    def test_partial_freeze(self):
        net = TinyNet()
        net.fc1.freeze()
        assert net.fc1.is_frozen()
        assert not net.is_frozen()

    def test_frozen_params_receive_no_gradient(self):
        net = TinyNet()
        net.fc1.freeze()
        out = net(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert net.fc1.weight.grad is None
        assert net.fc2.weight.grad is not None


class TestStateDict:
    def test_roundtrip(self):
        a, b = TinyNet(), TinyNet()
        b.load_state_dict(a.state_dict())
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_strict_missing_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_strict_unexpected_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_ignores_extras(self):
        net = TinyNet()
        state = net.state_dict()
        state["ghost"] = np.zeros(1)
        net.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_resets_gradients(self):
        net = TinyNet()
        net(Tensor(np.ones((1, 2)))).sum().backward()
        net.load_state_dict(net.state_dict())
        assert all(p.grad is None for p in net.parameters())


class TestSequential:
    def test_forward_chains(self):
        seq = Sequential(Linear(2, 3, seed=0), Linear(3, 1, seed=1))
        out = seq(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)

    def test_len_iter_getitem(self):
        layers = [Linear(2, 2, seed=i) for i in range(3)]
        seq = Sequential(*layers)
        assert len(seq) == 3
        assert list(seq) == layers
        assert seq[1] is layers[1]

    def test_parameters_collected(self):
        seq = Sequential(Linear(2, 3, seed=0), Linear(3, 1, seed=1))
        assert len(seq.parameters()) == 4


class TestFeedForward:
    def test_output_shape(self):
        net = FeedForward(3, 16, 8, seed=0)
        assert net(Tensor(np.ones((5, 3)))).shape == (5, 8)

    def test_bias_waived(self):
        net = FeedForward(4, 8, 2, bias=False, seed=0)
        names = [name for name, _ in net.named_parameters()]
        assert all("bias" not in name for name in names)

    def test_reset_parameters_changes_weights(self):
        net = FeedForward(3, 4, 2, seed=0)
        before = net.layer1.weight.data.copy()
        net.reset_parameters(seed=123)
        assert not np.allclose(before, net.layer1.weight.data)

    def test_set_dropout_disables(self):
        net = FeedForward(3, 4, 2, dropout=0.2, seed=0)
        net.set_dropout(0.0)
        x = Tensor(np.ones((100, 3)))
        out1 = net(x)
        out2 = net(x)
        np.testing.assert_allclose(out1.data, out2.data)

    def test_dropout_active_in_training(self):
        net = FeedForward(3, 32, 8, dropout=0.5, seed=0)
        x = Tensor(np.ones((20, 3)))
        out1 = net(x).data.copy()
        out2 = net(x).data.copy()
        assert not np.allclose(out1, out2)

    def test_dropout_inactive_in_eval(self):
        net = FeedForward(3, 32, 8, dropout=0.5, seed=0)
        net.eval()
        x = Tensor(np.ones((20, 3)))
        np.testing.assert_allclose(net(x).data, net(x).data)

    def test_deterministic_init_given_seed(self):
        a = FeedForward(3, 4, 2, seed=42)
        b = FeedForward(3, 4, 2, seed=42)
        np.testing.assert_array_equal(a.layer1.weight.data, b.layer1.weight.data)
