"""Tests of composite differentiable functions (activations, losses, dropout)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.nn.functional as F
from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor


def arrays(shape=(6,), lo=-3.0, hi=3.0):
    return hnp.arrays(np.float64, shape, elements=st.floats(lo, hi))


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        assert gradcheck(lambda ts: F.relu(ts[0]).sum(), [np.array([-1.0, 0.5, 2.0])])

    def test_selu_positive_branch_is_scaled_identity(self):
        x = np.array([0.5, 1.0, 3.0])
        out = F.selu(Tensor(x))
        np.testing.assert_allclose(out.data, F.SELU_SCALE * x)

    def test_selu_negative_branch(self):
        x = np.array([-1.0])
        out = F.selu(Tensor(x))
        expected = F.SELU_SCALE * F.SELU_ALPHA * (np.exp(-1.0) - 1.0)
        np.testing.assert_allclose(out.data, [expected])

    def test_selu_gradient(self):
        assert gradcheck(
            lambda ts: F.selu(ts[0]).sum(), [np.array([-2.0, -0.3, 0.4, 1.7])]
        )

    def test_selu_fixed_point_statistics(self):
        # Standard-normal input through SELU keeps mean ~0 and variance ~1
        # (the self-normalizing property the constants encode).
        rng = np.random.default_rng(0)
        x = rng.normal(size=200_000)
        out = F.selu(Tensor(x)).data
        assert abs(out.mean()) < 0.02
        assert abs(out.std() - 1.0) < 0.02

    def test_elu_gradient(self):
        assert gradcheck(lambda ts: F.elu(ts[0]).sum(), [np.array([-1.5, 0.2])])

    def test_leaky_relu(self):
        out = F.leaky_relu(Tensor([-2.0, 2.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 2.0])

    def test_softplus_matches_reference(self):
        x = np.array([-20.0, -1.0, 0.0, 1.0, 20.0])
        out = F.softplus(Tensor(x)).data
        np.testing.assert_allclose(out, np.logaddexp(0.0, x), rtol=1e-7)

    def test_softplus_gradient(self):
        assert gradcheck(lambda ts: F.softplus(ts[0]).sum(), [np.array([-1.0, 0.0, 2.0])])

    def test_identity(self):
        t = Tensor([1.0])
        assert F.identity(t) is t


class TestLosses:
    @given(arrays(), arrays())
    @settings(max_examples=20, deadline=None)
    def test_mse_matches_numpy(self, a, b):
        out = F.mse_loss(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.item(), np.mean((a - b) ** 2), atol=1e-12)

    def test_mse_gradient(self):
        a = np.array([1.0, 2.0])
        b = np.array([0.5, 2.5])
        assert gradcheck(lambda ts: F.mse_loss(ts[0], Tensor(b)), [a])

    def test_mae_matches_numpy(self):
        a, b = np.array([1.0, -3.0]), np.array([2.0, 1.0])
        out = F.mae_loss(Tensor(a), Tensor(b))
        assert out.item() == pytest.approx(np.abs(a - b).mean())

    def test_huber_quadratic_region(self):
        # |r| <= delta: 0.5 r^2
        out = F.huber_loss(Tensor([1.5]), Tensor([1.0]), delta=1.0)
        assert out.item() == pytest.approx(0.5 * 0.25)

    def test_huber_linear_region(self):
        # |r| > delta: delta * (|r| - delta/2)
        out = F.huber_loss(Tensor([4.0]), Tensor([1.0]), delta=1.0)
        assert out.item() == pytest.approx(1.0 * (3.0 - 0.5))

    def test_huber_continuous_at_delta(self):
        lo = F.huber_loss(Tensor([1.0 - 1e-9]), Tensor([0.0]), delta=1.0).item()
        hi = F.huber_loss(Tensor([1.0 + 1e-9]), Tensor([0.0]), delta=1.0).item()
        assert lo == pytest.approx(hi, abs=1e-6)

    def test_huber_gradient_both_regions(self):
        a = np.array([0.3, 5.0, -4.0, -0.2])
        assert gradcheck(
            lambda ts: F.huber_loss(ts[0], Tensor(np.zeros(4)), delta=1.0), [a]
        )

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            F.huber_loss(Tensor([1.0]), Tensor([1.0]), delta=0.0)

    def test_huber_less_sensitive_to_outliers_than_mse(self):
        prediction = Tensor([0.0, 0.0, 0.0, 100.0])
        target = Tensor(np.zeros(4))
        huber = F.huber_loss(prediction, target, delta=1.0).item()
        mse = F.mse_loss(prediction, target).item()
        assert huber < mse


class TestDropout:
    def test_dropout_eval_mode_is_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_zero_p_is_identity(self, rng):
        x = Tensor(np.ones(10))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones(200_000))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, rng)

    def test_alpha_dropout_preserves_mean_and_variance(self, rng):
        x = Tensor(rng.normal(size=500_000))
        out = F.alpha_dropout(x, 0.2, rng, training=True)
        assert abs(out.data.mean()) < 0.02
        assert abs(out.data.std() - 1.0) < 0.02

    def test_alpha_dropout_sets_dropped_to_saturation(self, rng):
        x = Tensor(np.full(10_000, 5.0))
        out = F.alpha_dropout(x, 0.5, rng, training=True)
        # Two distinct output levels: kept (affine of 5) and dropped (affine
        # of alpha').
        assert len(np.unique(np.round(out.data, 9))) == 2

    def test_alpha_dropout_eval_identity(self, rng):
        x = Tensor(np.ones(5))
        assert F.alpha_dropout(x, 0.3, rng, training=False) is x

    def test_alpha_dropout_gradient_flows_through_kept_units(self, rng):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.alpha_dropout(x, 0.4, rng, training=True)
        out.sum().backward()
        # Dropped positions contribute zero gradient, kept ones a constant.
        unique = np.unique(np.round(x.grad, 12))
        assert len(unique) == 2
        assert 0.0 in unique


class TestLinearAndNormalize:
    def test_linear_matches_manual(self):
        x = np.array([[1.0, 2.0]])
        w = np.array([[3.0, 4.0], [5.0, 6.0]])
        b = np.array([0.5, -0.5])
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b)

    def test_linear_no_bias(self):
        x = np.ones((2, 3))
        w = np.ones((4, 3))
        out = F.linear(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, np.full((2, 4), 3.0))

    def test_linear_gradient(self):
        x = np.random.default_rng(0).normal(size=(3, 2))
        w = np.random.default_rng(1).normal(size=(4, 2))
        b = np.zeros(4)
        assert gradcheck(
            lambda ts: (F.linear(ts[0], ts[1], ts[2]) ** 2).sum(), [x, w, b]
        )

    def test_normalize_unit_sphere(self):
        x = np.array([[3.0, 4.0], [1.0, 0.0]])
        out = F.normalize_unit_sphere(Tensor(x))
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), [1.0, 1.0])

    def test_normalize_gradient(self):
        x = np.array([[1.0, 2.0, 2.0]])
        assert gradcheck(
            lambda ts: (F.normalize_unit_sphere(ts[0]) * np.array([1.0, 2.0, 3.0])).sum(),
            [x],
        )
