"""Batched multi-group kernels vs their serial per-group equivalents.

Every comparison is **bitwise** (``np.array_equal``), not approximate: the
batched substrate's contract is that stacking N groups into one fused pass
changes nothing about any group's numbers — same kernels, same reduction
orders, same RNG streams per group slot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.batched import (
    BatchedAdam,
    BatchedAdamW,
    GroupProgress,
    alpha_dropout_batched,
    group_mean,
    group_sum,
    huber_loss_batched,
    linear_act_batched,
    mse_loss_batched,
)
from repro.nn.module import Parameter
from repro.nn.optim import Adam, AdamW
from repro.nn.tensor import Tensor


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


# --------------------------------------------------------------------- #
# Group reductions
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("counts", [None, [3, 5, 4]])
def test_group_sum_matches_per_group_serial(counts):
    data = _rng(1).normal(size=(3, 5, 2))
    if counts is not None:
        for g, n in enumerate(counts):
            data[g, n:] = 0.0
    x = Tensor(data.copy(), requires_grad=True)
    out = group_sum(x, counts=None if counts is None else np.asarray(counts, float))
    for g in range(3):
        block = data[g] if counts is None else data[g, : counts[g]]
        serial = Tensor(block.copy(), requires_grad=True).sum()
        assert out.data[g] == serial.data

    out.backward(np.array([1.0, 2.0, 3.0]))
    for g, w in enumerate([1.0, 2.0, 3.0]):
        valid = slice(None) if counts is None else slice(0, counts[g])
        assert np.array_equal(x.grad[g, valid], np.full_like(data[g, valid], w))
        if counts is not None:
            assert np.all(x.grad[g, counts[g]:] == 0.0)


@pytest.mark.parametrize("counts", [None, [4, 2, 6]])
def test_group_mean_matches_serial_mean_decomposition(counts):
    data = _rng(2).normal(size=(3, 6))
    if counts is not None:
        for g, n in enumerate(counts):
            data[g, n:] = 0.0
    x = Tensor(data.copy(), requires_grad=True)
    out = group_mean(x, counts=None if counts is None else np.asarray(counts, float))
    for g in range(3):
        block = data[g] if counts is None else data[g, : counts[g]]
        serial = Tensor(block.copy(), requires_grad=True).mean()
        assert out.data[g] == serial.data  # bitwise: sum * (1/n), not /n


def test_mse_loss_batched_matches_serial_mse():
    rng = _rng(3)
    counts = [2, 4, 3]
    pred = rng.normal(size=(3, 4))
    target = rng.normal(size=(3, 4))
    for g, n in enumerate(counts):
        pred[g, n:] = 0.0
        target[g, n:] = 0.0
    p = Tensor(pred.copy(), requires_grad=True)
    out = mse_loss_batched(p, Tensor(target.copy()), counts=np.asarray(counts, float))
    for g, n in enumerate(counts):
        ps = Tensor(pred[g, :n].copy(), requires_grad=True)
        serial = F.mse_loss(ps, Tensor(target[g, :n].copy()))
        serial.backward()
        assert out.data[g] == serial.data
    out.backward(np.ones(3))
    for g, n in enumerate(counts):
        ps = Tensor(pred[g, :n].copy(), requires_grad=True)
        F.mse_loss(ps, Tensor(target[g, :n].copy())).backward()
        assert np.array_equal(p.grad[g, :n], ps.grad)
        assert np.all(p.grad[g, n:] == 0.0)


# --------------------------------------------------------------------- #
# Fused linear + activation, Huber
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("counts", [None, [2, 5, 3]])
def test_linear_act_batched_matches_serial_linear_act(counts):
    rng = _rng(4)
    n_groups, width, n_in, n_out = 3, 5, 7, 4
    x_data = rng.normal(size=(n_groups, width, n_in))
    w_data = rng.normal(size=(n_groups, n_out, n_in))
    b_data = rng.normal(size=(n_groups, n_out))
    if counts is not None:
        for g, n in enumerate(counts):
            x_data[g, n:] = 0.0
    x = Tensor(x_data.copy(), requires_grad=True)
    w = Tensor(w_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    out = linear_act_batched(
        x, w, b, activation="selu",
        counts=None if counts is None else np.asarray(counts, float),
    )
    out.backward(np.ones_like(out.data))
    for g in range(n_groups):
        n = width if counts is None else counts[g]
        xs = Tensor(x_data[g, :n].copy(), requires_grad=True)
        ws = Tensor(w_data[g].copy(), requires_grad=True)
        bs = Tensor(b_data[g].copy(), requires_grad=True)
        serial = F.linear_act(xs, ws, bs, activation="selu")
        serial.backward(np.ones_like(serial.data))
        assert np.array_equal(out.data[g, :n], serial.data)
        assert np.array_equal(x.grad[g, :n], xs.grad)
        assert np.array_equal(w.grad[g], ws.grad)
        assert np.array_equal(b.grad[g], bs.grad)
        if counts is not None:
            assert np.all(out.data[g, n:] == 0.0)
            assert np.all(x.grad[g, n:] == 0.0)


@pytest.mark.parametrize("counts", [None, [3, 6, 2]])
def test_huber_loss_batched_matches_serial_per_group(counts):
    rng = _rng(5)
    deltas = np.array([0.5, 1.0, 2.0])
    pred = rng.normal(size=(3, 6)) * 2.0
    target = rng.normal(size=(3, 6)) * 2.0
    if counts is not None:
        for g, n in enumerate(counts):
            pred[g, n:] = 0.0
            target[g, n:] = 0.0
    p = Tensor(pred.copy(), requires_grad=True)
    out = huber_loss_batched(
        p, Tensor(target.copy()), delta=deltas,
        counts=None if counts is None else np.asarray(counts, float),
    )
    out.backward(np.ones(3))
    for g in range(3):
        n = 6 if counts is None else counts[g]
        ps = Tensor(pred[g, :n].copy(), requires_grad=True)
        serial = F.huber_loss(ps, Tensor(target[g, :n].copy()), delta=float(deltas[g]))
        serial.backward()
        assert out.data[g] == serial.data
        assert np.array_equal(p.grad[g, :n], ps.grad)
        if counts is not None:
            assert np.all(p.grad[g, n:] == 0.0)


# --------------------------------------------------------------------- #
# Per-group dropout RNG streams
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("counts", [None, [2, 4, 3]])
def test_alpha_dropout_replays_each_groups_serial_mask_stream(counts):
    """Group g's mask draws must equal a serial layer advancing rngs[g]."""
    rng = _rng(6)
    ps = [0.1, 0.0, 0.3]
    shape = (3, 4, 5)
    steps = 3
    batched_rngs = [np.random.default_rng(100 + g) for g in range(3)]
    serial_rngs = [np.random.default_rng(100 + g) for g in range(3)]
    for _ in range(steps):
        x_data = rng.normal(size=shape)
        if counts is not None:
            for g, n in enumerate(counts):
                x_data[g, n:] = 0.0
        out = alpha_dropout_batched(
            Tensor(x_data.copy()), ps, batched_rngs, training=True,
            counts=None if counts is None else np.asarray(counts, float),
        )
        for g in range(3):
            n = shape[1] if counts is None else counts[g]
            serial = F.alpha_dropout(
                Tensor(x_data[g, :n].copy()), ps[g], serial_rngs[g], training=True
            )
            assert np.array_equal(out.data[g, :n], serial.data)
    # The streams stayed in lockstep across all steps.
    for g in range(3):
        assert batched_rngs[g].random() == serial_rngs[g].random()


def test_alpha_dropout_eval_mode_is_identity_and_draws_nothing():
    rngs = [np.random.default_rng(7) for _ in range(2)]
    x = Tensor(_rng(8).normal(size=(2, 3, 4)))
    out = alpha_dropout_batched(x, [0.5, 0.5], rngs, training=False)
    assert np.array_equal(out.data, x.data)
    assert rngs[0].random() == np.random.default_rng(7).random()


# --------------------------------------------------------------------- #
# Batched optimizers
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "batched_cls,serial_cls", [(BatchedAdam, Adam), (BatchedAdamW, AdamW)]
)
def test_batched_adam_matches_serial_per_group(batched_cls, serial_cls):
    """Mixed per-group lr/decay steps == N serial optimizers, bitwise."""
    rng = _rng(9)
    n_groups, shape = 3, (4, 2)
    lrs = np.array([1e-3, 5e-3, 1e-2])
    decays = np.array([0.0, 1e-4, 1e-3])
    data = rng.normal(size=(n_groups,) + shape)
    stacked = Parameter(data.copy())
    serial_params = [Parameter(data[g].copy()) for g in range(n_groups)]
    batched = batched_cls(
        [stacked], n_groups, lr=lrs.copy(), weight_decay=decays.copy()
    )
    serial = [
        serial_cls([serial_params[g]], lr=float(lrs[g]), weight_decay=float(decays[g]))
        for g in range(n_groups)
    ]
    mask = np.array([True, True, True])
    for step in range(5):
        grad = rng.normal(size=(n_groups,) + shape)
        if step == 3:
            mask = np.array([True, False, True])  # group 1 sits this one out
        stacked.grad = grad.copy()
        batched.step([mask])
        for g in range(n_groups):
            if not mask[g]:
                continue
            serial_params[g].grad = grad[g].copy()
            serial[g].step()
            serial_params[g].grad = None
        stacked.grad = None
        for g in range(n_groups):
            assert np.array_equal(stacked.data[g], serial_params[g].data)


# --------------------------------------------------------------------- #
# Per-group early stopping
# --------------------------------------------------------------------- #


def test_group_progress_per_group_monitors_and_stop_reasons():
    progress = GroupProgress(
        2,
        monitor=["val_mae", "mae"],
        targets=[None, 1.0],
        patiences=[1, None],
        max_epochs=[10, 10],
    )
    progress.record(0, 0, {"val_mae": 5.0, "mae": 9.0})
    progress.check_stop(0, 0, {"val_mae": 5.0, "mae": 9.0})
    progress.record(0, 1, {"val_mae": 6.0, "mae": 1.0})  # no improvement
    progress.check_stop(0, 1, {"val_mae": 6.0, "mae": 1.0})
    assert not progress.active[0] and progress.stop_reason[0] == "patience"
    assert progress.best_metric[0] == 5.0  # monitored val_mae, not mae

    progress.record(1, 0, {"mae": 0.5})
    progress.check_stop(1, 0, {"mae": 0.5})
    assert not progress.active[1] and progress.stop_reason[1] == "target"
    assert not progress.any_active
