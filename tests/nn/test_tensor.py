"""Unit and property tests of the autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import (
    Tensor,
    cat,
    is_grad_enabled,
    maximum,
    no_grad,
    stack,
    tensor,
    where,
    zeros,
)
from repro.nn.gradcheck import gradcheck


def small_arrays(shape=(3, 4)):
    """Hypothesis strategy: well-conditioned float arrays."""
    return hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == 3.5

    def test_item_on_vector_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad

    def test_numpy_returns_copy(self):
        a = Tensor([1.0, 2.0])
        view = a.numpy()
        view[0] = 99.0
        assert a.data[0] == 1.0

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([[1.0], [2.0], [3.0]])) == 3


class TestBackwardMechanics:
    def test_backward_scalar_only_without_grad(self):
        t = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        (a * 3.0).sum().backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_zero_grad(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_grad_shape_mismatch_raises(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones((3,)))

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = a*a + a*a has gradient 4a.
        a = Tensor([3.0], requires_grad=True)
        b = a * a
        (b + b).sum().backward()
        assert a.grad[0] == pytest.approx(12.0)

    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()


class TestArithmeticGradients:
    @given(small_arrays(), small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_add_matches_numeric(self, a, b):
        assert gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    @given(small_arrays(), small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_mul_matches_numeric(self, a, b):
        assert gradcheck(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    @given(small_arrays(), small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_sub_matches_numeric(self, a, b):
        assert gradcheck(lambda ts: (ts[0] - ts[1]).sum(), [a, b])

    def test_div_gradient(self):
        a = np.array([[1.0, -2.0], [0.5, 3.0]])
        b = np.array([[2.0, 4.0], [8.0, 1.5]])
        assert gradcheck(lambda ts: (ts[0] / ts[1]).sum(), [a, b])

    def test_pow_gradient(self):
        a = np.array([1.5, 2.0, 0.3])
        assert gradcheck(lambda ts: (ts[0] ** 3).sum(), [a])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_neg_gradient(self):
        assert gradcheck(lambda ts: (-ts[0]).sum(), [np.array([1.0, -2.0])])

    def test_radd_rsub_rmul_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        out = (3.0 + a) * 2.0
        out = (10.0 - out) / 2.0
        out = (8.0 / a) + out
        out.sum().backward()
        # d/da [ (10 - 2(3+a))/2 + 8/a ] = -1 - 8/a^2 = -1 - 2 = -3
        assert a.grad[0] == pytest.approx(-3.0)

    def test_broadcasting_row_vector(self):
        a = np.ones((3, 4))
        b = np.arange(4.0)
        assert gradcheck(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_broadcasting_column_vector(self):
        a = np.ones((3, 4))
        b = np.arange(3.0).reshape(3, 1)
        assert gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_broadcast_scalar_constant(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))


class TestMatmulGradients:
    @given(
        hnp.arrays(np.float64, (3, 4), elements=st.floats(-2, 2)),
        hnp.arrays(np.float64, (4, 2), elements=st.floats(-2, 2)),
    )
    @settings(max_examples=20, deadline=None)
    def test_2d_matmul(self, a, b):
        assert gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_vector_matrix(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.arange(6.0).reshape(3, 2)
        assert gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matrix_vector(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.array([1.0, -1.0, 0.5])
        assert gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.ones((2, 2, 2))) @ Tensor(np.ones((2, 2)))

    def test_matmul_values(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        np.testing.assert_allclose((a @ b).data, [[11.0]])


class TestTranscendentalGradients:
    def test_exp(self):
        assert gradcheck(lambda ts: ts[0].exp().sum(), [np.array([0.0, 1.0, -1.0])])

    def test_log(self):
        assert gradcheck(lambda ts: ts[0].log().sum(), [np.array([0.5, 1.0, 3.0])])

    def test_sqrt(self):
        assert gradcheck(lambda ts: ts[0].sqrt().sum(), [np.array([0.5, 1.0, 4.0])])

    def test_tanh(self):
        assert gradcheck(lambda ts: ts[0].tanh().sum(), [np.array([-2.0, 0.1, 2.0])])

    def test_sigmoid(self):
        assert gradcheck(lambda ts: ts[0].sigmoid().sum(), [np.array([-2.0, 0.1, 2.0])])

    def test_abs_away_from_zero(self):
        assert gradcheck(lambda ts: ts[0].abs().sum(), [np.array([-2.0, 0.5, 3.0])])


class TestReductionsAndShapes:
    def test_sum_all(self):
        assert gradcheck(lambda ts: ts[0].sum(), [np.arange(6.0).reshape(2, 3)])

    def test_sum_axis0(self):
        assert gradcheck(
            lambda ts: (ts[0].sum(axis=0) ** 2).sum(), [np.arange(6.0).reshape(2, 3)]
        )

    def test_sum_axis1_keepdims(self):
        assert gradcheck(
            lambda ts: (ts[0].sum(axis=1, keepdims=True) ** 2).sum(),
            [np.arange(6.0).reshape(2, 3)],
        )

    def test_mean_all(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        assert gradcheck(
            lambda ts: (ts[0].mean(axis=1) ** 2).sum(), [np.arange(6.0).reshape(2, 3)]
        )

    def test_mean_middle_axis_3d(self):
        a = np.arange(24.0).reshape(2, 3, 4)
        assert gradcheck(lambda ts: (ts[0].mean(axis=1) ** 2).sum(), [a])

    def test_max_gradient_unique(self):
        a = np.array([1.0, 5.0, 3.0])
        assert gradcheck(lambda ts: ts[0].max(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_reshape(self):
        assert gradcheck(
            lambda ts: (ts[0].reshape(3, 2) ** 2).sum(), [np.arange(6.0).reshape(2, 3)]
        )

    def test_reshape_tuple_arg(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape((2, 3)).shape == (2, 3)

    def test_transpose_default(self):
        assert gradcheck(
            lambda ts: (ts[0].T ** 2).sum(), [np.arange(6.0).reshape(2, 3)]
        )

    def test_transpose_axes(self):
        a = np.arange(24.0).reshape(2, 3, 4)
        assert gradcheck(
            lambda ts: (ts[0].transpose((2, 0, 1)) ** 2).sum(), [a]
        )

    def test_getitem_slice(self):
        a = np.arange(12.0).reshape(3, 4)
        assert gradcheck(lambda ts: (ts[0][1:, :2] ** 2).sum(), [a])

    def test_getitem_3d_component_slice(self):
        a = np.arange(24.0).reshape(2, 3, 4)
        assert gradcheck(lambda ts: (ts[0][:, :2, :] ** 2).sum(), [a])


class TestFreeFunctions:
    def test_where_gradient(self):
        a = np.array([1.0, -2.0, 3.0])
        b = np.array([4.0, 5.0, -6.0])
        cond = np.array([True, False, True])
        assert gradcheck(lambda ts: where(cond, ts[0], ts[1]).sum(), [a, b])

    def test_maximum_gradient(self):
        a = np.array([1.0, 5.0])
        b = np.array([2.0, 3.0])
        assert gradcheck(lambda ts: maximum(ts[0], ts[1]).sum(), [a, b])

    def test_maximum_tie_splits(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        maximum(a, b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_cat_axis0(self):
        a = np.ones((2, 3))
        b = np.full((1, 3), 2.0)
        assert gradcheck(lambda ts: (cat(ts, axis=0) ** 2).sum(), [a, b])

    def test_cat_axis1(self):
        a = np.ones((2, 2))
        b = np.full((2, 3), 2.0)
        assert gradcheck(lambda ts: (cat(ts, axis=1) ** 2).sum(), [a, b])

    def test_cat_empty_raises(self):
        with pytest.raises(ValueError):
            cat([])

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out**2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))

    def test_constructors(self):
        assert zeros(2, 3).shape == (2, 3)
        assert tensor([1.0]).data[0] == 1.0
