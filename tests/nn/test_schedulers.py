"""Tests of the learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    CyclicLR,
    StepLR,
)


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestConstantAndStep:
    def test_constant(self):
        sched = ConstantLR(make_optimizer(0.05))
        assert [sched.step() for _ in range(3)] == [0.05, 0.05, 0.05]

    def test_step_decay(self):
        sched = StepLR(make_optimizer(1.0), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        np.testing.assert_allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01])

    def test_step_writes_to_optimizer(self):
        opt = make_optimizer(1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=1, gamma=0.0)


class TestCosine:
    def test_endpoints(self):
        sched = CosineAnnealingLR(make_optimizer(1.0), t_max=10, eta_min=0.1)
        first = sched.step()
        for _ in range(10):
            last = sched.step()
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(0.1)

    def test_monotone_decrease(self):
        sched = CosineAnnealingLR(make_optimizer(1.0), t_max=20)
        lrs = [sched.step() for _ in range(21)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))


class TestCyclic:
    def test_range_respected(self):
        sched = CyclicLR(make_optimizer(), min_lr=1e-3, max_lr=1e-2, cycle_length=10)
        lrs = [sched.step() for _ in range(50)]
        assert min(lrs) >= 1e-3 - 1e-12
        assert max(lrs) <= 1e-2 + 1e-12

    def test_peak_at_mid_cycle(self):
        sched = CyclicLR(
            make_optimizer(), min_lr=1e-3, max_lr=1e-2, cycle_length=10, mode="triangular"
        )
        lrs = [sched.step() for _ in range(10)]
        assert np.argmax(lrs) == 5
        assert lrs[5] == pytest.approx(1e-2)

    def test_starts_at_min(self):
        sched = CyclicLR(make_optimizer(), min_lr=1e-3, max_lr=1e-2, cycle_length=10)
        assert sched.step() == pytest.approx(1e-3)

    def test_triangular2_amplitude_halves_per_cycle(self):
        sched = CyclicLR(
            make_optimizer(), min_lr=1e-3, max_lr=1e-2, cycle_length=4, mode="triangular2"
        )
        lrs = [sched.step() for _ in range(12)]
        peak0 = max(lrs[0:4])
        peak1 = max(lrs[4:8])
        peak2 = max(lrs[8:12])
        assert (peak0 - 1e-3) == pytest.approx(2 * (peak1 - 1e-3))
        assert (peak1 - 1e-3) == pytest.approx(2 * (peak2 - 1e-3))

    def test_triangular_repeats(self):
        sched = CyclicLR(
            make_optimizer(), min_lr=1e-3, max_lr=1e-2, cycle_length=6, mode="triangular"
        )
        lrs = [sched.step() for _ in range(12)]
        np.testing.assert_allclose(lrs[:6], lrs[6:])

    def test_validation(self):
        with pytest.raises(ValueError):
            CyclicLR(make_optimizer(), min_lr=0.0, max_lr=0.01)
        with pytest.raises(ValueError):
            CyclicLR(make_optimizer(), min_lr=0.01, max_lr=0.001)
        with pytest.raises(ValueError):
            CyclicLR(make_optimizer(), cycle_length=1)
        with pytest.raises(ValueError):
            CyclicLR(make_optimizer(), mode="sawtooth")
