"""The fault injector: deterministic schedules, windows, kinds, activation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.resilience import (
    SITE_ONLINE_REFRESH,
    SITE_SERVE_PREDICT,
    SITE_STORE_COMMIT,
    SITE_STORE_LOCK,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience import faults as faults_module
from repro.resilience.faults import corrupt_point, fault_point


def _raise_plan(**spec_kwargs) -> FaultPlan:
    return FaultPlan(seed=0, specs=(FaultSpec(site=SITE_STORE_COMMIT, **spec_kwargs),))


# --------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------- #


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="site"):
        FaultSpec(site="nonexistent.site")


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec(site=SITE_STORE_COMMIT, kind="explode")


def test_bad_probability_rejected():
    with pytest.raises(ValueError, match="probability"):
        FaultSpec(site=SITE_STORE_COMMIT, probability=1.5)


def test_bad_window_rejected():
    with pytest.raises(ValueError, match="stop"):
        FaultSpec(site=SITE_STORE_COMMIT, start=5, stop=2)


def test_all_sites_are_instrumentable():
    assert set(SITES) == {
        "store.commit",
        "store.lock",
        "store.index",
        "executor.task",
        "online.refresh",
        "serve.predict",
        "fleet.worker",
    }


# --------------------------------------------------------------------- #
# Schedules: windows, caps, probability, determinism
# --------------------------------------------------------------------- #


def test_window_controls_which_calls_fire():
    injector = FaultInjector(_raise_plan(kind="raise", start=2, stop=4))
    outcomes = []
    for _ in range(6):
        try:
            injector.fire(SITE_STORE_COMMIT)
            outcomes.append("ok")
        except InjectedFault:
            outcomes.append("boom")
    assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]


def test_max_fires_caps_the_outage():
    injector = FaultInjector(_raise_plan(kind="raise", max_fires=2))
    fired = 0
    for _ in range(5):
        try:
            injector.fire(SITE_STORE_COMMIT)
        except InjectedFault:
            fired += 1
    assert fired == 2
    assert injector.exhausted()
    assert injector.fired()[SITE_STORE_COMMIT] == 2


def test_probability_schedule_is_seed_deterministic():
    def run(seed: int) -> list:
        plan = FaultPlan(
            seed=seed,
            specs=(FaultSpec(site=SITE_STORE_COMMIT, kind="raise", probability=0.5),),
        )
        injector = FaultInjector(plan)
        pattern = []
        for _ in range(20):
            try:
                injector.fire(SITE_STORE_COMMIT)
                pattern.append(0)
            except InjectedFault:
                pattern.append(1)
        return pattern

    assert run(0) == run(0)
    assert run(0) != run(1)  # a different seed reshuffles the schedule
    assert 0 < sum(run(0)) < 20  # and p=0.5 actually mixes outcomes


def test_custom_exception_type_is_raised():
    class StorageDown(OSError):
        pass

    injector = FaultInjector(
        _raise_plan(kind="raise", exception=StorageDown, message="disk gone")
    )
    with pytest.raises(StorageDown, match="disk gone"):
        injector.fire(SITE_STORE_COMMIT)


def test_delay_faults_sleep_injected_clock():
    naps = []
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(site=SITE_STORE_LOCK, kind="delay", delay_s=0.25, max_fires=2),
        ),
    )
    injector = FaultInjector(plan, sleep=naps.append)
    for _ in range(4):
        injector.fire(SITE_STORE_LOCK)
    assert naps == [0.25, 0.25]


# --------------------------------------------------------------------- #
# Corruption
# --------------------------------------------------------------------- #


def test_corrupt_doubles_arrays_and_reverses_strings():
    plan = FaultPlan(
        seed=0, specs=(FaultSpec(site=SITE_SERVE_PREDICT, kind="corrupt"),)
    )
    injector = FaultInjector(plan)
    np.testing.assert_array_equal(
        injector.corrupt(SITE_SERVE_PREDICT, np.array([1.0, 2.0])),
        np.array([2.0, 4.0]),
    )
    assert injector.corrupt(SITE_SERVE_PREDICT, "abc") == "cba"


def test_corrupt_passthrough_when_no_corrupt_spec():
    injector = FaultInjector(_raise_plan(kind="raise", max_fires=1))
    value = np.array([3.0])
    assert injector.corrupt(SITE_SERVE_PREDICT, value) is value


def test_raise_and_corrupt_specs_share_one_site_clock():
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(site=SITE_SERVE_PREDICT, kind="raise", start=0, stop=1),
            FaultSpec(site=SITE_SERVE_PREDICT, kind="corrupt", start=1, stop=2),
        ),
    )
    injector = FaultInjector(plan)
    with pytest.raises(InjectedFault):
        injector.fire(SITE_SERVE_PREDICT)  # call 0: the raise window
    assert injector.corrupt(SITE_SERVE_PREDICT, 1.0) == 2.0  # call 1: corrupt
    assert injector.counts()[SITE_SERVE_PREDICT] == 2


# --------------------------------------------------------------------- #
# Activation: module hook, nesting, thread safety
# --------------------------------------------------------------------- #


def test_module_hook_is_none_by_default_and_points_are_noops():
    assert faults_module.ACTIVE is None
    fault_point(SITE_ONLINE_REFRESH)  # must be a no-op without an injector
    assert corrupt_point(SITE_SERVE_PREDICT, 7.0) == 7.0


def test_context_manager_installs_and_restores_the_hook():
    injector = FaultInjector(_raise_plan(kind="raise", max_fires=1))
    with injector:
        assert faults_module.ACTIVE is injector
        with pytest.raises(InjectedFault):
            fault_point(SITE_STORE_COMMIT)
    assert faults_module.ACTIVE is None


def test_activation_nests_and_restores_the_previous_injector():
    outer = FaultInjector(_raise_plan(kind="raise", max_fires=0))
    inner = FaultInjector(_raise_plan(kind="raise", max_fires=0))
    with outer:
        with inner:
            assert faults_module.ACTIVE is inner
        assert faults_module.ACTIVE is outer
    assert faults_module.ACTIVE is None


def test_concurrent_fires_keep_exact_counts():
    plan = _raise_plan(kind="raise", probability=0.5)
    injector = FaultInjector(plan)

    def worker():
        for _ in range(100):
            try:
                injector.fire(SITE_STORE_COMMIT)
            except InjectedFault:
                pass

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert injector.counts()[SITE_STORE_COMMIT] == 400
