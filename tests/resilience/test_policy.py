"""Retry, deadline, and circuit-breaker policies: the lifecycle contracts."""

from __future__ import annotations

import pytest

from repro.resilience import (
    BreakerOpenError,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #


def test_retry_succeeds_after_transient_failures():
    naps = []
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0, sleep=naps.append)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise ConnectionError("transient")
        return "ok"

    assert policy.call(flaky) == "ok"
    assert len(attempts) == 3
    assert naps == pytest.approx([0.1, 0.2])  # exponential backoff


def test_retry_reraises_the_original_exception():
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, sleep=lambda _: None)

    class StoreBroken(OSError):
        pass

    with pytest.raises(StoreBroken, match="permanent"):
        policy.call(lambda: (_ for _ in ()).throw(StoreBroken("permanent")))


def test_retry_only_catches_configured_exceptions():
    policy = RetryPolicy(
        max_attempts=3, base_delay_s=0.0, retry_on=(ConnectionError,),
        sleep=lambda _: None,
    )
    attempts = []

    def wrong_kind():
        attempts.append(1)
        raise ValueError("not retryable")

    with pytest.raises(ValueError):
        policy.call(wrong_kind)
    assert len(attempts) == 1  # no retry burned on a non-matching error


def test_retry_delays_are_seeded_and_capped():
    policy = RetryPolicy(
        max_attempts=5, base_delay_s=0.1, multiplier=10.0, max_delay_s=1.0,
        jitter=0.5, seed=42,
    )
    first = policy.delays()
    second = policy.delays()
    assert first == second  # same seed, same schedule
    assert all(delay <= 1.0 * 1.5 for delay in first)  # cap + jitter bound
    assert RetryPolicy(seed=1).delays() != RetryPolicy(seed=2).delays()


def test_retry_stops_when_deadline_burns_out_mid_retry():
    clock = FakeClock()
    deadline = Deadline(0.5, clock=clock)
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.0, sleep=lambda _: None)
    attempts = []

    def failing():
        attempts.append(1)
        clock.advance(0.3)
        raise ConnectionError("down")

    # The budget covers two attempts; the policy then re-raises the last
    # *original* error instead of burning all five attempts.
    with pytest.raises(ConnectionError):
        policy.call(failing, deadline=deadline)
    assert len(attempts) == 2


def test_retry_refuses_an_already_expired_deadline():
    clock = FakeClock()
    deadline = Deadline(0.5, clock=clock)
    clock.advance(1.0)
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=lambda _: None)
    with pytest.raises(DeadlineExceeded):
        policy.call(lambda: "never runs", deadline=deadline)


def test_retry_on_retry_callback_sees_each_failure():
    seen = []
    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, sleep=lambda _: None)

    def flaky():
        if len(seen) < 2:
            raise ConnectionError("again")
        return 7

    assert policy.call(flaky, on_retry=lambda a, e: seen.append((a, str(e)))) == 7
    assert [attempt for attempt, _ in seen] == [0, 1]  # 0-based attempt index


# --------------------------------------------------------------------- #
# Deadline
# --------------------------------------------------------------------- #


def test_deadline_remaining_counts_down():
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock)
    assert deadline.remaining() == pytest.approx(2.0)
    clock.advance(1.5)
    assert deadline.remaining() == pytest.approx(0.5)
    assert not deadline.expired
    clock.advance(1.0)
    assert deadline.remaining() == 0.0
    assert deadline.expired


def test_deadline_check_raises_with_label():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    deadline.check("early")  # within budget: no raise
    clock.advance(2.0)
    with pytest.raises(DeadlineExceeded, match="named-model"):
        deadline.check("named-model predict")


# --------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------- #


def test_breaker_opens_after_threshold_failures():
    breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()


def test_breaker_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # streak broken, never opened


def test_breaker_half_open_allows_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=10.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()  # open, reset window not elapsed
    clock.advance(11.0)
    assert breaker.allow()  # the half-open probe
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert not breaker.allow()  # second caller must wait for the verdict


def test_breaker_probe_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=0.0, clock=clock)
    breaker.record_failure()
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_breaker_probe_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=5.0, clock=clock)
    breaker.record_failure()
    clock.advance(6.0)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()  # fresh reset window
    clock.advance(6.0)
    assert breaker.allow()  # ... which elapses again


def test_breaker_call_wraps_the_lifecycle():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_after_s=60.0, clock=clock)
    with pytest.raises(ConnectionError):
        breaker.call(lambda: (_ for _ in ()).throw(ConnectionError("down")))
    with pytest.raises(BreakerOpenError):
        breaker.call(lambda: "never runs")
    clock.advance(61.0)
    assert breaker.call(lambda: "recovered") == "recovered"
    assert breaker.state == CircuitBreaker.CLOSED
