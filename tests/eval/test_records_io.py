"""Tests for evaluation-record persistence (repro.eval.records_io)."""

from __future__ import annotations

import json

import pytest

from repro.eval.protocol import EvaluationRecord
from repro.eval.records_io import FORMAT_VERSION, load_records, save_records
from repro.eval.reporting import render_mae_bars


def make_records(n: int = 6) -> list:
    return [
        EvaluationRecord(
            method="NNLS" if i % 2 else "Bellamy (full)",
            algorithm="sgd",
            context_id=f"ctx-{i % 3}",
            n_train=i % 4,
            task="interpolation" if i % 2 else "extrapolation",
            actual_s=100.0 + i,
            predicted_s=90.0 + 2 * i,
            fit_seconds=0.01 * i,
            epochs_trained=10 * i,
            split_index=i,
        )
        for i in range(n)
    ]


class TestRoundTrip:
    def test_identity(self, tmp_path):
        records = make_records()
        path = tmp_path / "records.json"
        save_records(path, records)
        loaded = load_records(path)
        assert loaded == records

    def test_empty_list(self, tmp_path):
        path = tmp_path / "empty.json"
        save_records(path, [])
        assert load_records(path) == []

    def test_parent_directories_created(self, tmp_path):
        path = tmp_path / "a" / "b" / "records.json"
        save_records(path, make_records(2))
        assert len(load_records(path)) == 2

    def test_loaded_records_render(self, tmp_path):
        path = tmp_path / "records.json"
        save_records(path, make_records())
        text = render_mae_bars(load_records(path))
        assert "sgd" in text

    def test_derived_properties_survive(self, tmp_path):
        path = tmp_path / "records.json"
        save_records(path, make_records(1))
        record = load_records(path)[0]
        assert record.absolute_error == pytest.approx(10.0)


class TestValidation:
    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro evaluation-records"):
            load_records(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-evaluation-records",
                    "version": FORMAT_VERSION + 1,
                    "records": [],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="format version"):
            load_records(path)

    def test_rejects_list_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_records(path)
