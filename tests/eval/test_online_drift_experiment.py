"""The online-drift experiment: stale vs refreshed across drift families."""

from __future__ import annotations

import pytest

from repro.eval.experiments import run_online_drift_experiment
from repro.simulator import DRIFT_KINDS


@pytest.fixture(scope="module")
def result():
    return run_online_drift_experiment(seed=0)


def test_covers_every_drift_kind(result):
    assert tuple(record.kind for record in result.records) == DRIFT_KINDS
    assert result.wall_seconds > 0


def test_mean_shifts_are_refreshed_and_improve(result):
    by_kind = {record.kind: record for record in result.records}
    for kind in ("slope", "step"):
        record = by_kind[kind]
        assert record.refreshes >= 1, f"{kind} never refreshed"
        assert record.first_flag_at > 0
        assert record.refreshed_mre < record.stale_mre
        assert record.improvement > 0.1  # a big drift, a big win
    # The step drift ends far off the training distribution; the refreshed
    # model should land close to the post-drift law.
    assert by_kind["step"].refreshed_mre < 0.1


def test_noise_burst_does_not_trigger_refresh(result):
    record = {r.kind: r for r in result.records}["noise-burst"]
    assert record.refreshes == 0
    assert record.first_flag_at == 0
    assert record.refreshed_mre == record.stale_mre  # nothing swapped


def test_experiment_is_deterministic(result):
    again = run_online_drift_experiment(seed=0)
    assert [
        (r.kind, r.refreshes, r.stale_mre, r.refreshed_mre) for r in again.records
    ] == [
        (r.kind, r.refreshes, r.stale_mre, r.refreshed_mre) for r in result.records
    ]
