"""Determinism of the parallel experiment executor.

The guarantee: for every experiment runner, a process-pool run produces the
exact same records — methods, targets, predictions, seeds-derived splits,
epochs — as the serial run, because every work unit derives its randomness
from per-unit seeds. Only wall-clock diagnostics may differ.
"""

from __future__ import annotations

import pytest

from repro.data import generate_bell_dataset, generate_c3o_dataset
from repro.eval.parallel import JOBS_ENV, experiment_map, jobs_from_env, resolve_jobs
from repro.eval.experiments import (
    run_ablation_experiment,
    run_cross_context_experiment,
    run_cross_environment_experiment,
)
from repro.eval.experiments.common import SMOKE_SCALE


def record_key(record):
    """Everything except wall-clock diagnostics (fit_seconds)."""
    return (
        record.method,
        record.algorithm,
        record.context_id,
        record.n_train,
        record.task,
        record.actual_s,
        record.predicted_s,
        record.epochs_trained,
        record.split_index,
    )


@pytest.fixture(scope="module")
def c3o():
    return generate_c3o_dataset(seed=0)


@pytest.fixture(scope="module")
def bell():
    return generate_bell_dataset(seed=0)


class TestJobsKnob:
    def test_env_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert jobs_from_env() is None
        assert resolve_jobs(None, n_tasks=10) == 1

    def test_env_sets_job_count(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert jobs_from_env() == 3
        assert resolve_jobs(None, n_tasks=10) == 3

    def test_env_garbage_is_ignored(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert jobs_from_env() is None

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs(2, n_tasks=10) == 2
        assert resolve_jobs(0, n_tasks=10) == 1  # explicit serial wins

    def test_workers_never_exceed_tasks(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(8, n_tasks=3) == 3

    def test_experiment_map_orders_results(self):
        assert experiment_map(_square, [3, 1, 2], jobs=2) == [9, 1, 4]


def _square(value):
    return value * value


class TestCrossContextDeterminism:
    def test_serial_equals_two_workers(self, c3o):
        serial = run_cross_context_experiment(
            c3o, SMOKE_SCALE, seed=0, algorithms=("grep",), n_workers=0
        )
        pooled = run_cross_context_experiment(
            c3o, SMOKE_SCALE, seed=0, algorithms=("grep",), n_workers=2
        )
        assert serial.records, "experiment produced no records"
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in pooled.records
        ]


class TestCrossEnvironmentDeterminism:
    def test_serial_equals_two_workers(self, c3o, bell):
        serial = run_cross_environment_experiment(
            c3o, bell, SMOKE_SCALE, seed=0, algorithms=("grep",), n_workers=0
        )
        pooled = run_cross_environment_experiment(
            c3o, bell, SMOKE_SCALE, seed=0, algorithms=("grep",), n_workers=2
        )
        assert serial.records, "experiment produced no records"
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in pooled.records
        ]
        assert set(serial.pretrain_seconds) == set(pooled.pretrain_seconds)


class TestCrossAlgorithmDeterminism:
    def test_serial_equals_two_workers(self, c3o):
        from repro.core.cross_algorithm import run_cross_algorithm_experiment

        serial = run_cross_algorithm_experiment(
            c3o, SMOKE_SCALE, seed=0, algorithms=("grep",), n_workers=0
        )
        pooled = run_cross_algorithm_experiment(
            c3o, SMOKE_SCALE, seed=0, algorithms=("grep",), n_workers=2
        )
        assert serial.records, "experiment produced no records"
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in pooled.records
        ]


class TestAblationDeterminism:
    def test_serial_equals_two_workers(self, c3o):
        kwargs = dict(
            scale=SMOKE_SCALE,
            seed=0,
            algorithms=("grep",),
            variants=("bellamy", "no-optional"),
        )
        serial = run_ablation_experiment(c3o, n_workers=0, **kwargs)
        pooled = run_ablation_experiment(c3o, n_workers=2, **kwargs)
        assert serial.records, "experiment produced no records"
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in pooled.records
        ]
