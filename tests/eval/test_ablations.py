"""Tests for the ablation study (eval.experiments.ablations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.finetuning import FinetuneStrategy
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.data.schema import Execution, JobContext
from repro.eval.experiments.ablations import (
    ABLATION_VARIANTS,
    get_variant,
    neutralize_context,
    neutralize_dataset,
    run_ablation_experiment,
)
from repro.eval.experiments.common import SMOKE_SCALE
from repro.eval.reporting import ablation_summary, render_ablation
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="module")
def tiny_dataset():
    """A small two-context SGD dataset for fast ablation smoke runs."""
    contexts = [c for c in generate_c3o_contexts(seed=3) if c.algorithm == "sgd"][:3]
    generator = TraceGenerator(seed=3)
    dataset = ExecutionDataset()
    for context in contexts:
        dataset.extend(generator.executions_for_context(context, (2, 4, 6, 8), 2))
    return dataset


class TestVariants:
    def test_reference_first(self):
        assert ABLATION_VARIANTS[0].name == "bellamy"

    def test_names_unique(self):
        names = [v.name for v in ABLATION_VARIANTS]
        assert len(names) == len(set(names))

    def test_get_variant(self):
        assert get_variant("no-optional").name == "no-optional"

    def test_get_variant_unknown(self):
        with pytest.raises(ValueError, match="unknown ablation variant"):
            get_variant("nope")

    def test_no_reconstruction_zeroes_weight(self):
        config = get_variant("no-reconstruction").config_transform(BellamyConfig())
        assert config.reconstruction_weight == 0.0

    def test_no_optional_disables_flag(self):
        config = get_variant("no-optional").config_transform(BellamyConfig())
        assert config.use_optional is False

    def test_code_dim_variants(self):
        assert get_variant("codes-2").config_transform(BellamyConfig()).encoding_dim == 2
        assert get_variant("codes-8").config_transform(BellamyConfig()).encoding_dim == 8

    def test_full_unfreeze_strategy(self):
        assert get_variant("full-unfreeze").strategy is FinetuneStrategy.FULL_UNFREEZE


class TestNeutralize:
    def test_neutral_context_keeps_algorithm(self):
        context = JobContext(
            algorithm="sgd",
            node_type="r4.2xlarge",
            dataset_mb=19_353,
            dataset_characteristics="dense-features",
            job_params=(("max_iterations", "100"),),
        )
        neutral = neutralize_context(context)
        assert neutral.algorithm == "sgd"
        assert neutral.node_type != context.node_type
        assert neutral.dataset_mb == 1

    def test_neutral_contexts_collapse(self):
        contexts = [c for c in generate_c3o_contexts(seed=0) if c.algorithm == "grep"][:5]
        ids = {neutralize_context(c).context_id for c in contexts}
        assert len(ids) == 1

    def test_neutral_id_regenerated(self):
        context = JobContext(
            algorithm="sgd",
            node_type="r4.2xlarge",
            dataset_mb=19_353,
            dataset_characteristics="dense-features",
        )
        neutral = neutralize_context(context)
        assert neutral.context_id != context.context_id
        assert neutral.context_id == neutral.descriptor()

    def test_neutral_optional_properties_resolve(self):
        context = JobContext(
            algorithm="kmeans",
            node_type="c5.2xlarge",
            dataset_mb=10_000,
            dataset_characteristics="overlapping",
        )
        optional = neutralize_context(context).optional_properties()
        assert all(isinstance(p, (int, str)) for p in optional)

    def test_neutralize_dataset_preserves_runtimes(self, tiny_dataset):
        neutral = neutralize_dataset(tiny_dataset)
        assert len(neutral) == len(tiny_dataset)
        np.testing.assert_array_equal(
            neutral.runtimes_array(), tiny_dataset.runtimes_array()
        )
        np.testing.assert_array_equal(
            neutral.machines_array(), tiny_dataset.machines_array()
        )

    def test_neutralize_dataset_collapses_contexts(self, tiny_dataset):
        assert len(neutralize_dataset(tiny_dataset).contexts()) == 1


class TestRunAblation:
    @pytest.fixture(scope="class")
    def result(self, tiny_dataset):
        return run_ablation_experiment(
            tiny_dataset,
            scale=SMOKE_SCALE,
            seed=0,
            algorithms=("sgd",),
            variants=("bellamy", "no-properties"),
            contexts_per_algorithm=1,
        )

    def test_produces_records_for_each_variant(self, result):
        assert set(result.variants()) == {"bellamy", "no-properties"}

    def test_records_have_both_tasks(self, result):
        tasks = {r.task for r in result.records}
        assert tasks == {"interpolation", "extrapolation"}

    def test_pretrain_seconds_recorded(self, result):
        assert result.pretrain_seconds["bellamy"] > 0.0
        assert result.pretrain_seconds["no-properties"] > 0.0

    def test_predictions_non_negative(self, result):
        assert all(r.predicted_s >= 0.0 for r in result.records)

    def test_summary_and_render(self, result):
        summary = ablation_summary(result.records)
        assert "bellamy" in summary and "no-properties" in summary
        assert np.isfinite(summary["bellamy"]["interp_mre"])
        text = render_ablation(result.records)
        assert "bellamy" in text and "no-properties" in text

    def test_unknown_variant_rejected(self, tiny_dataset):
        with pytest.raises(ValueError, match="unknown ablation variant"):
            run_ablation_experiment(
                tiny_dataset,
                scale=SMOKE_SCALE,
                algorithms=("sgd",),
                variants=("bellamy", "bogus"),
            )
