"""Tests of the evaluation protocol using a cheap stub method."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import RuntimeModel
from repro.baselines.ernest import ErnestModel
from repro.eval.protocol import (
    EvaluationRecord,
    MethodSpec,
    ProtocolConfig,
    aggregate,
    ecdf,
    evaluate_context,
    mean_absolute_error,
    mean_relative_error,
    unique_fits,
)


class OracleModel(RuntimeModel):
    """Stub: memorizes a constant and predicts it (fast, deterministic)."""

    name = "oracle"
    min_train_points = 1

    def fit(self, machines, runtimes):
        self.value = float(np.mean(runtimes))
        return self

    def predict(self, machines):
        return np.full(np.asarray(machines).shape, self.value)


METHODS = [
    MethodSpec(name="oracle", factory=lambda _ctx: OracleModel(), min_train_points=1),
    MethodSpec(name="NNLS", factory=lambda _ctx: ErnestModel(), min_train_points=1),
]


class TestEvaluateContext:
    def test_records_produced_for_both_tasks(self, small_context_dataset):
        config = ProtocolConfig(n_train_values=(2, 3), max_splits=4, seed=0)
        records = evaluate_context(METHODS, small_context_dataset, config)
        tasks = {r.task for r in records}
        assert tasks == {"interpolation", "extrapolation"}

    def test_min_train_points_respected(self, small_context_dataset):
        methods = [
            MethodSpec(name="needs3", factory=lambda _c: OracleModel(), min_train_points=3)
        ]
        config = ProtocolConfig(n_train_values=(1, 2, 3), max_splits=3, seed=0)
        records = evaluate_context(methods, small_context_dataset, config)
        assert all(r.n_train >= 3 for r in records)

    def test_methods_share_splits(self, small_context_dataset):
        config = ProtocolConfig(n_train_values=(3,), max_splits=5, seed=0)
        records = evaluate_context(METHODS, small_context_dataset, config)
        by_method = {}
        for record in records:
            by_method.setdefault(record.method, []).append(
                (record.split_index, record.task, record.actual_s)
            )
        assert by_method["oracle"] == by_method["NNLS"]

    def test_multi_context_dataset_rejected(self, c3o_dataset):
        config = ProtocolConfig(n_train_values=(2,), max_splits=2)
        with pytest.raises(ValueError):
            evaluate_context(METHODS, c3o_dataset, config)

    def test_deterministic_given_seed(self, small_context_dataset):
        config = ProtocolConfig(n_train_values=(2,), max_splits=3, seed=9)
        a = evaluate_context(METHODS, small_context_dataset, config)
        b = evaluate_context(METHODS, small_context_dataset, config)
        assert [(r.actual_s, r.predicted_s) for r in a] == [
            (r.actual_s, r.predicted_s) for r in b
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProtocolConfig(n_train_values=())
        with pytest.raises(ValueError):
            ProtocolConfig(n_train_values=(-1,))
        with pytest.raises(ValueError):
            ProtocolConfig(max_splits=0)


class TestRecordMath:
    def test_error_properties(self):
        record = EvaluationRecord(
            method="m",
            algorithm="grep",
            context_id="c",
            n_train=2,
            task="interpolation",
            actual_s=100.0,
            predicted_s=120.0,
            fit_seconds=0.1,
            epochs_trained=10,
        )
        assert record.absolute_error == pytest.approx(20.0)
        assert record.relative_error == pytest.approx(0.2)


def make_records():
    rows = [
        ("a", "grep", "c1", 2, "interpolation", 100.0, 110.0, 0),
        ("a", "grep", "c1", 2, "extrapolation", 100.0, 150.0, 0),
        ("a", "sgd", "c2", 3, "interpolation", 200.0, 100.0, 1),
        ("b", "grep", "c1", 2, "interpolation", 100.0, 100.0, 0),
    ]
    return [
        EvaluationRecord(
            method=m,
            algorithm=algo,
            context_id=cid,
            n_train=n,
            task=task,
            actual_s=actual,
            predicted_s=predicted,
            fit_seconds=0.5,
            epochs_trained=7,
            split_index=split,
        )
        for m, algo, cid, n, task, actual, predicted, split in rows
    ]


class TestAggregations:
    def test_aggregate_filters(self):
        records = make_records()
        assert len(aggregate(records, method="a")) == 3
        assert len(aggregate(records, task="interpolation", method="a")) == 2
        assert len(aggregate(records, algorithm="sgd")) == 1
        assert len(aggregate(records, n_train=2)) == 3

    def test_mre_mae_on_subsets(self):
        records = aggregate(make_records(), method="a", task="interpolation")
        assert mean_relative_error(records) == pytest.approx((0.1 + 0.5) / 2)
        assert mean_absolute_error(records) == pytest.approx((10 + 100) / 2)

    def test_empty_aggregation_nan(self):
        assert np.isnan(mean_relative_error([]))
        assert np.isnan(mean_absolute_error([]))

    def test_unique_fits_dedupes_task_pairs(self):
        records = make_records()
        fits = unique_fits(records)
        # (a,c1,2,0) has two task records -> one fit; plus (a,c2,3,1), (b,c1,2,0).
        assert len(fits) == 3

    def test_ecdf(self):
        values, probabilities = ecdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probabilities, [1 / 3, 2 / 3, 1.0])

    def test_ecdf_empty(self):
        values, probabilities = ecdf(np.array([]))
        assert values.size == 0 and probabilities.size == 0
