"""Tests of the experiment runners (smoke scale) and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import (
    PAPER_EXAMPLE_CONTEXTS,
    SMOKE_SCALE,
    code_distance,
    get_scale,
    normalized_context_curves,
    run_fig2,
    run_fig4,
    runtime_variance_summary,
    select_target_contexts,
)
from repro.eval.experiments.common import PretrainedModelCache
from repro.eval import reporting
from repro.eval.protocol import EvaluationRecord


class TestScales:
    def test_get_scale(self):
        assert get_scale("quick").name == "quick"
        assert get_scale("full").max_splits == 200
        assert get_scale("full").max_splits_crossenv == 500
        assert get_scale("full").contexts_per_algorithm == 7

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_bellamy_config_applies_budgets(self):
        config = SMOKE_SCALE.bellamy_config()
        assert config.pretrain_epochs == SMOKE_SCALE.pretrain_epochs
        assert config.finetune_max_epochs == SMOKE_SCALE.finetune_max_epochs


class TestTargetSelection:
    def test_count_respected(self, c3o_dataset):
        targets = select_target_contexts(c3o_dataset, "sgd", 7, seed=0)
        assert len(targets) == 7

    def test_node_type_coverage_first(self, c3o_dataset):
        targets = select_target_contexts(c3o_dataset, "pagerank", 7, seed=0)
        node_types = [t.node_type for t in targets]
        assert len(set(node_types)) == 7  # all distinct while possible

    def test_deterministic(self, c3o_dataset):
        a = select_target_contexts(c3o_dataset, "sgd", 3, seed=1)
        b = select_target_contexts(c3o_dataset, "sgd", 3, seed=1)
        assert [c.context_id for c in a] == [c.context_id for c in b]

    def test_count_capped_at_available(self, c3o_dataset):
        targets = select_target_contexts(c3o_dataset, "sort", 100, seed=0)
        assert len(targets) == 21

    def test_unknown_algorithm(self, c3o_dataset):
        with pytest.raises(ValueError):
            select_target_contexts(c3o_dataset, "wordcount", 2)


class TestPretrainedCache:
    def test_corpus_policies(self, c3o_dataset):
        config = SMOKE_SCALE.bellamy_config()
        cache = PretrainedModelCache(c3o_dataset, config, seed=0)
        target = c3o_dataset.for_algorithm("grep").contexts()[0]
        full = cache.corpus_for("full", target)
        filtered = cache.corpus_for("filtered", target)
        assert len(filtered) < len(full) < len(c3o_dataset)
        assert all(e.context.context_id != target.context_id for e in full)
        with pytest.raises(ValueError):
            cache.corpus_for("everything", target)

    def test_memoization(self, c3o_dataset):
        config = SMOKE_SCALE.bellamy_config().with_overrides(pretrain_epochs=3)
        cache = PretrainedModelCache(c3o_dataset, config, seed=0)
        target = c3o_dataset.for_algorithm("grep").contexts()[0]
        a = cache.get("full", target)
        b = cache.get("full", target)
        assert a is b
        assert len(cache.pretrain_seconds) == 1


class TestFig2:
    def test_normalized_curves_max_one(self, c3o_dataset):
        curves = normalized_context_curves(c3o_dataset.for_algorithm("grep"))
        for curve in curves.values():
            assert curve.max() == pytest.approx(1.0)
            assert (curve > 0).all()

    def test_summary_quantiles_ordered(self, c3o_dataset):
        summary = runtime_variance_summary(c3o_dataset, "sgd")
        for quantile in summary.quantiles.values():
            assert list(quantile) == sorted(quantile)

    def test_nontrivial_algorithms_have_higher_spread(self, c3o_dataset):
        # The motivation of the paper's Fig. 2: SGD/K-Means runtimes vary more
        # across contexts than Sort/Grep.
        spreads = {
            s.algorithm: s.spread for s in run_fig2(c3o_dataset)
        }
        assert spreads["sgd"] > spreads["sort"]
        assert spreads["kmeans"] > spreads["sort"]

    def test_unknown_algorithm(self, c3o_dataset):
        with pytest.raises(ValueError):
            runtime_variance_summary(c3o_dataset, "wordcount")


class TestFig4:
    def test_paper_contexts_defined(self):
        a, b = PAPER_EXAMPLE_CONTEXTS
        assert a.node_type == "m4.2xlarge" and a.dataset_mb == 19353
        assert b.node_type == "r4.2xlarge" and b.dataset_mb == 14540

    def test_codes_shape_and_distance(self, c3o_dataset):
        visualizations = run_fig4(c3o_dataset, epochs=5, seed=0)
        assert len(visualizations) == 2
        for viz in visualizations:
            assert viz.codes.shape == (4, 4)  # essential properties x code dim
            assert len(viz.property_labels) == 4
        assert code_distance(*visualizations) > 0

    def test_code_distance_requires_matching_shapes(self, c3o_dataset):
        a, b = run_fig4(c3o_dataset, epochs=3, seed=0)
        b.codes = b.codes[:2]
        with pytest.raises(ValueError):
            code_distance(a, b)


def make_records():
    rows = [
        ("NNLS", "grep", 2, "interpolation", 100.0, 90.0, 0, 0, 0.001),
        ("NNLS", "grep", 3, "interpolation", 100.0, 95.0, 0, 0, 0.001),
        ("Bellamy (full)", "grep", 2, "interpolation", 100.0, 99.0, 1, 12, 0.5),
        ("Bellamy (full)", "grep", 2, "extrapolation", 110.0, 100.0, 1, 12, 0.5),
        ("Bellamy (full)", "sgd", 3, "interpolation", 300.0, 250.0, 0, 80, 1.0),
    ]
    return [
        EvaluationRecord(
            method=m,
            algorithm=algo,
            context_id="ctx",
            n_train=n,
            task=task,
            actual_s=actual,
            predicted_s=predicted,
            fit_seconds=fit_s,
            epochs_trained=epochs,
            split_index=split,
        )
        for m, algo, n, task, actual, predicted, split, epochs, fit_s in rows
    ]


class TestReporting:
    def test_fig5_series_structure(self):
        series = reporting.fig5_series(make_records(), "interpolation")
        assert "grep" in series and "Total" in series
        assert series["grep"]["NNLS"][2] == pytest.approx(0.1)

    def test_render_fig5_contains_methods(self):
        text = reporting.render_fig5(make_records(), "interpolation")
        assert "NNLS" in text and "Bellamy (full)" in text

    def test_mae_bars(self):
        bars = reporting.mae_bars(make_records())
        assert bars["grep"]["NNLS"] == pytest.approx(7.5)
        assert bars["sgd"]["Bellamy (full)"] == pytest.approx(50.0)

    def test_render_mae_bars(self):
        text = reporting.render_mae_bars(make_records())
        assert "algorithm" in text and "grep" in text

    def test_fig7_ecdfs_only_bellamy(self):
        curves = reporting.fig7_ecdfs(make_records())
        assert all("Bellamy" in m for per in curves.values() for m in per)

    def test_render_fig7(self):
        text = reporting.render_fig7(make_records())
        assert "p50" in text

    def test_training_time_table(self):
        table = reporting.training_time_table(make_records())
        assert table["Bellamy (full)"] == pytest.approx(0.75)

    def test_render_training_time(self):
        assert "time-to-fit" in reporting.render_training_time(make_records())
