"""Tests of the error metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval.metrics import (
    absolute_errors,
    mae,
    mape,
    mre,
    r_squared,
    relative_errors,
    rmse,
    smape,
    summary,
)

PRED = np.array([110.0, 90.0, 100.0])
ACTUAL = np.array([100.0, 100.0, 100.0])


class TestValues:
    def test_mae(self):
        assert mae(PRED, ACTUAL) == pytest.approx(20.0 / 3)

    def test_mre(self):
        assert mre(PRED, ACTUAL) == pytest.approx(0.2 / 3)

    def test_mape_is_percent_mre(self):
        assert mape(PRED, ACTUAL) == pytest.approx(100 * mre(PRED, ACTUAL))

    def test_rmse(self):
        assert rmse(PRED, ACTUAL) == pytest.approx(np.sqrt(200.0 / 3))

    def test_perfect_prediction(self):
        assert mae(ACTUAL, ACTUAL) == 0.0
        assert mre(ACTUAL, ACTUAL) == 0.0
        assert rmse(ACTUAL, ACTUAL) == 0.0
        assert r_squared(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 1.0

    def test_smape_bounded(self):
        assert 0 <= smape(PRED, ACTUAL) <= 200

    def test_summary_keys(self):
        assert set(summary(PRED, ACTUAL)) == {"mae", "mre", "rmse", "smape"}

    def test_elementwise_errors(self):
        np.testing.assert_allclose(absolute_errors(PRED, ACTUAL), [10, 10, 0])
        np.testing.assert_allclose(relative_errors(PRED, ACTUAL), [0.1, 0.1, 0.0])


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.ones(2), np.ones(3))

    def test_empty(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    def test_zero_actual_relative(self):
        with pytest.raises(ValueError):
            mre(np.array([1.0]), np.array([0.0]))

    def test_r_squared_constant_actuals(self):
        with pytest.raises(ValueError):
            r_squared(np.array([1.0, 2.0]), np.array([3.0, 3.0]))


class TestProperties:
    @given(
        hnp.arrays(np.float64, (5,), elements=st.floats(1.0, 1e4)),
        hnp.arrays(np.float64, (5,), elements=st.floats(1.0, 1e4)),
    )
    @settings(max_examples=40, deadline=None)
    def test_metrics_nonnegative(self, predictions, actuals):
        assert mae(predictions, actuals) >= 0
        assert mre(predictions, actuals) >= 0
        assert rmse(predictions, actuals) >= mae(predictions, actuals) - 1e-9

    @given(hnp.arrays(np.float64, (6,), elements=st.floats(1.0, 1e4)))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance_of_mre(self, actuals):
        predictions = actuals * 1.1
        assert mre(predictions, actuals) == pytest.approx(0.1)
        assert mre(10 * predictions, 10 * actuals) == pytest.approx(0.1)
