"""Docstring quality gates for the consumer-facing packages.

Two guarantees over ``repro.api``, ``repro.serve``, ``repro.online``,
``repro.metrics``, ``repro.eval``, and ``repro.runtime``:

1. every public symbol (``__all__``) has a non-empty, example-bearing
   docstring — an example is a doctest (``>>>``) or a literal code block
   (a line ending in ``::``);
2. every doctest in those packages passes (so the examples in the
   generated ``docs/api.md`` are executable truth, not decoration).
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil
import re

import pytest

PACKAGES = (
    "repro.api",
    "repro.serve",
    "repro.online",
    "repro.metrics",
    "repro.eval",
    "repro.runtime",
    "repro.runtime.backends",
    "repro.nn.batched",
    "repro.resilience",
)

_EXAMPLE_RE = re.compile(r"::\s*$", re.M)


def _has_example(doc: str) -> bool:
    return ">>>" in doc or _EXAMPLE_RE.search(doc) is not None


def _public_symbols():
    for package in PACKAGES:
        module = importlib.import_module(package)
        assert module.__all__, f"{package} must declare __all__"
        for name in module.__all__:
            yield package, name, getattr(module, name)


def _all_modules():
    names = []
    for package in PACKAGES:
        pkg = importlib.import_module(package)
        names.append(package)
        # Plain modules (e.g. repro.nn.batched) have no __path__ to walk.
        for info in pkgutil.walk_packages(getattr(pkg, "__path__", []), prefix=package + "."):
            names.append(info.name)
    return sorted(set(names))


@pytest.mark.parametrize(
    "package, name, obj",
    [pytest.param(p, n, o, id=f"{p}.{n}") for p, n, o in _public_symbols()],
)
def test_public_symbol_has_example_bearing_docstring(package, name, obj):
    if not (inspect.isclass(obj) or inspect.isfunction(obj) or inspect.ismodule(obj)):
        return  # constants (e.g. JOBS_ENV) cannot carry their own docstring
    doc = inspect.getdoc(obj) or ""
    assert doc.strip(), f"{package}.{name} has a missing/empty docstring"
    if inspect.ismodule(obj):
        return  # submodules document themselves symbol by symbol
    assert _has_example(doc), (
        f"{package}.{name} has no usage example in its docstring "
        "(add a '>>> ' doctest or a '::' literal block)"
    )


def test_package_modules_have_docstrings():
    for name in _all_modules():
        module = importlib.import_module(name)
        doc = (module.__doc__ or "").strip()
        assert doc, f"module {name} has no docstring"


@pytest.mark.parametrize("module_name", _all_modules())
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert result.failed == 0, (
        f"{result.failed} doctest example(s) failed in {module_name}"
    )
