"""Smoke pass over ``examples/``: every script runs and produces output.

Gated behind ``REPRO_RUN_EXAMPLES=1`` (the CI docs job sets it) because
even at the tiny ``REPRO_EXAMPLE_EPOCHS`` budget the full pass costs
minutes, not seconds. Each example must exit 0 **and** print something —
``examples/_util.run_main`` turns an example that silently does nothing
into a failure, and this harness asserts the same from the outside.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted(
    path for path in (REPO_ROOT / "examples").glob("*.py")
    if not path.name.startswith("_")
)

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_RUN_EXAMPLES") != "1",
    reason="examples smoke pass is opt-in: set REPRO_RUN_EXAMPLES=1",
)


def test_examples_are_discovered():
    assert len(EXAMPLES) >= 9


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_and_prints(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.setdefault("REPRO_EXAMPLE_EPOCHS", "3")
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples may write scratch files
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed ({result.returncode}):\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
