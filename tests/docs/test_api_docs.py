"""The generated API reference must match the live docstrings."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_generator():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import gen_api_docs
    finally:
        sys.path.pop(0)
    return gen_api_docs


def test_api_md_is_fresh():
    """`docs/api.md` equals a fresh render (what CI's --check enforces)."""
    generator = _load_generator()
    on_disk = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    assert on_disk == generator.render(), (
        "docs/api.md is stale; regenerate with "
        "`PYTHONPATH=src python tools/gen_api_docs.py`"
    )


def test_api_md_covers_all_public_symbols():
    import importlib

    generator = _load_generator()
    text = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    for package in generator.PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            assert f"`{name}" in text or f"{package}.{name}" in text, (
                f"{package}.{name} missing from docs/api.md"
            )


def test_check_mode_detects_staleness(tmp_path):
    """--check exits 1 against a stale copy and 0 against a fresh one."""
    stale = tmp_path / "api.md"
    stale.write_text("# stale\n", encoding="utf-8")
    script = REPO_ROOT / "tools" / "gen_api_docs.py"
    env_path = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, str(script), "--check", "--out", str(stale)],
        capture_output=True, text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 1
    assert "stale" in result.stderr
    result = subprocess.run(
        [sys.executable, str(script), "--out", str(stale)],
        capture_output=True, text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    result = subprocess.run(
        [sys.executable, str(script), "--check", "--out", str(stale)],
        capture_output=True, text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
