"""Executable documentation: every fenced Python block in the docs runs.

The harness extracts every ` ```python ` fence from ``README.md`` and
``docs/*.md`` and executes it — blocks of one file share a namespace (like
a REPL transcript), run inside a temporary working directory (snippets may
write e.g. ``models/``), and are expected to be seeded and network-free.
A snippet that raises fails the suite with its file and line number, so
documentation cannot silently rot.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Documentation files whose Python fences must execute.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
)

_FENCE_RE = re.compile(r"^```(\w*)\s*$")


def extract_python_blocks(path: Path):
    """``(start_line, source)`` for every fenced python block in ``path``."""
    blocks = []
    language = None
    buffer = []
    start = 0
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        match = _FENCE_RE.match(line.strip())
        if match and language is None:
            language = match.group(1).lower()
            buffer = []
            start = lineno + 1
        elif line.strip() == "```" and language is not None:
            if language == "python":
                blocks.append((start, "\n".join(buffer)))
            language = None
        elif language is not None:
            buffer.append(line)
    assert language is None, f"unterminated code fence in {path}"
    return blocks


def test_docs_are_discovered():
    names = {path.name for path in DOC_FILES}
    assert "README.md" in names
    assert {"architecture.md", "serving.md", "performance.md"} <= names


def test_there_are_executable_snippets():
    total = sum(len(extract_python_blocks(path)) for path in DOC_FILES)
    assert total >= 8, f"expected a documented codebase, found {total} snippets"


@pytest.mark.parametrize(
    "doc_path", DOC_FILES, ids=[path.name for path in DOC_FILES]
)
def test_every_python_snippet_executes(doc_path, tmp_path, monkeypatch):
    blocks = extract_python_blocks(doc_path)
    if not blocks:
        pytest.skip(f"{doc_path.name} has no python fences")
    monkeypatch.chdir(tmp_path)  # snippets may write relative paths
    namespace = {"__name__": f"snippet::{doc_path.name}"}
    for start, source in blocks:
        code = compile(source, f"{doc_path.name}:{start}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"snippet at {doc_path.name}:{start} raised "
                f"{type(error).__name__}: {error}"
            )
