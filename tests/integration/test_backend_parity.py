"""The acceptance drill: serving on ``sqlite://`` equals ``file://``.

Runs the full serve + online-refresh workload (the chaos scenario's clean
drive — warm-up, observe/predict stream, forced reconciling refresh, final
prediction sweep) once per backend and requires byte-for-byte identical
responses and predictions. The store backend must be invisible to every
number the stack produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import ChaosScenario


def _scrub(value):
    """Drop wall-clock timing fields — the one payload element that is
    legitimately non-deterministic across runs."""
    if isinstance(value, dict):
        return {
            key: _scrub(item)
            for key, item in value.items()
            if key != "wall_seconds"
        }
    if isinstance(value, (list, tuple)):
        return [_scrub(item) for item in value]
    return value


@pytest.mark.slow
def test_serve_and_refresh_bit_identical_across_backends(tmp_path):
    runs = {}
    for backend in ("local_fs", "sqlite", "memory"):
        scenario = ChaosScenario(seed=0, store_backend=backend)
        responses = []
        predictions, stats, trips = scenario._drive(  # noqa: SLF001
            scenario._scenario(), str(tmp_path / backend), None, responses
        )
        runs[backend] = (predictions, _scrub(responses), trips)

    reference_predictions, reference_responses, reference_trips = runs["local_fs"]
    assert all(status == 200 for status, _ in reference_responses)
    for backend in ("sqlite", "memory"):
        predictions, responses, trips = runs[backend]
        assert np.array_equal(predictions, reference_predictions), backend
        assert responses == reference_responses, backend
        assert trips == reference_trips, backend
