"""End-to-end integration tests across subsystems.

These exercise the realistic workflows: pre-train -> persist -> load ->
fine-tune -> predict; the full evaluation protocol with every method; and
resource selection validated against simulator ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BellModel, ErnestModel
from repro.core import (
    BellamyConfig,
    BellamyRuntimeModel,
    FinetuneStrategy,
    ModelStore,
    finetune,
    pretrain,
    select_scaleout,
)
from repro.data import generate_c3o_dataset, c3o_trace_generator
from repro.eval.protocol import (
    MethodSpec,
    ProtocolConfig,
    aggregate,
    evaluate_context,
    mean_relative_error,
)


@pytest.fixture(scope="module")
def pretrained_grep(request):
    dataset = request.getfixturevalue("c3o_dataset")
    config = BellamyConfig(learning_rate=1e-3, seed=0)
    return pretrain(dataset, "grep", config=config, epochs=120, seed=0)


class TestPretrainPersistFinetunePredict:
    def test_full_lifecycle(self, tmp_path, c3o_dataset, pretrained_grep):
        store = ModelStore(tmp_path)
        store.save("grep", pretrained_grep.model, metadata={"algorithm": "grep"})

        # "Another process": load and fine-tune on a context.
        loaded = store.load("grep")
        context_data = next(iter(c3o_dataset.for_algorithm("grep").by_context().values()))
        context = context_data.contexts()[0]
        machines = np.array([2.0, 8.0, 12.0])
        runtimes = np.array(
            [
                context_data.filter(lambda e: e.machines == m).runtimes_array().mean()
                for m in machines
            ]
        )
        result = finetune(loaded, context, machines, runtimes, max_epochs=200)
        predictions = result.model.predict(context, [4, 6, 10])
        actual = np.array(
            [
                context_data.filter(lambda e: e.machines == m).runtimes_array().mean()
                for m in (4, 6, 10)
            ]
        )
        mre = np.mean(np.abs(predictions - actual) / actual)
        assert mre < 0.6  # sanity: predictions in the right ballpark

    def test_zero_shot_is_finite_and_positive_scaleout_aware(
        self, c3o_dataset, pretrained_grep
    ):
        context = c3o_dataset.for_algorithm("grep").contexts()[3]
        predictions = pretrained_grep.model.predict(context, [2, 6, 12])
        assert np.isfinite(predictions).all()


class TestProtocolWithAllMethods:
    def test_protocol_runs_every_method(self, c3o_dataset, pretrained_grep):
        context_data = next(
            iter(c3o_dataset.for_algorithm("grep").by_context().values())
        )
        context = context_data.contexts()[0]
        config = BellamyConfig(seed=0)
        methods = [
            MethodSpec("NNLS", lambda _c: ErnestModel(), 1),
            MethodSpec("Bell", lambda _c: BellModel(), 3),
            MethodSpec(
                "Bellamy (local)",
                lambda c: BellamyRuntimeModel(
                    c, base_model=None, config=config, max_epochs=40, seed=1
                ),
                1,
            ),
            MethodSpec(
                "Bellamy (full)",
                lambda c: BellamyRuntimeModel(
                    c,
                    base_model=pretrained_grep.model,
                    strategy=FinetuneStrategy.PARTIAL_UNFREEZE,
                    max_epochs=40,
                ),
                0,
            ),
        ]
        protocol = ProtocolConfig(n_train_values=(0, 2, 3), max_splits=2, seed=0)
        records = evaluate_context(methods, context_data, protocol)
        methods_seen = {r.method for r in records}
        assert methods_seen == {"NNLS", "Bell", "Bellamy (local)", "Bellamy (full)"}
        # Zero-shot extrapolation exists only for the pre-trained variant.
        zero_shot = aggregate(records, n_train=0)
        assert {r.method for r in zero_shot} == {"Bellamy (full)"}
        # All errors are finite.
        assert all(np.isfinite(r.relative_error) for r in records)

    def test_bell_only_at_three_plus_points(self, c3o_dataset):
        context_data = next(
            iter(c3o_dataset.for_algorithm("grep").by_context().values())
        )
        methods = [MethodSpec("Bell", lambda _c: BellModel(), 3)]
        protocol = ProtocolConfig(n_train_values=(1, 2, 3), max_splits=2, seed=0)
        records = evaluate_context(methods, context_data, protocol)
        assert {r.n_train for r in records} == {3}


class TestResourceSelectionAgainstGroundTruth:
    def test_selection_meets_target_on_ground_truth(self, c3o_dataset):
        generator = c3o_trace_generator(seed=0)
        context_data = next(
            iter(c3o_dataset.for_algorithm("grep").by_context().values())
        )
        context = context_data.contexts()[0]
        # Fit Ernest on the context's full mean curve (best case baseline).
        machines, means = context_data.mean_runtime_curve()
        model = ErnestModel().fit(machines, means)
        # Target: achievable at the largest scale-out.
        target_runtime = generator.expected_runtime(context, 12) * 1.3
        recommendation = select_scaleout(
            model, [2, 4, 6, 8, 10, 12], runtime_target_s=target_runtime
        )
        assert recommendation.satisfiable
        truth = generator.expected_runtime(context, recommendation.chosen.machines)
        assert truth <= target_runtime * 1.15  # allow modest prediction error


class TestDeterminism:
    def test_full_pipeline_reproducible(self, c3o_dataset):
        config = BellamyConfig(seed=5)

        def run():
            result = pretrain(c3o_dataset, "sort", config=config, epochs=15)
            context = c3o_dataset.for_algorithm("sort").contexts()[0]
            return result.model.predict(context, [2, 6, 12])

        np.testing.assert_array_equal(run(), run())
