"""Smoke tests of the experiment campaigns at minimal scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import reporting
from repro.eval.experiments import (
    SMOKE_SCALE,
    run_cross_context_experiment,
    run_cross_environment_experiment,
)


@pytest.fixture(scope="module")
def cross_context(request):
    c3o = request.getfixturevalue("c3o_dataset")
    return run_cross_context_experiment(c3o, SMOKE_SCALE, seed=0)


@pytest.fixture(scope="module")
def cross_environment(request):
    c3o = request.getfixturevalue("c3o_dataset")
    bell = request.getfixturevalue("bell_dataset")
    return run_cross_environment_experiment(c3o, bell, SMOKE_SCALE, seed=0)


class TestCrossContextCampaign:
    def test_all_methods_present(self, cross_context):
        assert set(cross_context.methods()) == {
            "NNLS",
            "Bell",
            "Bellamy (local)",
            "Bellamy (filtered)",
            "Bellamy (full)",
        }

    def test_algorithms_match_scale(self, cross_context):
        assert set(cross_context.algorithms()) == set(SMOKE_SCALE.algorithms)

    def test_both_tasks_recorded(self, cross_context):
        tasks = {r.task for r in cross_context.records}
        assert tasks == {"interpolation", "extrapolation"}

    def test_pretrain_seconds_recorded(self, cross_context):
        assert set(cross_context.pretrain_seconds) == {"filtered", "full"}
        assert all(v > 0 for v in cross_context.pretrain_seconds.values())

    def test_errors_finite(self, cross_context):
        assert all(np.isfinite(r.relative_error) for r in cross_context.records)

    def test_reports_render(self, cross_context):
        records = cross_context.records
        for text in (
            reporting.render_fig5(records, "interpolation"),
            reporting.render_fig5(records, "extrapolation"),
            reporting.render_mae_bars(records),
            reporting.render_fig7(records),
            reporting.render_training_time(records),
        ):
            assert isinstance(text, str) and text


class TestCrossEnvironmentCampaign:
    def test_seven_methods(self, cross_environment):
        methods = {r.method for r in cross_environment.records}
        assert {
            "NNLS",
            "Bell",
            "Bellamy (local)",
            "Bellamy (partial-unfreeze)",
            "Bellamy (full-unfreeze)",
            "Bellamy (partial-reset)",
            "Bellamy (full-reset)",
        } <= methods

    def test_only_bell_algorithms(self, cross_environment):
        algorithms = {r.algorithm for r in cross_environment.records}
        assert algorithms <= {"grep", "sgd", "pagerank"}

    def test_contexts_are_cluster_contexts(self, cross_environment):
        assert all("cluster" in r.context_id for r in cross_environment.records)

    def test_pretraining_per_algorithm(self, cross_environment):
        assert all(v > 0 for v in cross_environment.pretrain_seconds.values())

    def test_render_fig8(self, cross_environment):
        text = reporting.render_mae_bars(
            cross_environment.records,
            title="[Fig 8] Cross-environment interpolation MAE [s]",
        )
        assert "Bellamy" in text
