"""OnlineSession end-to-end: drift is flagged, refreshed, and swapped.

Covers the acceptance criteria of the online-learning lifecycle: on a
generated drift scenario the session flags the drifted group, refreshes it,
the refreshed model's MRE on post-drift data beats the stale model's, and
serving stays bit-identical to serial ``Session.predict`` after a
cache-invalidating refresh.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.core.config import BellamyConfig
from repro.data.dataset import ExecutionDataset
from repro.eval.metrics import mre
from repro.online import ObservationBuffer, OnlineSession, RefreshPolicy
from repro.serve import LruTtlCache, PredictionServer, ServeApp, ServeClient
from repro.simulator import DriftSpec, generate_drift_scenario

EVAL_SCALEOUTS = (2, 4, 6, 8, 10, 12)


def _config(seed: int = 0) -> BellamyConfig:
    return BellamyConfig(seed=seed).with_overrides(
        pretrain_epochs=300, finetune_max_epochs=250, finetune_patience=120
    )


def _policy(**overrides) -> RefreshPolicy:
    defaults = dict(min_observations=3, window=6, refresh_samples=8, max_epochs=250)
    defaults.update(overrides)
    return RefreshPolicy(**defaults)


@pytest.fixture(scope="module")
def step_scenario():
    return generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.9, start=0.0), seed=0, n_stream=12
    )


@pytest.fixture()
def drifted_setup(step_scenario, tmp_path):
    """(scenario, session, online) over the scenario's pre-drift history."""
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(
        corpus, config=_config(), store=tmp_path / "store",
        model_cache=LruTtlCache(capacity=8),
    )
    return step_scenario, session, OnlineSession(session, _policy())


def test_end_to_end_drift_flag_refresh_and_improvement(drifted_setup):
    """The ISSUE's acceptance test, part 1: flag → refresh → better MRE."""
    scenario, session, online = drifted_setup
    stale_base = session.base_model(scenario.context.algorithm)

    refreshed_results = []
    for machines, runtime in scenario.stream:
        outcome = online.observe(scenario.context, machines, runtime)
        if outcome.refreshed is not None:
            refreshed_results.append(outcome.refreshed)

    # The drifted group was flagged and refreshed.
    assert refreshed_results, "drift was never flagged/refreshed"
    first = refreshed_results[0]
    assert first.group == scenario.context.context_id
    assert first.improved
    assert first.model_name in session.models()
    assert online.stats()["refreshes"] == len(refreshed_results)
    assert session.serving_overrides[scenario.context.context_id] == refreshed_results[-1].model_name

    # The refreshed model beats the stale one on post-drift ground truth.
    machines, truths = scenario.evaluation_set(EVAL_SCALEOUTS)
    stale_mre = mre(session.predict(scenario.context, machines, model=stale_base), truths)
    refreshed_mre = mre(session.predict(scenario.context, machines), truths)
    assert refreshed_mre < stale_mre
    assert refreshed_mre < 0.15  # adapted to the drifted regime


def test_serving_stays_bit_identical_after_cache_invalidating_refresh(drifted_setup):
    """The ISSUE's acceptance test, part 2: served bytes == serial bytes."""
    scenario, session, online = drifted_setup
    app = ServeApp(session, cache=False, online=online)  # session keeps its LruTtlCache
    client = ServeClient(app)
    try:
        # Serve traffic before the drift: warms the cache path.
        before = client.predict(scenario.context, list(EVAL_SCALEOUTS))
        for machines, runtime in scenario.stream:
            outcome = client.observe(scenario.context, machines, runtime)
        assert online.stats()["refreshes"] >= 1
        after = client.predict(scenario.context, list(EVAL_SCALEOUTS))
    finally:
        app.close()

    # The refresh actually changed what is served ...
    assert not np.array_equal(before, after)
    # ... and the served answer is bit-identical to serial Session.predict.
    serial = session.predict(scenario.context, np.asarray(EVAL_SCALEOUTS, dtype=float))
    assert np.array_equal(after, serial)


def test_refresh_versions_and_warm_cache_invalidation(drifted_setup):
    scenario, session, online = drifted_setup
    context = scenario.context
    for machines, runtime in scenario.stream[:4]:
        online.observe(context, machines, runtime)
    v1 = session.serving_overrides[context.context_id]
    assert v1.endswith("--v1")
    # Serve once through the named path so v1 sits in the warm cache.
    session.predict(context, [4])
    assert ("named", v1) in session.model_cache

    second = online.refresh(context)
    assert second.version == 2
    v2 = session.serving_overrides[context.context_id]
    assert v2.endswith("--v2")
    # The swapped-out version was invalidated from the warm cache.
    assert ("named", v1) not in session.model_cache
    assert online.versions()[context.context_id] == 2
    # Both versions remain in the store (audit trail), newest serves.
    assert v1 in session.models() and v2 in session.models()


def test_no_refresh_without_store_falls_back_to_in_memory_override(step_scenario):
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config())
    online = OnlineSession(session, _policy())
    for machines, runtime in step_scenario.stream:
        online.observe(step_scenario.context, machines, runtime)
    assert online.stats()["refreshes"] >= 1
    override = session.serving_overrides[step_scenario.context.context_id]
    from repro.core.model import BellamyModel

    assert isinstance(override, BellamyModel)  # no store: the object itself
    machines, truths = step_scenario.evaluation_set(EVAL_SCALEOUTS)
    assert mre(session.predict(step_scenario.context, machines), truths) < 0.15


def test_healthy_traffic_never_refreshes(step_scenario):
    """Observations that match the training distribution leave models alone."""
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config())
    online = OnlineSession(session, _policy())
    generator = step_scenario.generator
    for position in range(8):
        machines = EVAL_SCALEOUTS[position % len(EVAL_SCALEOUTS)]
        runtime = generator.expected_runtime(step_scenario.context, machines)
        online.observe(step_scenario.context, machines, runtime)
    assert online.stats()["refreshes"] == 0
    assert session.serving_overrides == {}


def test_refresh_without_observations_is_an_error(step_scenario):
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config())
    online = OnlineSession(session, _policy())
    with pytest.raises(ValueError, match="no buffered observations"):
        online.refresh(step_scenario.context)


def test_scan_reports_and_refreshes_offline(step_scenario, tmp_path):
    """The CLI path: buffered observations only, no live observe calls."""
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config(), store=tmp_path / "store")
    buffer = ObservationBuffer(capacity_per_group=64)
    online = OnlineSession(session, _policy(auto_refresh=False), buffer=buffer)
    from repro.online import Observation

    for machines, runtime in step_scenario.stream:
        buffer.add(Observation(step_scenario.context, machines, runtime))

    dry = online.scan(refresh=False)
    assert len(dry) == 1
    assert dry[0].status.drifted
    assert dry[0].refreshed is None
    assert session.serving_overrides == {}

    wet = online.scan(refresh=True)
    assert wet[0].refreshed is not None
    assert wet[0].refreshed.improved
    assert step_scenario.context.context_id in session.serving_overrides


def test_observations_persist_and_replay_through_online_session(step_scenario, tmp_path):
    path = tmp_path / "observations.jsonl"
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config())
    online = OnlineSession(
        session, _policy(auto_refresh=False), buffer=ObservationBuffer(path=path)
    )
    for machines, runtime in step_scenario.stream[:5]:
        online.observe(step_scenario.context, machines, runtime)

    # A restarted lifecycle replays the buffer and can refresh from it.
    session2 = Session(corpus, config=_config())
    online2 = OnlineSession(
        session2, _policy(auto_refresh=False), buffer=ObservationBuffer(path=path)
    )
    assert len(online2.buffer) == 5
    result = online2.refresh(step_scenario.context)
    assert result.n_samples == 5


def test_refresh_async_runs_on_runtime_executor(step_scenario, tmp_path):
    """refresh_async schedules the refresh on the shared runtime executor:
    the handle resolves to the same RefreshResult a sync refresh produces,
    and the serving override swaps exactly as in the synchronous path."""
    from repro.runtime import TaskHandle

    scenario = step_scenario
    corpus = ExecutionDataset(list(scenario.history))
    session = Session(corpus, config=_config(), store=tmp_path / "store")
    online = OnlineSession(session, _policy(auto_refresh=False))
    for machines, runtime in scenario.stream[:8]:
        online.observe(scenario.context, machines, runtime)
    assert online.stats()["refreshes"] == 0  # auto-refresh disabled

    handle = online.refresh_async(scenario.context)
    assert isinstance(handle, TaskHandle)
    result = handle.result(timeout=120.0)
    assert result.group == scenario.context.context_id
    assert result.version == 1
    assert online.executor is not None  # lazily created, reused next time
    assert session.serving_overrides[scenario.context.context_id] == result.model_name
    online.close()  # shuts the owned executor down
    assert online.executor is None


def test_serve_app_shares_executor_with_online_session(step_scenario, tmp_path):
    """The app installs its executor into the online session, so batcher
    flushes and async refreshes run on one scheduling primitive."""
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config(), store=tmp_path / "store")
    online = OnlineSession(session, _policy())
    app = ServeApp(session, online=online, batch_wait_ms=1.0)
    try:
        assert online.executor is app.executor
        assert app.batcher._executor is app.executor
    finally:
        app.close()
