"""Multi-group batched refresh: scan routing, isolation, metrics.

The tentpole wiring under test: when two or more groups need a refresh in
one reconciliation sweep, ``OnlineSession`` fine-tunes them together in one
fused batched pass (``finetune_batch``) and then installs each group
individually — atomic per-group ``online--<group>--vN`` saves, per-group
breaker semantics, per-group failure isolation — producing models
bit-identical to the serial per-group refresh loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.core.config import BellamyConfig
from repro.metrics import MetricsRegistry
from repro.online import OnlineSession, RefreshPolicy
from repro.resilience import SITE_ONLINE_REFRESH, FaultInjector, FaultPlan, FaultSpec


def _config() -> BellamyConfig:
    return BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=20, finetune_max_epochs=60, finetune_patience=30
    )


def _policy(**overrides) -> RefreshPolicy:
    defaults = dict(auto_refresh=False, refresh_samples=8, max_epochs=25)
    defaults.update(overrides)
    return RefreshPolicy(**defaults)


@pytest.fixture(scope="module")
def sgd_contexts(request):
    dataset = request.getfixturevalue("c3o_dataset")
    return [c for c in dataset.contexts() if c.algorithm == "sgd"][:3]


@pytest.fixture()
def online_setup(c3o_dataset, sgd_contexts, tmp_path):
    session = Session(c3o_dataset, config=_config(), store=tmp_path / "store")
    online = OnlineSession(session, _policy())
    for i, context in enumerate(sgd_contexts):
        records = c3o_dataset.for_context(context.context_id)
        machines = records.machines_array()
        runtimes = records.runtimes_array()
        for j in range(4 + i):  # ragged buffered counts per group
            online.observe(
                context,
                float(machines[j % machines.size]),
                float(runtimes[j % runtimes.size]) * 3.0,
            )
    return session, online


def test_scan_routes_multiple_stale_groups_through_batched_path(
    online_setup, sgd_contexts, c3o_dataset, tmp_path
):
    """Satellite regression test: >= 2 stale groups refresh in one fused
    pass, and the installed models are bit-identical to serial refreshes."""
    session, online = online_setup

    # Twin setup refreshed serially, group by group.
    serial_session = Session(
        c3o_dataset, config=_config(), store=tmp_path / "serial-store"
    )
    serial_online = OnlineSession(serial_session, _policy())
    for i, context in enumerate(sgd_contexts):
        records = c3o_dataset.for_context(context.context_id)
        machines = records.machines_array()
        runtimes = records.runtimes_array()
        for j in range(4 + i):
            serial_online.observe(
                context,
                float(machines[j % machines.size]),
                float(runtimes[j % runtimes.size]) * 3.0,
            )
    serial_results = [serial_online.refresh(c) for c in sgd_contexts]

    reports = online.scan(refresh=True, force=True)

    by_group = {report.group: report.refreshed for report in reports}
    grid = np.array([2.0, 4.0, 8.0, 16.0])
    for context, serial_result in zip(sgd_contexts, serial_results):
        batched_result = by_group[context.context_id]
        assert batched_result is not None
        assert batched_result.model_name == serial_result.model_name
        assert batched_result.version == serial_result.version == 1
        assert batched_result.n_samples == serial_result.n_samples
        assert batched_result.stale_error == serial_result.stale_error
        assert batched_result.refreshed_error == serial_result.refreshed_error
        # The swapped-in models serve bit-identical predictions.
        assert np.array_equal(
            session.predict(context, grid), serial_session.predict(context, grid)
        )

    stats = online.stats()
    assert stats["refreshes"] == 3
    assert stats["refresh_batched"] == 3
    assert stats["refresh_serial"] == 0
    assert online._m_batched_refresh_groups.count == 1
    assert online._m_batched_refresh_groups.sum == 3.0
    assert serial_online.stats()["refresh_batched"] == 0
    assert serial_online.stats()["refresh_serial"] == 3


def test_scan_with_one_stale_group_stays_serial(online_setup, sgd_contexts):
    session, online = online_setup
    target = sgd_contexts[0].context_id
    reports = online.scan(refresh=False)  # detect-only sweep never refreshes
    assert all(report.refreshed is None for report in reports)

    # Force exactly one group through the explicit single-group path.
    online.refresh(sgd_contexts[0])
    stats = online.stats()
    assert stats["refresh_serial"] == 1
    assert stats["refresh_batched"] == 0
    assert online._m_batched_refresh_groups.count == 0
    assert session.serving_overrides[target].endswith("--v1")


def test_refresh_many_matches_scan_and_skips_unbuffered_groups(
    online_setup, sgd_contexts
):
    session, online = online_setup
    # Drop the last group's buffer coverage by asking for a context that
    # was never observed: its slot maps to None without a recorded failure.
    from dataclasses import replace

    ghost = replace(sgd_contexts[0], dataset_mb=123_456, context_id="")
    results = online.refresh_many([sgd_contexts[0], ghost, sgd_contexts[1]])
    assert results[1] is None
    assert results[0] is not None and results[2] is not None
    assert results[0].group == sgd_contexts[0].context_id
    stats = online.stats()
    assert stats["refresh_failures"] == 0
    assert stats["refreshes"] == 2
    assert stats["refresh_batched"] == 2


def test_refresh_many_isolates_an_injected_failure(online_setup, sgd_contexts):
    """One group's refresh fault fails only that group; the rest swap."""
    session, online = online_setup
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(site=SITE_ONLINE_REFRESH, kind="raise", start=0, stop=1, max_fires=1),
        ),
    )
    with FaultInjector(plan):
        results = online.refresh_many(sgd_contexts)

    assert results[0] is None
    assert results[1] is not None and results[2] is not None
    stats = online.stats()
    assert stats["refresh_failures"] == 1
    assert stats["last_refresh_error"].startswith("InjectedFault")
    assert stats["refreshes"] == 2
    # The two survivors still went through the fused pass together.
    assert stats["refresh_batched"] == 2
    assert online._m_batched_refresh_groups.sum == 2.0
    # Only the failed group is missing a serving override.
    assert sgd_contexts[0].context_id not in session.serving_overrides
    assert sgd_contexts[1].context_id in session.serving_overrides
    # One failure is under quarantine_after=3: no quarantine.
    assert online.quarantined() == []


def test_refresh_many_failures_trip_the_per_group_breaker(
    c3o_dataset, sgd_contexts, tmp_path
):
    session = Session(c3o_dataset, config=_config(), store=tmp_path / "store")
    online = OnlineSession(session, _policy(quarantine_after=1, quarantine_reset_s=3600.0))
    for context in sgd_contexts[:2]:
        records = c3o_dataset.for_context(context.context_id)
        online.observe(context, float(records.machines_array()[0]),
                       float(records.runtimes_array()[0]) * 3.0)
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(site=SITE_ONLINE_REFRESH, kind="raise", start=0, stop=1, max_fires=1),
        ),
    )
    with FaultInjector(plan):
        results = online.refresh_many(sgd_contexts[:2])
    assert results[0] is None and results[1] is not None
    assert online.quarantined() == [sgd_contexts[0].context_id]
    assert int(online._m_quarantines.value) == 1


def test_rebind_metrics_carries_batched_counters(online_setup, sgd_contexts):
    session, online = online_setup
    online.scan(refresh=True, force=True)
    assert online.stats()["refresh_batched"] == 3

    registry = MetricsRegistry()
    online.rebind_metrics(registry)
    assert online.stats()["refresh_batched"] == 3
    assert int(online._m_refresh_batched.value) == 3
    assert online._m_batched_refresh_groups.count == 1
    assert registry.get("repro_online_refresh_batched_total") is not None
    assert registry.get("repro_online_refresh_serial_total") is not None
    assert registry.get("repro_online_batched_refresh_groups") is not None
