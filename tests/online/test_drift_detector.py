"""DriftDetector: envelopes, rolling verdicts, reset, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import DriftDetector


def test_envelope_is_the_configured_quantile_of_baseline_errors():
    detector = DriftDetector(quantile=0.5, envelope_floor=0.0)
    envelope = detector.set_baseline("g", [0.02, 0.04, 0.1, 0.06, 0.08])
    assert envelope == pytest.approx(0.06)
    assert detector.envelope("g") == pytest.approx(0.06)
    detector_q95 = DriftDetector(quantile=0.95, envelope_floor=0.0)
    assert detector_q95.set_baseline("g", [0.1] * 19 + [1.0]) > 0.1


def test_envelope_floor_and_default():
    detector = DriftDetector(default_envelope=0.2, envelope_floor=0.05)
    assert detector.set_baseline("tiny", [0.0001, 0.0002]) == 0.05
    assert detector.set_baseline("empty", []) == 0.2
    assert detector.envelope("never-seen") == 0.2
    assert not detector.has_baseline("never-seen")


def test_flags_on_sustained_exceedance_only():
    detector = DriftDetector(window=4, min_observations=3, tolerance=2.0)
    detector.set_baseline("g", [0.05, 0.06, 0.04])  # envelope 0.05
    # In-envelope traffic never flags.
    for error in (0.05, 0.07, 0.06, 0.05):
        assert not detector.observe("g", error).drifted
    # One outlier is absorbed by the median.
    assert not detector.observe("g", 0.9).drifted
    # A sustained shift flags once the window median crosses 2 x envelope.
    detector.observe("g", 0.4)
    status = detector.observe("g", 0.45)
    assert status.drifted
    assert status.ratio > 2.0
    assert detector.flagged() == ["g"]


def test_min_observations_gate():
    detector = DriftDetector(window=8, min_observations=4, tolerance=1.0)
    detector.set_baseline("g", [0.05])
    for _ in range(3):
        assert not detector.observe("g", 5.0).drifted  # huge but too few
    assert detector.observe("g", 5.0).drifted  # the 4th crosses the gate


def test_reset_clears_the_window_but_keeps_the_envelope():
    detector = DriftDetector(window=4, min_observations=2, tolerance=1.5)
    detector.set_baseline("g", [0.1])
    detector.observe("g", 2.0)
    assert detector.observe("g", 2.0).drifted
    detector.reset("g")
    status = detector.status("g")
    assert status.observations == 0
    assert not status.drifted
    assert detector.envelope("g") == pytest.approx(0.1)


def test_evaluate_is_pure():
    detector = DriftDetector(window=4, min_observations=2, tolerance=1.5)
    detector.set_baseline("g", [0.1])
    verdict = detector.evaluate("g", [0.5, 0.6, 0.7])
    assert verdict.drifted
    assert detector.status("g").observations == 0  # nothing recorded


def test_rejects_bad_parameters_and_values():
    with pytest.raises(ValueError):
        DriftDetector(window=0)
    with pytest.raises(ValueError):
        DriftDetector(min_observations=0)
    with pytest.raises(ValueError):
        DriftDetector(quantile=0.0)
    with pytest.raises(ValueError):
        DriftDetector(tolerance=0.0)
    detector = DriftDetector()
    with pytest.raises(ValueError):
        detector.observe("g", float("inf"))


def test_group_tracking_is_bounded():
    detector = DriftDetector(max_groups=3)
    for i in range(6):
        detector.set_baseline(f"g{i}", [0.1])
        detector.observe(f"g{i}", 0.1)
    assert detector.groups() == ["g3", "g4", "g5"]
    assert not detector.has_baseline("g0")
    # Touching a survivor keeps it alive through further churn.
    detector.observe("g3", 0.1)
    detector.observe("g9", 0.1)
    assert "g3" in detector.groups() and "g4" not in detector.groups()


def test_stats_listing_is_capped_worst_first():
    detector = DriftDetector(window=4, min_observations=1, tolerance=1.0)
    limit = DriftDetector.STATS_GROUP_LIMIT
    for i in range(limit + 10):
        detector.set_baseline(f"g{i}", [0.1])
        # Give later groups larger errors; make the last few clearly drifted.
        detector.observe(f"g{i}", 0.001 * i + (1.0 if i >= limit else 0.0))
    stats = detector.stats()
    assert stats["groups"] == limit + 10
    assert len(stats["by_group"]) == limit
    assert stats["by_group_truncated"] == 10
    # Drifted groups lead the listing.
    assert all(entry["drifted"] for entry in stats["by_group"][:10])


def test_stats_snapshot():
    detector = DriftDetector(window=4, min_observations=1, tolerance=1.0)
    detector.set_baseline("a", [0.1])
    detector.observe("a", 0.5)
    detector.observe("b", 0.01)
    stats = detector.stats()
    assert stats["groups"] == 2
    assert stats["drifted"] == 1
    assert stats["drift_flags"] == 1
    by_group = {entry["group"]: entry for entry in stats["by_group"]}
    assert by_group["a"]["drifted"] is True
    assert by_group["b"]["drifted"] is False
    assert by_group["a"]["recent_error"] == pytest.approx(0.5)
    # NaN-free JSON form for empty windows.
    detector.set_baseline("c", [0.2])
    assert {e["group"]: e for e in detector.stats()["by_group"]}["c"]["recent_error"] is None
