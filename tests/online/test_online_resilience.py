"""OnlineSession under refresh failures: quarantine, probes, stale serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.core.config import BellamyConfig
from repro.data.dataset import ExecutionDataset
from repro.online import OnlineSession, RefreshPolicy
from repro.resilience import (
    SITE_ONLINE_REFRESH,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.simulator import DriftSpec, generate_drift_scenario


def _config(seed: int = 0) -> BellamyConfig:
    return BellamyConfig(seed=seed).with_overrides(
        pretrain_epochs=300, finetune_max_epochs=250, finetune_patience=120
    )


def _policy(**overrides) -> RefreshPolicy:
    defaults = dict(
        min_observations=3, window=6, refresh_samples=8, max_epochs=250,
        quarantine_after=2, quarantine_reset_s=0.0,
    )
    defaults.update(overrides)
    return RefreshPolicy(**defaults)


def _refresh_plan(failures: int, seed: int = 0) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(site=SITE_ONLINE_REFRESH, kind="raise", max_fires=failures),
        ),
    )


@pytest.fixture(scope="module")
def step_scenario():
    return generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.9, start=0.0), seed=0, n_stream=12
    )


@pytest.fixture()
def online_setup(step_scenario, tmp_path):
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config(), store=tmp_path / "store")
    online = OnlineSession(session, _policy())
    return step_scenario, session, online


def _drive(scenario, online):
    """Feed the whole drift stream; return the observation outcomes."""
    return [
        online.observe(scenario.context, machines, runtime)
        for machines, runtime in scenario.stream
    ]


# --------------------------------------------------------------------- #
# Failure accounting + stale serving
# --------------------------------------------------------------------- #


def test_refresh_failure_keeps_serving_stale_model(online_setup):
    scenario, session, online = online_setup
    group = scenario.context.context_id
    with FaultInjector(_refresh_plan(failures=1)):
        outcomes = _drive(scenario, online)

    stats = online.stats()
    assert stats["refresh_failures"] == 1
    assert stats["last_refresh_error"].startswith("InjectedFault")
    # The failed auto-refresh degraded gracefully: the observation that
    # triggered it still returned (refreshed=None), and serving continued
    # on the stale model throughout.
    assert all(outcome.predicted_s > 0 for outcome in outcomes)
    prediction = session.predict(scenario.context, [4, 8])
    assert np.all(np.isfinite(prediction))
    # One failure is under quarantine_after=2: the group is not quarantined
    # and a later flag refreshes successfully (the fault is spent).
    assert group not in online.quarantined()
    assert stats["refreshes"] >= 1


def test_consecutive_failures_quarantine_then_half_open_probe_recovers(online_setup):
    scenario, session, online = online_setup
    group = scenario.context.context_id
    with FaultInjector(_refresh_plan(failures=2)) as injector:
        _drive(scenario, online)

    stats = online.stats()
    assert injector.fired()[SITE_ONLINE_REFRESH] == 2
    assert stats["refresh_failures"] == 2
    # Both injected failures hit one group: it tripped into quarantine...
    assert int(online._m_quarantines.value) == 1
    # ...and with quarantine_reset_s=0 the next drift flag was let through
    # as the half-open probe, which succeeded and closed the breaker.
    assert stats["refreshes"] >= 1
    assert online.quarantined() == []
    assert stats["quarantined"] == []
    assert session.serving_overrides  # the probe's refresh is serving


def test_quarantined_group_skips_refreshes_until_reset_elapses(online_setup):
    scenario, session, online = online_setup
    # A reset window far in the future: once open, flags are skipped
    # instead of probed.
    online.policy = _policy(quarantine_reset_s=3600.0)
    group = scenario.context.context_id
    with FaultInjector(_refresh_plan(failures=2)):
        _drive(scenario, online)

    stats = online.stats()
    assert online.quarantined() == [group]
    assert stats["quarantined"] == [group]
    assert stats["refreshes"] == 0  # every post-quarantine flag was skipped
    assert int(online._m_quarantined_skips.value) >= 1
    assert int(online._m_quarantined_groups.value) == 1
    # Serving still works on the stale model while quarantined.
    assert np.all(np.isfinite(session.predict(scenario.context, [4, 8])))


def test_empty_buffer_refresh_error_is_not_a_recorded_failure(step_scenario, tmp_path):
    corpus = ExecutionDataset(list(step_scenario.history))
    session = Session(corpus, config=_config(), store=tmp_path / "store")
    online = OnlineSession(session, _policy())
    with pytest.raises(ValueError, match="[Nn]o buffered observations"):
        online.refresh(step_scenario.context)
    stats = online.stats()
    assert stats["refresh_failures"] == 0  # misuse, not a lifecycle failure
    assert stats["last_refresh_error"] is None
    assert online.quarantined() == []


# --------------------------------------------------------------------- #
# Swallow-proof asynchronous refreshes
# --------------------------------------------------------------------- #


def test_refresh_raises_through_and_records(online_setup):
    scenario, _, online = online_setup
    online.policy = _policy(auto_refresh=False)  # buffer without refreshing
    for machines, runtime in scenario.stream[:4]:
        online.observe(scenario.context, machines, runtime)
    with FaultInjector(_refresh_plan(failures=1)):
        with pytest.raises(InjectedFault):
            online.refresh(scenario.context)
    assert online.stats()["refresh_failures"] == 1


def test_refresh_async_failure_is_recorded_without_collecting_result(online_setup):
    scenario, _, online = online_setup
    for machines, runtime in scenario.stream[:4]:
        online.observe(scenario.context, machines, runtime)
    failures_before = online.stats()["refresh_failures"]
    injector = FaultInjector(_refresh_plan(failures=1))
    injector.activate()
    try:
        handle = online.refresh_async(scenario.context)
        # Wait for completion via the handle, but never ask for the result:
        # the error must be recorded anyway (swallow-proof).
        with pytest.raises(InjectedFault):
            handle.result(timeout=60.0)
    finally:
        injector.deactivate()
        online.close()
    stats = online.stats()
    assert stats["refresh_failures"] == failures_before + 1
    assert stats["last_refresh_error"].startswith("InjectedFault")


# --------------------------------------------------------------------- #
# Breaker wiring details
# --------------------------------------------------------------------- #


def test_breakers_are_per_group_and_configured_from_policy(online_setup):
    _, _, online = online_setup
    breaker = online._breaker("group-a")
    assert breaker is online._breaker("group-a")  # cached per group
    assert breaker is not online._breaker("group-b")
    assert breaker.failure_threshold == online.policy.quarantine_after
    assert breaker.state == CircuitBreaker.CLOSED
