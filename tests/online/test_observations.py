"""ObservationBuffer: bounding, grouping, and JSONL persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.schema import JobContext
from repro.online import Observation, ObservationBuffer, context_from_dict, context_to_dict


@pytest.fixture()
def ctx() -> JobContext:
    return JobContext("sgd", "m4.xlarge", 1000, "dense", (("k", "10"),))


@pytest.fixture()
def other_ctx() -> JobContext:
    return JobContext("kmeans", "c3.4xlarge", 500, "sparse")


def test_context_round_trips_through_dict(ctx):
    assert context_from_dict(context_to_dict(ctx)) == ctx


def test_observation_round_trips_and_validates(ctx):
    obs = Observation(ctx, 8, 240.0, predicted_s=230.0)
    assert Observation.from_dict(obs.to_dict()) == obs
    assert obs.group == ctx.context_id
    with pytest.raises(ValueError):
        Observation(ctx, 0, 240.0)
    with pytest.raises(ValueError):
        Observation(ctx, 8, float("nan"))
    with pytest.raises(ValueError):
        Observation(ctx, 8, -1.0)


def test_buffer_groups_and_bounds(ctx, other_ctx):
    buffer = ObservationBuffer(capacity_per_group=3)
    for runtime in (100.0, 110.0, 120.0, 130.0):
        buffer.add(Observation(ctx, 4, runtime))
    buffer.add(Observation(other_ctx, 8, 50.0))

    assert buffer.group_ids() == [ctx.context_id, other_ctx.context_id]
    assert buffer.counts() == {ctx.context_id: 3, other_ctx.context_id: 1}
    assert len(buffer) == 4
    assert buffer.total_recorded == 5  # the dropped one still counted
    # Bounded: the oldest observation of the hot group was dropped.
    machines, runtimes = buffer.samples(ctx.context_id)
    assert runtimes.tolist() == [110.0, 120.0, 130.0]
    # newest=N window
    _, newest = buffer.samples(ctx.context_id, newest=2)
    assert newest.tolist() == [120.0, 130.0]
    assert buffer.context_for(ctx.context_id) == ctx
    assert buffer.context_for("unknown") is None
    assert ctx.context_id in buffer and "unknown" not in buffer


def test_jsonl_persistence_and_replay(tmp_path, ctx, other_ctx):
    path = tmp_path / "observations.jsonl"
    buffer = ObservationBuffer(capacity_per_group=8, path=path)
    buffer.add(Observation(ctx, 4, 100.0, predicted_s=95.0))
    buffer.add(Observation(other_ctx, 8, 50.0))

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 2
    assert lines[0]["runtime_s"] == 100.0
    assert lines[0]["predicted_s"] == 95.0
    assert "predicted_s" not in lines[1]

    # A restarted process replays the file.
    replayed = ObservationBuffer(capacity_per_group=8, path=path)
    assert replayed.counts() == buffer.counts()
    machines, runtimes = replayed.samples(ctx.context_id)
    assert machines.tolist() == [4.0] and runtimes.tolist() == [100.0]
    assert replayed.for_group(ctx.context_id)[0].predicted_s == 95.0

    # Replay respects the bound: only the newest N per group survive.
    for runtime in np.linspace(100, 200, 11):
        buffer.add(Observation(ctx, 4, float(runtime)))
    small = ObservationBuffer(capacity_per_group=3, path=path)
    assert small.counts()[ctx.context_id] == 3
    _, runtimes = small.samples(ctx.context_id)
    assert runtimes.tolist() == [180.0, 190.0, 200.0]


def test_replay_skips_torn_or_invalid_lines(tmp_path, ctx):
    """A crash mid-append must never prevent the service from restarting."""
    path = tmp_path / "observations.jsonl"
    buffer = ObservationBuffer(path=path)
    buffer.add(Observation(ctx, 4, 100.0))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"context": {"algorithm": "sgd", "node_ty')  # torn line
    replayed = ObservationBuffer(path=path)
    assert len(replayed) == 1
    assert replayed.skipped_lines == 1
    # An invalid-but-decodable record (negative runtime) is skipped too.
    with path.open("a", encoding="utf-8") as handle:
        handle.write("\n" + json.dumps(
            {"context": {"algorithm": "a", "node_type": "n", "dataset_mb": 1},
             "machines": 4, "runtime_s": -5.0}
        ) + "\n")
    replayed = ObservationBuffer(path=path)
    assert len(replayed) == 1
    assert replayed.skipped_lines == 2


def test_group_count_is_bounded(ctx):
    """A fresh context per observation must not grow the buffer unboundedly."""
    buffer = ObservationBuffer(capacity_per_group=4, max_groups=3)
    contexts = [
        JobContext("sgd", "m4", 100 + i, "dense") for i in range(6)
    ]
    for context in contexts:
        buffer.add(Observation(context, 4, 100.0))
    assert len(buffer.group_ids()) == 3
    # Least recently updated groups were dropped; the newest survive.
    assert buffer.group_ids() == [c.context_id for c in contexts[3:]]
    # Updating an old survivor keeps it alive through further churn.
    buffer.add(Observation(contexts[3], 4, 101.0))
    buffer.add(Observation(JobContext("sgd", "m4", 999, "dense"), 4, 100.0))
    assert contexts[3].context_id in buffer


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ObservationBuffer(capacity_per_group=0)
    with pytest.raises(ValueError):
        ObservationBuffer(max_groups=0)
