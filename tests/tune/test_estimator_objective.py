"""Tests of registry/Session-backed tuning objectives (repro.tune.runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.core.config import BellamyConfig
from repro.tune import GridSearch, SearchSpace, Categorical, estimator_objective, tune_estimator

TRAIN_MACHINES = np.array([2.0, 4.0, 8.0])
TRAIN_RUNTIMES = np.array([400.0, 220.0, 130.0])
TEST_MACHINES = np.array([6.0])
TEST_RUNTIMES = np.array([160.0])


class TestEstimatorObjective:
    def test_registry_objective_scores(self, sgd_context):
        objective = estimator_objective(
            "nnls",
            sgd_context,
            TRAIN_MACHINES,
            TRAIN_RUNTIMES,
            TEST_MACHINES,
            TEST_RUNTIMES,
        )
        score = objective({})
        assert score >= 0.0 and np.isfinite(score)

    def test_metric_validation(self, sgd_context):
        with pytest.raises(ValueError, match="metric"):
            estimator_objective(
                "nnls",
                sgd_context,
                TRAIN_MACHINES,
                TRAIN_RUNTIMES,
                TEST_MACHINES,
                TEST_RUNTIMES,
                metric="rmse",
            )

    def test_mre_scales_by_actual(self, sgd_context):
        common = (sgd_context, TRAIN_MACHINES, TRAIN_RUNTIMES, TEST_MACHINES, TEST_RUNTIMES)
        mae = estimator_objective("nnls", *common)({})
        mre = estimator_objective("nnls", *common, metric="mre")({})
        assert mre == pytest.approx(mae / TEST_RUNTIMES[0])

    def test_budget_maps_to_max_epochs(self, sgd_context):
        objective = estimator_objective(
            "bellamy-local",
            sgd_context,
            TRAIN_MACHINES,
            TRAIN_RUNTIMES,
            TEST_MACHINES,
            TEST_RUNTIMES,
            base_params={
                "config": BellamyConfig(
                    finetune_max_epochs=5, finetune_patience=3, seed=0
                )
            },
        )
        score = objective({}, budget=2)
        assert np.isfinite(score)

    def test_tune_estimator_with_session(self, c3o_dataset):
        config = BellamyConfig(
            pretrain_epochs=2, finetune_max_epochs=3, finetune_patience=2, seed=0
        )
        contexts = c3o_dataset.for_algorithm("sgd").contexts()[:3]
        wanted = {c.context_id for c in contexts}
        corpus = c3o_dataset.filter(lambda e: e.context.context_id in wanted)
        target = contexts[0]
        session = Session(corpus, config=config, seed=0)
        space = SearchSpace({"max_epochs": Categorical([2, 3])})
        result = tune_estimator(
            GridSearch(space),
            "bellamy-ft",
            target,
            TRAIN_MACHINES,
            TRAIN_RUNTIMES,
            TEST_MACHINES,
            TEST_RUNTIMES,
            n_trials=2,
            session=session,
        )
        assert len(result.trials) == 2
        assert result.best.score >= 0.0
        # The session pre-trained the base model exactly once for both
        # trials, leave-one-out: the target's executions left the corpus.
        assert len(session.pretrain_seconds) == 1
        (key,) = session.pretrain_seconds
        assert key == ("sgd", "full", target.context_id)
        loo_corpus = session.corpus_for("sgd", "full", target)
        assert all(e.context.context_id != target.context_id for e in loo_corpus)
