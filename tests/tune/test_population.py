"""run_population: fused population scoring equals per-trial run_search."""

from __future__ import annotations

import pytest

from repro.tune import RandomSearch, run_population, run_search
from repro.tune.space import Categorical, LogUniform, SearchSpace


def _space() -> SearchSpace:
    return SearchSpace(
        {"lr": LogUniform(1e-4, 1e-1), "width": Categorical([4, 8, 16])}
    )


def _objective(config):
    return float(config["lr"]) * float(config["width"])


def test_run_population_scores_match_run_search():
    serial = run_search(RandomSearch(_space(), seed=7), _objective, 6)
    fused = run_population(
        RandomSearch(_space(), seed=7),
        lambda configs: [_objective(c) for c in configs],
        6,
    )
    assert [t.config for t in fused.trials] == [t.config for t in serial.trials]
    assert [t.score for t in fused.trials] == [t.score for t in serial.trials]
    assert fused.best.config == serial.best.config


def test_run_population_rejects_mismatched_score_count():
    with pytest.raises(ValueError, match="returned 2 scores for 3"):
        run_population(
            RandomSearch(_space(), seed=0), lambda configs: [1.0, 2.0], 3
        )
