"""Parallel tune trials: bit-identical scores for any executor/worker count."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.tune import (
    IntRange,
    LogUniform,
    RandomSearch,
    SearchSpace,
    run_search,
    run_successive_halving,
)


def _space() -> SearchSpace:
    return SearchSpace(
        {"lr": LogUniform(1e-4, 1e-1), "width": IntRange(4, 32)}
    )


def _objective(config, budget=None):
    """Deterministic, CPU-cheap stand-in for an estimator fit."""
    rng = np.random.default_rng(int(config["width"]))
    noise = float(rng.normal())
    score = abs(np.log10(config["lr"]) + 2.5) + 0.01 * noise
    if budget is not None:
        score /= np.sqrt(budget)
    return score


def _key(result):
    return [(tuple(sorted(t.config.items())), t.score, t.budget) for t in result.trials]


class TestParallelSearch:
    def test_scores_identical_across_executors(self):
        reference = run_search(RandomSearch(_space(), seed=0), _objective, 12)
        for executor in (SerialExecutor(), ThreadExecutor(3), ProcessExecutor(2)):
            with executor:
                result = run_search(
                    RandomSearch(_space(), seed=0), _objective, 12, executor=executor
                )
            assert _key(result) == _key(reference)
            assert result.best.config == reference.best.config
            assert result.best.score == reference.best.score  # bitwise

    def test_jobs_knob_identical(self, monkeypatch):
        reference = run_search(RandomSearch(_space(), seed=1), _objective, 8)
        threaded = run_search(RandomSearch(_space(), seed=1), _objective, 8, jobs=4)
        assert _key(threaded) == _key(reference)
        monkeypatch.setenv("REPRO_JOBS", "2")
        env_driven = run_search(RandomSearch(_space(), seed=1), _objective, 8)
        assert _key(env_driven) == _key(reference)

    def test_successive_halving_identical_across_workers(self):
        def run(executor=None, jobs=None):
            return run_successive_halving(
                RandomSearch(_space(), seed=2),
                _objective,
                n_trials=9,
                min_budget=1,
                max_budget=9,
                eta=3,
                jobs=jobs,
                executor=executor,
            )

        reference = run()
        with ThreadExecutor(4) as executor:
            assert _key(run(executor=executor)) == _key(reference)
        assert _key(run(jobs=3)) == _key(reference)
        # Rung structure (budget progression + survivor promotion) is also
        # worker-count independent.
        assert [t.budget for t in reference.trials] == [t.budget for t in run(jobs=2).trials]

    def test_trial_errors_propagate(self):
        def exploding(config, budget=None):
            raise RuntimeError("objective blew up")

        with pytest.raises(RuntimeError, match="objective blew up"):
            run_search(RandomSearch(_space(), seed=0), exploding, 4, jobs=2)
