"""Extended tests for search spaces and the trial runner (repro.tune)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune.runner import TuneResult, run_search, run_successive_halving
from repro.tune.search import GridSearch, RandomSearch
from repro.tune.space import (
    Categorical,
    IntRange,
    LogUniform,
    SearchSpace,
    Uniform,
)
from repro.utils.rng import new_rng


class TestDomains:
    def test_categorical_empty_rejected(self):
        with pytest.raises(ValueError):
            Categorical([])

    def test_categorical_contains(self):
        domain = Categorical([1e-1, 1e-2])
        assert domain.contains(1e-2) and not domain.contains(5e-3)

    def test_uniform_bounds(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)

    def test_uniform_not_enumerable(self):
        with pytest.raises(TypeError, match="cannot be enumerated"):
            Uniform(0.0, 1.0).grid()

    def test_loguniform_requires_positive_low(self):
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)

    def test_int_range_inclusive(self):
        assert IntRange(2, 4).grid() == [2, 3, 4]

    def test_int_range_single_point(self):
        assert IntRange(7, 7).grid() == [7]

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_samples_inside_domains(self, seed):
        rng = new_rng(seed)
        for domain in (
            Categorical(["a", "b"]),
            Uniform(-1.0, 1.0),
            LogUniform(1e-4, 1e-1),
            IntRange(3, 9),
        ):
            assert domain.contains(domain.sample(rng))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_loguniform_spans_decades(self, seed):
        """Log-uniform sampling is roughly uniform in log space."""
        rng = new_rng(seed)
        domain = LogUniform(1e-4, 1e0)
        draws = np.array([domain.sample(rng) for _ in range(200)])
        logs = np.log10(draws)
        assert logs.min() < -2.5 and logs.max() > -1.5  # hits both halves


class TestSearchSpace:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})

    def test_grid_is_cartesian_product(self):
        space = SearchSpace(
            {"a": Categorical([1, 2]), "b": Categorical(["x", "y", "z"])}
        )
        grid = space.grid()
        assert len(grid) == space.size() == 6
        assert {tuple(sorted(c.items())) for c in grid} == {
            (("a", a), ("b", b)) for a in (1, 2) for b in ("x", "y", "z")
        }

    def test_contains_requires_all_dimensions(self):
        space = SearchSpace({"a": Categorical([1]), "b": IntRange(0, 5)})
        assert space.contains({"a": 1, "b": 3})
        assert not space.contains({"a": 1})
        assert not space.contains({"a": 1, "b": 9})


class TestSearchers:
    def test_grid_search_covers_grid(self):
        space = SearchSpace({"lr": Categorical([1e-1, 1e-2, 1e-3])})
        configs = GridSearch(space).suggest(3)
        assert [c["lr"] for c in configs] == [1e-1, 1e-2, 1e-3]

    def test_random_search_deterministic(self):
        space = SearchSpace({"x": Uniform(0.0, 1.0)})
        a = RandomSearch(space, seed=3).suggest(5)
        b = RandomSearch(space, seed=3).suggest(5)
        assert a == b

    def test_random_search_inside_space(self):
        space = SearchSpace({"x": LogUniform(1e-3, 1e-1), "k": IntRange(1, 4)})
        for config in RandomSearch(space, seed=0).suggest(20):
            assert space.contains(config)


class TestRunner:
    @pytest.fixture
    def space(self):
        return SearchSpace({"x": Categorical([0.0, 1.0, 2.0, 3.0, 4.0])})

    def test_run_search_finds_minimum(self, space):
        result = run_search(GridSearch(space), lambda c: (c["x"] - 2.0) ** 2, 5)
        assert result.best.config["x"] == 2.0
        assert len(result.trials) == 5

    def test_sorted_trials(self, space):
        result = run_search(GridSearch(space), lambda c: c["x"], 5)
        scores = [t.score for t in result.sorted_trials()]
        assert scores == sorted(scores)

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError, match="no trials"):
            TuneResult().best

    def test_successive_halving_promotes_best(self, space):
        budgets_seen: dict = {}

        def objective(config, budget):
            budgets_seen.setdefault(config["x"], []).append(budget)
            return (config["x"] - 2.0) ** 2 + 1.0 / budget

        result = run_successive_halving(
            GridSearch(space), objective, n_trials=5, min_budget=1, max_budget=9, eta=3
        )
        assert result.best.config["x"] == 2.0
        # The winner advanced to a higher budget; once it is the only
        # survivor the rung loop stops (no competition left to resolve).
        assert budgets_seen[2.0] == [1, 3]
        assert budgets_seen[4.0] == [1]

    def test_successive_halving_total_cost_below_full_grid(self, space):
        calls = []

        def objective(config, budget):
            calls.append(budget)
            return config["x"]

        run_successive_halving(
            GridSearch(space), objective, n_trials=5, min_budget=1, max_budget=9, eta=3
        )
        # Full evaluation would cost 5 * 9 = 45 budget units.
        assert sum(calls) < 45

    def test_successive_halving_validation(self, space):
        with pytest.raises(ValueError):
            run_successive_halving(
                GridSearch(space), lambda c, budget: 0.0, 2, min_budget=0, max_budget=4
            )
        with pytest.raises(ValueError):
            run_successive_halving(
                GridSearch(space), lambda c, budget: 0.0, 2,
                min_budget=1, max_budget=4, eta=1,
            )

    def test_budget_capped_at_max(self, space):
        budgets = set()

        def objective(config, budget):
            budgets.add(budget)
            return config["x"]

        run_successive_halving(
            GridSearch(space), objective, n_trials=5, min_budget=4, max_budget=10, eta=3
        )
        assert max(budgets) <= 10
