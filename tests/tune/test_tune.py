"""Tests of the hyperparameter-search substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tune import (
    Categorical,
    GridSearch,
    IntRange,
    LogUniform,
    RandomSearch,
    SearchSpace,
    Uniform,
    run_search,
    run_successive_halving,
)


@pytest.fixture()
def table1_space() -> SearchSpace:
    return SearchSpace(
        {
            "dropout": Categorical([0.05, 0.10, 0.20]),
            "learning_rate": Categorical([1e-1, 1e-2, 1e-3]),
            "weight_decay": Categorical([1e-2, 1e-3, 1e-4]),
        }
    )


class TestDomains:
    def test_categorical_sample_and_grid(self):
        domain = Categorical([1, 2, 3])
        assert domain.grid() == [1, 2, 3]
        assert domain.sample(np.random.default_rng(0)) in (1, 2, 3)
        assert domain.contains(2) and not domain.contains(9)

    def test_categorical_empty_rejected(self):
        with pytest.raises(ValueError):
            Categorical([])

    def test_uniform_bounds(self):
        domain = Uniform(0.0, 1.0)
        rng = np.random.default_rng(0)
        samples = [domain.sample(rng) for _ in range(100)]
        assert all(0.0 <= s < 1.0 for s in samples)
        with pytest.raises(TypeError):
            domain.grid()

    def test_loguniform_spans_decades(self):
        domain = LogUniform(1e-4, 1e-1)
        rng = np.random.default_rng(0)
        samples = np.array([domain.sample(rng) for _ in range(500)])
        assert samples.min() < 1e-3 and samples.max() > 1e-2

    def test_loguniform_validation(self):
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)

    def test_int_range(self):
        domain = IntRange(2, 5)
        assert domain.grid() == [2, 3, 4, 5]
        assert domain.contains(3) and not domain.contains(6)


class TestSearchSpace:
    def test_grid_size(self, table1_space):
        # Table I: 3 x 3 x 3 = 27 grid points.
        assert table1_space.size() == 27
        assert len(table1_space.grid()) == 27

    def test_sample_within_space(self, table1_space):
        config = table1_space.sample(np.random.default_rng(0))
        assert table1_space.contains(config)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})


class TestSearchers:
    def test_random_search_dedupes(self, table1_space):
        # Sampling 12 distinct configs from a 27-point grid (the paper's setup).
        configs = RandomSearch(table1_space, seed=0).suggest(12)
        assert len(configs) == 12
        keys = {tuple(sorted(c.items())) for c in configs}
        assert len(keys) == 12

    def test_random_search_deterministic(self, table1_space):
        a = RandomSearch(table1_space, seed=5).suggest(6)
        b = RandomSearch(table1_space, seed=5).suggest(6)
        assert a == b

    def test_random_search_invalid_n(self, table1_space):
        with pytest.raises(ValueError):
            RandomSearch(table1_space, seed=0).suggest(0)

    def test_grid_search_enumerates_all(self, table1_space):
        assert len(GridSearch(table1_space).suggest()) == 27

    def test_grid_search_truncates(self, table1_space):
        assert len(GridSearch(table1_space).suggest(5)) == 5


class TestRunners:
    def test_run_search_finds_minimum(self, table1_space):
        def objective(config):
            return config["dropout"] + config["learning_rate"]

        result = run_search(GridSearch(table1_space), objective, 27)
        assert result.best.config["dropout"] == 0.05
        assert result.best.config["learning_rate"] == 1e-3

    def test_trials_recorded(self, table1_space):
        result = run_search(RandomSearch(table1_space, seed=0), lambda c: 1.0, 4)
        assert len(result.trials) == 4
        assert all(t.wall_seconds >= 0 for t in result.trials)

    def test_sorted_trials(self, table1_space):
        def objective(config):
            return config["dropout"]

        result = run_search(GridSearch(table1_space), objective, 9)
        scores = [t.score for t in result.sorted_trials()]
        assert scores == sorted(scores)

    def test_empty_result_best_raises(self):
        from repro.tune.runner import TuneResult

        with pytest.raises(ValueError):
            TuneResult().best

    def test_successive_halving_promotes_best(self, table1_space):
        calls = []

        def objective(config, budget):
            calls.append(budget)
            return config["dropout"] * 100 / budget

        result = run_successive_halving(
            RandomSearch(table1_space, seed=0),
            objective,
            n_trials=9,
            min_budget=1,
            max_budget=9,
            eta=3,
        )
        # Rung budgets increase geometrically.
        assert min(calls) == 1 and max(calls) == 9
        assert result.best.budget == 9

    def test_successive_halving_validation(self, table1_space):
        search = RandomSearch(table1_space, seed=0)
        with pytest.raises(ValueError):
            run_successive_halving(search, lambda c, budget: 0.0, 3, 0, 10)
        with pytest.raises(ValueError):
            run_successive_halving(search, lambda c, budget: 0.0, 3, 1, 10, eta=1)
