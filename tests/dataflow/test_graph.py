"""Tests for the dataflow-graph representation (repro.dataflow.graph)."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import DataflowGraph, Operator, OperatorKind


def _op(name: str, kind: OperatorKind = OperatorKind.MAP, **kwargs) -> Operator:
    return Operator(name, kind, **kwargs)


@pytest.fixture
def diamond() -> DataflowGraph:
    """source -> (left, right) -> sink."""
    return DataflowGraph(
        operators=[
            _op("src", OperatorKind.SOURCE),
            _op("left"),
            _op("right"),
            _op("sink", OperatorKind.SINK),
        ],
        edges=[("src", "left"), ("src", "right"), ("left", "sink"), ("right", "sink")],
        name="diamond",
    )


class TestOperator:
    def test_valid(self):
        op = _op("a", cpu_ms_per_mb=2.0, shuffle_fraction=0.5)
        assert op.shuffle_fraction == 0.5

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Operator("", OperatorKind.MAP)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Operator("a", OperatorKind.MAP, cpu_ms_per_mb=-1.0)

    def test_shuffle_fraction_bounds(self):
        with pytest.raises(ValueError):
            Operator("a", OperatorKind.MAP, shuffle_fraction=1.5)

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError):
            Operator("a", OperatorKind.MAP, selectivity=-0.1)

    def test_kind_order_stable(self):
        kinds = OperatorKind.ordered()
        assert kinds[0] is OperatorKind.SOURCE
        assert kinds[-1] is OperatorKind.SINK
        assert len(kinds) == len(set(kinds)) == 7


class TestGraphConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one operator"):
            DataflowGraph(operators=[], edges=[])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataflowGraph(operators=[_op("a"), _op("a")], edges=[])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            DataflowGraph(operators=[_op("a")], edges=[("a", "b")])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DataflowGraph(operators=[_op("a")], edges=[("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            DataflowGraph(
                operators=[_op("a"), _op("b")],
                edges=[("a", "b"), ("b", "a")],
            )

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError, match="iterations"):
            DataflowGraph(operators=[_op("a")], edges=[], iterations=0)


class TestGraphStructure:
    def test_len_and_contains(self, diamond):
        assert len(diamond) == 4
        assert "left" in diamond
        assert "nope" not in diamond

    def test_operator_lookup(self, diamond):
        assert diamond.operator("src").kind is OperatorKind.SOURCE
        with pytest.raises(KeyError):
            diamond.operator("nope")

    def test_edges_roundtrip(self, diamond):
        assert ("src", "left") in diamond.edges()
        assert len(diamond.edges()) == 4

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors("src")) == {"left", "right"}
        assert diamond.predecessors("sink") == ["left", "right"]

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ["src"]
        assert diamond.sinks() == ["sink"]

    def test_topological_order_valid(self, diamond):
        order = diamond.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for producer, consumer in diamond.edges():
            assert position[producer] < position[consumer]

    def test_depth_width(self, diamond):
        assert diamond.depth() == 3  # src -> left/right -> sink
        assert diamond.width() == 2  # left and right share a level

    def test_kind_counts_zero_filled(self, diamond):
        counts = diamond.kind_counts()
        assert counts[OperatorKind.MAP] == 2
        assert counts[OperatorKind.JOIN] == 0

    def test_loop_body_and_shuffles(self):
        graph = DataflowGraph(
            operators=[
                _op("s", OperatorKind.SOURCE),
                _op("body", in_loop=True, shuffle_fraction=0.2),
                _op("t", OperatorKind.SINK),
            ],
            edges=[("s", "body"), ("body", "t")],
            iterations=10,
        )
        assert [op.name for op in graph.loop_body()] == ["body"]
        assert graph.shuffle_count() == 1

    def test_total_cost_weights_loop(self):
        graph = DataflowGraph(
            operators=[
                _op("once", cpu_ms_per_mb=1.0),
                _op("looped", cpu_ms_per_mb=1.0, in_loop=True),
            ],
            edges=[("once", "looped")],
            iterations=10,
        )
        assert graph.total_cost_annotations()["cpu_ms_per_mb"] == 11.0

    def test_repr(self, diamond):
        assert "diamond" in repr(diamond)
