"""Tests for canonical graphs and their encodings (builders + features)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import JobContext
from repro.dataflow.builders import graph_for_algorithm, graph_for_context
from repro.dataflow.features import (
    NODE_FEATURE_DIM,
    GraphFeaturizer,
    graph_node_features,
    graph_summary_vector,
    graph_text,
    normalized_adjacency,
)
from repro.dataflow.graph import OperatorKind
from repro.simulator.algorithms import C3O_ALGORITHMS


class TestBuilders:
    @pytest.mark.parametrize("algorithm", C3O_ALGORITHMS)
    def test_every_algorithm_has_a_graph(self, algorithm):
        graph = graph_for_algorithm(algorithm)
        assert len(graph) >= 3
        assert graph.sources() and graph.sinks()
        assert graph.name == algorithm

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="no dataflow graph"):
            graph_for_algorithm("wordcount")

    def test_case_insensitive(self):
        assert graph_for_algorithm("SGD").name == "sgd"

    def test_iterative_algorithms_have_loops(self):
        for algorithm in ("sgd", "kmeans", "pagerank"):
            graph = graph_for_algorithm(algorithm)
            assert graph.loop_body(), algorithm
            assert graph.iterations > 1

    def test_batch_algorithms_have_no_loops(self):
        for algorithm in ("grep", "sort"):
            graph = graph_for_algorithm(algorithm)
            assert not graph.loop_body()
            assert graph.iterations == 1

    def test_params_flow_into_iterations(self):
        sparse = graph_for_algorithm("sgd", {"max_iterations": "25"})
        dense = graph_for_algorithm("sgd", {"max_iterations": "100"})
        assert sparse.iterations == 25
        assert dense.iterations == 100

    def test_graph_for_context(self):
        context = JobContext(
            algorithm="pagerank",
            node_type="m4.xlarge",
            dataset_mb=8_000,
            dataset_characteristics="web-graph",
            job_params=(("damping", "0.85"), ("iterations", "15")),
        )
        graph = graph_for_context(context)
        assert graph.name == "pagerank"
        assert graph.iterations == 15

    def test_sort_has_shuffle(self):
        graph = graph_for_algorithm("sort")
        assert graph.shuffle_count() >= 1
        kinds = graph.kind_counts()
        assert kinds[OperatorKind.SHUFFLE] >= 1


class TestGraphText:
    def test_deterministic(self):
        a = graph_text(graph_for_algorithm("kmeans", {"iterations": "20"}))
        b = graph_text(graph_for_algorithm("kmeans", {"iterations": "20"}))
        assert a == b

    def test_iterations_change_text(self):
        a = graph_text(graph_for_algorithm("sgd", {"max_iterations": "25"}))
        b = graph_text(graph_for_algorithm("sgd", {"max_iterations": "100"}))
        assert a != b

    def test_algorithms_distinct(self):
        texts = {graph_text(graph_for_algorithm(a)) for a in C3O_ALGORITHMS}
        assert len(texts) == len(C3O_ALGORITHMS)

    def test_contains_structure(self):
        text = graph_text(graph_for_algorithm("grep"))
        assert "source:read-text" in text
        assert "read-text>filter-pattern" in text


class TestNumericFeatures:
    @pytest.mark.parametrize("algorithm", C3O_ALGORITHMS)
    def test_feature_shapes(self, algorithm):
        graph = graph_for_algorithm(algorithm)
        features = graph_node_features(graph)
        adjacency = normalized_adjacency(graph)
        assert features.shape == (len(graph), NODE_FEATURE_DIM)
        assert adjacency.shape == (len(graph), len(graph))

    def test_one_hot_rows(self):
        graph = graph_for_algorithm("grep")
        features = graph_node_features(graph)
        n_kinds = len(OperatorKind.ordered())
        np.testing.assert_array_equal(
            features[:, :n_kinds].sum(axis=1), np.ones(len(graph))
        )

    def test_adjacency_symmetric_normalized(self):
        graph = graph_for_algorithm("sort")
        adjacency = normalized_adjacency(graph)
        np.testing.assert_allclose(adjacency, adjacency.T)
        eigenvalues = np.linalg.eigvalsh(adjacency)
        assert eigenvalues.max() <= 1.0 + 1e-9  # spectral norm of GCN A_hat

    def test_loop_flag_marked(self):
        graph = graph_for_algorithm("sgd")
        features = graph_node_features(graph)
        loop_column = features[:, len(OperatorKind.ordered()) + 4]
        assert loop_column.sum() == len(graph.loop_body())

    def test_summary_vector(self):
        summary = graph_summary_vector(graph_for_algorithm("pagerank"))
        assert summary.shape == (12,)
        assert np.all(np.isfinite(summary))

    def test_featurizer_caches(self):
        featurizer = GraphFeaturizer()
        graph = graph_for_algorithm("sgd", {"max_iterations": "50"})
        x1, a1 = featurizer.encode(graph)
        x2, a2 = featurizer.encode(graph_for_algorithm("sgd", {"max_iterations": "50"}))
        assert x1 is x2 and a1 is a2  # same canonical text -> cached arrays
        assert featurizer.cache_size() == 1

    @settings(max_examples=25, deadline=None)
    @given(iterations=st.integers(min_value=1, max_value=200))
    def test_iteration_monotone_in_features(self, iterations):
        """The log-iteration feature grows with the iteration count."""
        graph = graph_for_algorithm("kmeans", {"iterations": str(iterations)})
        features = graph_node_features(graph)
        column = features[:, -1]
        np.testing.assert_allclose(column, np.log1p(float(iterations)))
