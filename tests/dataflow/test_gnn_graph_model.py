"""Tests for the graph encoder and the graph-aware Bellamy variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BellamyConfig
from repro.core.finetuning import FinetuneStrategy, finetune
from repro.core.graph_model import (
    GnnBellamyModel,
    GraphBellamyModel,
    GraphPropertyFeaturizer,
    pretrain_gnn,
)
from repro.core.pretraining import pretrain
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.dataflow.builders import graph_for_algorithm
from repro.dataflow.gnn import GraphEncoder
from repro.simulator.traces import TraceGenerator


@pytest.fixture(scope="module")
def sgd_contexts():
    return [c for c in generate_c3o_contexts(seed=2) if c.algorithm == "sgd"][:3]


@pytest.fixture(scope="module")
def sgd_dataset(sgd_contexts):
    generator = TraceGenerator(seed=2)
    dataset = ExecutionDataset()
    for context in sgd_contexts:
        dataset.extend(generator.executions_for_context(context, (2, 4, 6, 8), 2))
    return dataset


class TestGraphEncoder:
    def test_embedding_shape(self):
        encoder = GraphEncoder(out_dim=4, seed=0)
        embedding = encoder.embed(graph_for_algorithm("sgd"))
        assert embedding.shape == (4,)

    def test_batch_gathers_duplicates(self):
        encoder = GraphEncoder(seed=0)
        graphs = [graph_for_algorithm("sgd")] * 3 + [graph_for_algorithm("grep")]
        batch = encoder(graphs)
        assert batch.shape == (4, encoder.out_dim)
        np.testing.assert_allclose(batch.data[0], batch.data[1])
        assert not np.allclose(batch.data[0], batch.data[3])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one graph"):
            GraphEncoder(seed=0)([])

    def test_deterministic_per_seed(self):
        graph = graph_for_algorithm("kmeans")
        a = GraphEncoder(seed=7).embed(graph).data
        b = GraphEncoder(seed=7).embed(graph).data
        np.testing.assert_array_equal(a, b)

    def test_gradients_flow_to_both_layers(self):
        encoder = GraphEncoder(seed=0)
        batch = encoder([graph_for_algorithm("sgd"), graph_for_algorithm("sort")])
        (batch * batch).sum().backward()
        assert np.abs(encoder.conv1.weight.grad).sum() > 0
        assert np.abs(encoder.conv2.weight.grad).sum() > 0

    def test_reset_changes_weights(self):
        encoder = GraphEncoder(seed=0)
        before = encoder.conv1.weight.data.copy()
        encoder.reset_parameters(seed=123)
        assert not np.array_equal(before, encoder.conv1.weight.data)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            GraphEncoder(out_dim=0)

    def test_shape_validation(self):
        encoder = GraphEncoder(seed=0)
        with pytest.raises(ValueError, match="node features"):
            encoder.embed_arrays(np.zeros((3, 5)), np.eye(3))
        with pytest.raises(ValueError, match="adjacency"):
            encoder.embed_arrays(np.zeros((3, encoder.in_dim)), np.eye(4))

    def test_trains_on_synthetic_objective(self):
        """The encoder can learn to separate graphs by iteration count."""
        from repro.nn.optim import Adam

        encoder = GraphEncoder(out_dim=1, seed=0)
        graphs = [
            graph_for_algorithm("sgd", {"max_iterations": str(n)})
            for n in (25, 50, 75, 100)
        ]
        targets = np.log1p([25.0, 50.0, 75.0, 100.0])
        targets = (targets - targets.mean()) / targets.std()
        optimizer = Adam(encoder.parameters(), lr=1e-2)
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            out = encoder(graphs).reshape(4)
            loss = ((out - targets) ** 2).mean()
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.2


class TestGraphPropertyModel:
    def test_featurizer_appends_graph_property(self, sgd_contexts):
        config = BellamyConfig()
        plain = len(
            GraphPropertyFeaturizer(config).property_values(sgd_contexts[0])
        )
        base = len(
            __import__(
                "repro.core.features", fromlist=["BellamyFeaturizer"]
            ).BellamyFeaturizer(config).property_values(sgd_contexts[0])
        )
        assert plain == base + 1

    def test_no_optional_skips_graph(self, sgd_contexts):
        config = BellamyConfig(use_optional=False)
        values = GraphPropertyFeaturizer(config).property_values(sgd_contexts[0])
        assert len(values) == config.n_essential

    def test_pretrain_roundtrip(self, sgd_dataset, sgd_contexts):
        result = pretrain(
            sgd_dataset, "sgd", epochs=25, model_factory=GraphBellamyModel
        )
        assert isinstance(result.model, GraphBellamyModel)
        prediction = result.model.predict_one(sgd_contexts[0], 6)
        assert np.isfinite(prediction) and prediction >= 0

    def test_finetune_preserves_class(self, sgd_dataset, sgd_contexts):
        base = pretrain(
            sgd_dataset, "sgd", epochs=20, model_factory=GraphBellamyModel
        ).model
        result = finetune(base, sgd_contexts[0], [2, 6], [300.0, 200.0], max_epochs=15)
        assert isinstance(result.model, GraphBellamyModel)

    def test_persistence_roundtrip(self, sgd_dataset, sgd_contexts, tmp_path):
        model = pretrain(
            sgd_dataset, "sgd", epochs=15, model_factory=GraphBellamyModel
        ).model
        state = model.full_state_dict()
        clone = GraphBellamyModel(model.config)
        clone.load_full_state_dict(state)
        np.testing.assert_allclose(
            clone.predict(sgd_contexts[0], [4, 8]),
            model.predict(sgd_contexts[0], [4, 8]),
        )


class TestGnnModel:
    @pytest.fixture(scope="class")
    def pretrained(self, sgd_dataset):
        return pretrain_gnn(sgd_dataset, "sgd", epochs=25, seed=0)

    def test_pretrain_produces_gnn_model(self, pretrained):
        assert isinstance(pretrained.model, GnnBellamyModel)
        assert pretrained.variant == "gnn"

    def test_prediction_finite(self, pretrained, sgd_contexts):
        prediction = pretrained.model.predict(sgd_contexts[0], [2, 6, 12])
        assert prediction.shape == (3,)
        assert np.all(np.isfinite(prediction)) and np.all(prediction >= 0)

    def test_forward_requires_contexts(self, pretrained):
        from repro.nn.tensor import Tensor

        model = pretrained.model
        model.pending_contexts = None
        with pytest.raises(RuntimeError, match="needs contexts"):
            model.forward(Tensor(np.zeros((1, 3))), Tensor(np.zeros((1, 8, 40))))

    def test_finetune_freezes_graph_encoder(self, pretrained, sgd_contexts):
        result = finetune(
            pretrained.model,
            sgd_contexts[0],
            [2, 6],
            [300.0, 200.0],
            strategy=FinetuneStrategy.FULL_UNFREEZE,
            max_epochs=15,
        )
        before = dict(pretrained.model.graph_encoder.named_parameters())
        after = dict(result.model.graph_encoder.named_parameters())
        for name in before:
            np.testing.assert_array_equal(before[name].data, after[name].data)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="no executions"):
            pretrain_gnn(ExecutionDataset(), "sgd", epochs=5)
