"""Tests for the real-trace import adapters (repro.data.real_traces)."""

from __future__ import annotations

import pytest

from repro.data.real_traces import (
    BELL_DEFAULT_MAPPING,
    C3O_DEFAULT_MAPPING,
    ColumnMapping,
    load_real_traces,
    load_trace_directory,
)

C3O_STYLE_CSV = """\
machine_count,instance_type,data_size_MB,data_characteristics,gross_runtime,iterations
2,m4.xlarge,19353,dense,412.5,25
4,m4.xlarge,19353,dense,265.0,25
4,m4.xlarge,19353,dense,259.3,25
8,r4.2xlarge,14540,sparse,180.1,100
"""

TSV_NO_CHARACTERISTICS = (
    "scaleout\tnode_type\tinput_mb\tduration_s\n"
    "4\tcluster-node\t60000\t900.0\n"
    "8\tcluster-node\t60000\t520.0\n"
)


@pytest.fixture
def c3o_file(tmp_path):
    path = tmp_path / "sgd.csv"
    path.write_text(C3O_STYLE_CSV, encoding="utf-8")
    return path


class TestColumnMapping:
    def test_invalid_units_rejected(self):
        with pytest.raises(ValueError, match="runtime_unit"):
            ColumnMapping(runtime_unit="hours")
        with pytest.raises(ValueError, match="size_unit"):
            ColumnMapping(size_unit="tb")

    def test_with_overrides(self):
        mapping = C3O_DEFAULT_MAPPING.with_overrides(machines="n_machines")
        assert mapping.machines == "n_machines"
        assert mapping.runtime == C3O_DEFAULT_MAPPING.runtime


class TestLoadRealTraces:
    def test_basic_load(self, c3o_file):
        mapping = C3O_DEFAULT_MAPPING.with_overrides(param_columns=("iterations",))
        dataset = load_real_traces(c3o_file, mapping=mapping, algorithm="sgd")
        assert len(dataset) == 4
        assert dataset.algorithms() == ["sgd"]
        assert len(dataset.contexts()) == 2

    def test_repeat_numbering(self, c3o_file):
        dataset = load_real_traces(c3o_file, algorithm="sgd")
        at_four = [e for e in dataset if e.machines == 4]
        assert sorted(e.repeat for e in at_four) == [0, 1]

    def test_params_folded(self, c3o_file):
        mapping = C3O_DEFAULT_MAPPING.with_overrides(param_columns=("iterations",))
        dataset = load_real_traces(c3o_file, mapping=mapping, algorithm="sgd")
        assert dataset.contexts()[0].params == {"iterations": "25"}

    def test_requires_algorithm(self, c3o_file):
        with pytest.raises(ValueError, match="algorithm"):
            load_real_traces(c3o_file)

    def test_missing_column_reported(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n", encoding="utf-8")
        with pytest.raises(ValueError, match="missing column"):
            load_real_traces(path, algorithm="sgd")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text(
            "machine_count,instance_type,data_size_MB,gross_runtime\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="no execution rows"):
            load_real_traces(path, algorithm="sgd")

    def test_tsv_with_bell_mapping(self, tmp_path):
        path = tmp_path / "grep.tsv"
        path.write_text(TSV_NO_CHARACTERISTICS, encoding="utf-8")
        dataset = load_real_traces(path, mapping=BELL_DEFAULT_MAPPING, algorithm="grep")
        assert len(dataset) == 2
        context = dataset.contexts()[0]
        assert context.environment == "cluster"
        assert context.dataset_characteristics == ""

    def test_unit_conversion(self, tmp_path):
        path = tmp_path / "gb.csv"
        path.write_text(
            "machine_count,instance_type,data_size_MB,gross_runtime\n"
            "2,m4.xlarge,10,5000\n",
            encoding="utf-8",
        )
        mapping = C3O_DEFAULT_MAPPING.with_overrides(
            size_unit="gb", runtime_unit="ms", characteristics=None
        )
        dataset = load_real_traces(path, mapping=mapping, algorithm="sort")
        execution = dataset[0]
        assert execution.context.dataset_mb == 10 * 1024
        assert execution.runtime_s == pytest.approx(5.0)

    def test_algorithm_column(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "job,machine_count,instance_type,data_size_MB,gross_runtime\n"
            "Sort,2,m4.xlarge,1000,100\n"
            "Grep,4,m4.xlarge,1000,50\n",
            encoding="utf-8",
        )
        mapping = C3O_DEFAULT_MAPPING.with_overrides(
            algorithm_column="job", characteristics=None
        )
        dataset = load_real_traces(path, mapping=mapping)
        assert sorted(dataset.algorithms()) == ["grep", "sort"]


class TestLoadTraceDirectory:
    def test_loads_per_algorithm_files(self, tmp_path):
        for name in ("sort", "grep"):
            (tmp_path / f"{name}.csv").write_text(
                "machine_count,instance_type,data_size_MB,gross_runtime\n"
                "2,m4.xlarge,1000,100\n",
                encoding="utf-8",
            )
        mapping = C3O_DEFAULT_MAPPING.with_overrides(characteristics=None)
        dataset = load_trace_directory(tmp_path, mapping=mapping)
        assert sorted(dataset.algorithms()) == ["grep", "sort"]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no files"):
            load_trace_directory(tmp_path)
