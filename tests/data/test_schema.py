"""Tests of the data schema (contexts, executions, parameter text form)."""

from __future__ import annotations

import pytest

from repro.data.schema import Execution, JobContext, params_to_text


class TestParamsText:
    def test_roundtrip_form(self):
        assert params_to_text({"k": "10", "iterations": "20"}) == "k=10 iterations=20"

    def test_empty(self):
        assert params_to_text({}) == ""


class TestJobContext:
    def test_context_id_auto_derived(self, sgd_context):
        assert sgd_context.context_id == sgd_context.descriptor()

    def test_descriptor_unique_per_field(self, sgd_context):
        other = JobContext(
            algorithm=sgd_context.algorithm,
            node_type="r4.2xlarge",  # only the node type differs
            dataset_mb=sgd_context.dataset_mb,
            dataset_characteristics=sgd_context.dataset_characteristics,
            job_params=sgd_context.job_params,
        )
        assert other.context_id != sgd_context.context_id

    def test_equal_fields_equal_ids(self, sgd_context):
        clone = JobContext(
            algorithm=sgd_context.algorithm,
            node_type=sgd_context.node_type,
            dataset_mb=sgd_context.dataset_mb,
            dataset_characteristics=sgd_context.dataset_characteristics,
            job_params=sgd_context.job_params,
        )
        assert clone.context_id == sgd_context.context_id

    def test_essential_properties_order(self, sgd_context):
        essential = sgd_context.essential_properties()
        assert essential == [
            19353,
            "dense-features",
            "max_iterations=25 step_size=1.0",
            "m4.2xlarge",
        ]

    def test_optional_properties(self, sgd_context):
        memory_mb, cores, name = sgd_context.optional_properties()
        assert memory_mb == 32 * 1024
        assert cores == 8
        assert name == "sgd"

    def test_node_lookup(self, sgd_context):
        assert sgd_context.node.name == "m4.2xlarge"

    def test_params_dict(self, sgd_context):
        assert sgd_context.params == {"max_iterations": "25", "step_size": "1.0"}

    def test_invalid_dataset_size(self):
        with pytest.raises(ValueError):
            JobContext(
                algorithm="grep",
                node_type="m4.xlarge",
                dataset_mb=0,
                dataset_characteristics="mixed-lines",
            )

    def test_frozen(self, sgd_context):
        with pytest.raises(Exception):
            sgd_context.algorithm = "other"


class TestExecution:
    def test_valid(self, sgd_context):
        execution = Execution(context=sgd_context, machines=4, runtime_s=120.0)
        assert execution.machines == 4

    def test_invalid_machines(self, sgd_context):
        with pytest.raises(ValueError):
            Execution(context=sgd_context, machines=0, runtime_s=10.0)

    def test_invalid_runtime(self, sgd_context):
        with pytest.raises(ValueError):
            Execution(context=sgd_context, machines=2, runtime_s=-1.0)
