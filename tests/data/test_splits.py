"""Tests (incl. property tests) of the sub-sampling CV split protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.splits import Split, sample_split, split_arrays, subsample_splits
from repro.data.splits import test_point as get_test_point


class TestSampleSplit:
    def test_train_scaleouts_pairwise_different(self, small_context_dataset, rng):
        for _ in range(30):
            split = sample_split(small_context_dataset, 3, rng)
            machines, _ = split_arrays(small_context_dataset, split)
            assert len(np.unique(machines)) == 3

    def test_interpolation_point_strictly_inside(self, small_context_dataset, rng):
        for _ in range(30):
            split = sample_split(small_context_dataset, 3, rng)
            if split.interpolation_index is None:
                continue
            machines, _ = split_arrays(small_context_dataset, split)
            test_machines, _ = get_test_point(small_context_dataset, split, "interpolation")
            assert machines.min() < test_machines < machines.max()
            assert test_machines not in machines

    def test_extrapolation_point_outside(self, small_context_dataset, rng):
        for _ in range(30):
            split = sample_split(small_context_dataset, 2, rng)
            if split.extrapolation_index is None:
                continue
            machines, _ = split_arrays(small_context_dataset, split)
            test_machines, _ = get_test_point(small_context_dataset, split, "extrapolation")
            assert test_machines < machines.min() or test_machines > machines.max()

    def test_zero_train_points(self, small_context_dataset, rng):
        split = sample_split(small_context_dataset, 0, rng)
        assert split.n_train == 0
        assert split.interpolation_index is None
        assert split.extrapolation_index is not None

    def test_all_scaleouts_used_leaves_no_extrapolation(
        self, small_context_dataset, rng
    ):
        split = sample_split(small_context_dataset, 6, rng)
        assert split.extrapolation_index is None

    def test_too_many_train_points_returns_none(self, small_context_dataset, rng):
        assert sample_split(small_context_dataset, 7, rng) is None

    def test_require_flags(self, small_context_dataset, rng):
        split = sample_split(
            small_context_dataset, 6, rng, require_extrapolation=True
        )
        assert split is None  # no scale-out left outside the range

    def test_negative_n_train_raises(self, small_context_dataset, rng):
        with pytest.raises(ValueError):
            sample_split(small_context_dataset, -1, rng)


class TestSubsampleSplits:
    def test_unique_signatures(self, small_context_dataset):
        splits = subsample_splits(small_context_dataset, 3, 50, seed=0)
        signatures = [split.signature() for split in splits]
        assert len(signatures) == len(set(signatures))

    def test_respects_max_splits(self, small_context_dataset):
        splits = subsample_splits(small_context_dataset, 2, 5, seed=0)
        assert len(splits) <= 5

    def test_deterministic_given_seed(self, small_context_dataset):
        a = subsample_splits(small_context_dataset, 3, 10, seed=42)
        b = subsample_splits(small_context_dataset, 3, 10, seed=42)
        assert [s.signature() for s in a] == [s.signature() for s in b]

    def test_different_seeds_differ(self, small_context_dataset):
        a = subsample_splits(small_context_dataset, 3, 10, seed=1)
        b = subsample_splits(small_context_dataset, 3, 10, seed=2)
        assert [s.signature() for s in a] != [s.signature() for s in b]

    def test_impossible_request_returns_empty(self, small_context_dataset):
        assert subsample_splits(small_context_dataset, 12, 10, seed=0) == []

    def test_max_splits_validation(self, small_context_dataset):
        with pytest.raises(ValueError):
            subsample_splits(small_context_dataset, 2, 0, seed=0)

    @given(st.integers(0, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_seed(self, n_train, seed):
        # Build a deterministic miniature dataset inline (hypothesis forbids
        # function-scoped fixtures).
        from repro.data.dataset import ExecutionDataset
        from repro.data.schema import Execution, JobContext

        context = JobContext("grep", "m4.xlarge", 1000, "mixed-lines")
        executions = [
            Execution(context=context, machines=m, runtime_s=100.0 / m + r, repeat=r)
            for m in (2, 4, 6, 8, 10, 12)
            for r in range(2)
        ]
        dataset = ExecutionDataset(executions)
        for split in subsample_splits(dataset, n_train, 5, seed=seed):
            machines, runtimes = split_arrays(dataset, split)
            assert len(np.unique(machines)) == n_train
            assert (runtimes > 0).all()
            inter = get_test_point(dataset, split, "interpolation")
            if inter is not None:
                assert machines.min() < inter[0] < machines.max()
            extra = get_test_point(dataset, split, "extrapolation")
            if extra is not None and n_train > 0:
                assert extra[0] < machines.min() or extra[0] > machines.max()


class TestHelpers:
    def test_test_point_invalid_task(self, small_context_dataset, rng):
        split = sample_split(small_context_dataset, 2, rng)
        with pytest.raises(ValueError):
            get_test_point(small_context_dataset, split, "sideways")

    def test_split_properties(self):
        split = Split(train_indices=(3, 1), interpolation_index=5, extrapolation_index=None)
        assert split.n_train == 2
        assert split.signature() == ((1, 3), 5, None)
