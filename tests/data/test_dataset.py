"""Tests of the ExecutionDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ExecutionDataset
from repro.data.schema import Execution, JobContext


def make_dataset() -> ExecutionDataset:
    contexts = [
        JobContext("grep", "m4.xlarge", 1000, "mixed-lines", (("pattern", "a"),)),
        JobContext("grep", "r4.xlarge", 2000, "long-lines", (("pattern", "b"),)),
        JobContext("sort", "m4.xlarge", 3000, "uniform-keys"),
    ]
    executions = []
    for context in contexts:
        for machines in (2, 4):
            for repeat in range(2):
                executions.append(
                    Execution(
                        context=context,
                        machines=machines,
                        runtime_s=100.0 / machines + repeat,
                        repeat=repeat,
                    )
                )
    return ExecutionDataset(executions)


class TestContainer:
    def test_len_iter_getitem(self):
        ds = make_dataset()
        assert len(ds) == 12
        assert ds[0].machines == 2
        assert sum(1 for _ in ds) == 12

    def test_add_extend(self):
        ds = ExecutionDataset()
        src = make_dataset()
        ds.add(src[0])
        ds.extend([src[1], src[2]])
        assert len(ds) == 3


class TestGrouping:
    def test_algorithms_order(self):
        assert make_dataset().algorithms() == ["grep", "sort"]

    def test_for_algorithm(self):
        assert len(make_dataset().for_algorithm("grep")) == 8

    def test_for_algorithm_case_insensitive(self):
        assert len(make_dataset().for_algorithm("GREP")) == 8

    def test_contexts_unique(self):
        assert len(make_dataset().contexts()) == 3

    def test_by_context_partitions(self):
        groups = make_dataset().by_context()
        assert len(groups) == 3
        assert sum(len(g) for g in groups.values()) == 12

    def test_for_context_and_exclude(self):
        ds = make_dataset()
        cid = ds.contexts()[0].context_id
        inside = ds.for_context(cid)
        outside = ds.exclude_context(cid)
        assert len(inside) + len(outside) == len(ds)
        assert all(e.context.context_id == cid for e in inside)

    def test_filter_predicate(self):
        ds = make_dataset().filter(lambda e: e.machines == 4)
        assert len(ds) == 6


class TestArrays:
    def test_machines_and_runtimes(self):
        ds = make_dataset()
        assert ds.machines_array().shape == (12,)
        assert ds.runtimes_array().dtype == np.float64

    def test_scaleouts_sorted_unique(self):
        np.testing.assert_array_equal(make_dataset().scaleouts(), [2, 4])

    def test_select_preserves_order(self):
        ds = make_dataset()
        subset = ds.select([3, 0])
        assert subset[0] is ds[3]
        assert subset[1] is ds[0]


class TestStatistics:
    def test_runtime_by_scaleout(self):
        context_ds = make_dataset().by_context()
        first = next(iter(context_ds.values()))
        grouped = first.runtime_by_scaleout()
        assert set(grouped) == {2, 4}
        assert grouped[2].shape == (2,)

    def test_mean_runtime_curve(self):
        context_ds = next(iter(make_dataset().by_context().values()))
        machines, means = context_ds.mean_runtime_curve()
        np.testing.assert_array_equal(machines, [2, 4])
        assert means[0] == pytest.approx(50.5)  # (50 + 51) / 2

    def test_summary(self):
        summary = make_dataset().summary()
        assert summary["executions"] == 12
        assert summary["contexts"] == 3
