"""Tests of the C3O/Bell dataset generators and CSV round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BELL_SCALEOUTS,
    C3O_CONTEXT_COUNTS,
    C3O_SCALEOUTS,
    generate_bell_contexts,
    generate_bell_dataset,
    generate_c3o_contexts,
    read_csv,
    write_csv,
)
from repro.data.c3o import generate_c3o_dataset


class TestC3OStructure:
    def test_total_unique_experiments(self, c3o_dataset):
        # 155 contexts x 6 scale-outs = 930 unique experiments (paper §IV-B).
        pairs = {
            (e.context.context_id, e.machines) for e in c3o_dataset
        }
        assert len(pairs) == 930

    def test_record_count(self, c3o_dataset):
        assert len(c3o_dataset) == 930 * 5

    def test_context_counts_per_algorithm(self, c3o_dataset):
        for algorithm, expected in C3O_CONTEXT_COUNTS.items():
            assert len(c3o_dataset.for_algorithm(algorithm).contexts()) == expected

    def test_scaleout_grid(self, c3o_dataset):
        np.testing.assert_array_equal(c3o_dataset.scaleouts(), C3O_SCALEOUTS)

    def test_five_repeats_each(self, c3o_dataset):
        context_id = c3o_dataset.contexts()[0].context_id
        subset = c3o_dataset.for_context(context_id)
        assert len(subset) == 6 * 5

    def test_contexts_unique(self):
        contexts = generate_c3o_contexts(seed=0)
        ids = [c.context_id for c in contexts]
        assert len(ids) == len(set(ids))

    def test_every_node_type_appears_per_algorithm(self, c3o_dataset):
        from repro.simulator.nodes import cloud_node_names

        for algorithm in ("pagerank", "sgd", "kmeans", "grep", "sort"):
            nodes = {
                c.node_type for c in c3o_dataset.for_algorithm(algorithm).contexts()
            }
            assert nodes == set(cloud_node_names())

    def test_deterministic_in_seed(self):
        a = generate_c3o_contexts(seed=3)
        b = generate_c3o_contexts(seed=3)
        assert [c.context_id for c in a] == [c.context_id for c in b]

    def test_different_seed_changes_contexts(self):
        a = generate_c3o_contexts(seed=3)
        b = generate_c3o_contexts(seed=4)
        assert [c.context_id for c in a] != [c.context_id for c in b]

    def test_runtimes_positive_and_finite(self, c3o_dataset):
        runtimes = c3o_dataset.runtimes_array()
        assert (runtimes > 0).all()
        assert np.isfinite(runtimes).all()

    def test_environment_is_cloud(self, c3o_dataset):
        assert all(c.environment == "cloud" for c in c3o_dataset.contexts())


class TestBellStructure:
    def test_three_single_context_algorithms(self, bell_dataset):
        assert sorted(bell_dataset.algorithms()) == ["grep", "pagerank", "sgd"]
        for algorithm in bell_dataset.algorithms():
            assert len(bell_dataset.for_algorithm(algorithm).contexts()) == 1

    def test_scaleout_grid_4_to_60(self, bell_dataset):
        np.testing.assert_array_equal(bell_dataset.scaleouts(), BELL_SCALEOUTS)
        assert len(BELL_SCALEOUTS) == 15

    def test_seven_repeats(self, bell_dataset):
        subset = bell_dataset.for_algorithm("grep")
        assert len(subset) == 15 * 7

    def test_environment_is_cluster(self):
        for context in generate_bell_contexts():
            assert context.environment == "cluster"
            assert context.node_type == "cluster-node"
            assert "2.0.0" in context.software

    def test_total_records(self, bell_dataset):
        assert len(bell_dataset) == 3 * 15 * 7


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path, bell_dataset):
        path = tmp_path / "bell.csv"
        write_csv(path, bell_dataset)
        loaded = read_csv(path)
        assert len(loaded) == len(bell_dataset)
        for original, restored in zip(bell_dataset, loaded):
            assert restored.context.context_id == original.context.context_id
            assert restored.machines == original.machines
            assert restored.runtime_s == pytest.approx(original.runtime_s, abs=1e-5)
            assert restored.repeat == original.repeat

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("algorithm,machines\ngrep,2\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_malformed_params_rejected(self, tmp_path, bell_dataset):
        path = tmp_path / "bell.csv"
        write_csv(path, bell_dataset)
        text = path.read_text().replace("pattern=computer", "patterncomputer")
        path.write_text(text)
        with pytest.raises(ValueError):
            read_csv(path)
