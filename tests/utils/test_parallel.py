"""Tests for the parallel mapping helper and experiment determinism."""

from __future__ import annotations

import os

import pytest

from repro.utils.parallel import parallel_map, resolve_workers


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None, 10) == 1

    def test_zero_is_serial(self):
        assert resolve_workers(0, 10) == 1

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1, 1000) == (os.cpu_count() or 1)

    def test_capped_by_tasks(self):
        assert resolve_workers(16, 3) == 3

    def test_no_tasks(self):
        assert resolve_workers(8, 0) == 1


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_order_preserved_across_processes(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_workers=4) == [x * x for x in items]

    def test_serial_equals_parallel(self):
        items = list(range(12))
        assert parallel_map(_square, items, n_workers=1) == parallel_map(
            _square, items, n_workers=3
        )


class TestWorkerResolutionOrder:
    """Regression: parallel_map resolves workers like every other runtime
    entry point — explicit argument (0 included) beats ``REPRO_JOBS``,
    ``None`` falls back to the environment, and the default is serial.
    Historically the shim ignored ``REPRO_JOBS`` entirely."""

    def test_none_falls_back_to_repro_jobs(self, monkeypatch):
        recorded = {}

        def spy(fn, items, jobs=None, kind=None):
            recorded["jobs"] = jobs
            return [fn(item) for item in items]

        monkeypatch.setattr("repro.utils.parallel._executor_map", spy)
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert parallel_map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert recorded["jobs"] == 3

    def test_explicit_argument_beats_environment(self, monkeypatch):
        recorded = {}

        def spy(fn, items, jobs=None, kind=None):
            recorded["jobs"] = jobs
            return [fn(item) for item in items]

        monkeypatch.setattr("repro.utils.parallel._executor_map", spy)
        monkeypatch.setenv("REPRO_JOBS", "7")
        parallel_map(_square, [1, 2, 3, 4], n_workers=2)
        assert recorded["jobs"] == 2
        # Explicit 0 (serial) also wins over the environment.
        parallel_map(_square, [1, 2, 3, 4], n_workers=0)
        assert recorded["jobs"] == 1

    def test_default_without_environment_is_serial(self, monkeypatch):
        recorded = {}

        def spy(fn, items, jobs=None, kind=None):
            recorded["jobs"] = jobs
            return [fn(item) for item in items]

        monkeypatch.setattr("repro.utils.parallel._executor_map", spy)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        parallel_map(_square, [1, 2, 3, 4])
        assert recorded["jobs"] == 1

    def test_repro_jobs_changes_real_execution(self, monkeypatch):
        """End to end (no spy): REPRO_JOBS=2 actually runs and returns the
        same ordered results as serial."""
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert parallel_map(_square, list(range(8))) == [x * x for x in range(8)]


class TestExperimentDeterminismAcrossWorkers:
    @pytest.mark.slow
    def test_cross_context_records_identical(self):
        """The cross-context study is bit-identical for any worker count."""
        from repro.data.c3o import generate_c3o_contexts
        from repro.data.dataset import ExecutionDataset
        from repro.eval.experiments.common import SMOKE_SCALE
        from repro.eval.experiments.cross_context import (
            run_cross_context_experiment,
        )
        from repro.simulator.traces import TraceGenerator

        contexts = [
            c for c in generate_c3o_contexts(seed=5) if c.algorithm in ("grep", "sgd")
        ]
        generator = TraceGenerator(seed=5)
        dataset = ExecutionDataset()
        per_algo: dict = {}
        for context in contexts:
            kept = per_algo.setdefault(context.algorithm, [])
            if len(kept) < 3:
                kept.append(context)
                dataset.extend(
                    generator.executions_for_context(context, (2, 4, 6, 8), 2)
                )

        serial = run_cross_context_experiment(dataset, SMOKE_SCALE, seed=0)
        parallel = run_cross_context_experiment(
            dataset, SMOKE_SCALE, seed=0, n_workers=2
        )
        assert len(serial.records) == len(parallel.records)
        for a, b in zip(serial.records, parallel.records):
            assert a.method == b.method
            assert a.context_id == b.context_id
            assert a.n_train == b.n_train
            assert a.task == b.task
            assert a.predicted_s == pytest.approx(b.predicted_s, rel=1e-12)
