"""Tests of the shared utilities (rng, timing, serialization, tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngMixin, derive_seed, new_rng, spawn_rngs
from repro.utils.serialization import (
    load_json,
    load_npz_dict,
    save_json,
    save_npz_dict,
)
from repro.utils.tables import ascii_bar_chart, ascii_table, format_float
from repro.utils.timing import Stopwatch, format_duration
from repro.utils.validation import (
    check_in,
    check_positive,
    check_probability,
    check_type,
)


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_derive_seed_path_sensitive(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")

    def test_derive_seed_root_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_seed_in_range(self):
        for i in range(20):
            assert 0 <= derive_seed(i, "name") < 2**63 - 1

    def test_new_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_new_rng_from_int_reproducible(self):
        assert new_rng(7).random() == new_rng(7).random()

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(0, ["x", "y"])
        assert a.random() != b.random()

    def test_mixin_lazy_and_reseedable(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self.seed = seed

        thing = Thing(5)
        first = thing.rng.random()
        thing.reseed(5)
        assert thing.rng.random() == first


class TestTiming:
    def test_format_duration_units(self):
        assert format_duration(5e-7).endswith("us")
        assert format_duration(0.05).endswith("ms")
        assert format_duration(7.37) == "7.37s"
        assert format_duration(300).endswith("min")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_stopwatch_laps(self):
        watch = Stopwatch()
        watch.start("fit")
        watch.stop("fit")
        watch.start("fit")
        watch.stop("fit")
        assert len(watch.laps["fit"]) == 2
        assert watch.total("fit") >= 0
        assert watch.mean("fit") >= 0

    def test_stopwatch_unknown_lap(self):
        with pytest.raises(KeyError):
            Stopwatch().stop("ghost")

    def test_stopwatch_context_manager(self):
        with Stopwatch() as watch:
            pass
        assert watch.total("total") >= 0


class TestSerialization:
    def test_json_roundtrip_with_numpy(self, tmp_path):
        payload = {"a": np.int64(3), "b": np.float64(1.5), "c": np.array([1, 2])}
        path = tmp_path / "x.json"
        save_json(path, payload)
        assert load_json(path) == {"a": 3, "b": 1.5, "c": [1, 2]}

    def test_npz_roundtrip(self, tmp_path):
        arrays = {"w.1": np.arange(6.0).reshape(2, 3), "b": np.zeros(4)}
        path = tmp_path / "m.npz"
        save_npz_dict(path, arrays)
        loaded = load_npz_dict(path)
        assert set(loaded) == {"w.1", "b"}
        np.testing.assert_array_equal(loaded["w.1"], arrays["w.1"])

    def test_npz_rejects_non_arrays(self, tmp_path):
        with pytest.raises(TypeError):
            save_npz_dict(tmp_path / "m.npz", {"x": [1, 2, 3]})

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "f.json"
        save_json(path, {"ok": True})
        assert load_json(path) == {"ok": True}


class TestTables:
    def test_format_float(self):
        assert format_float(3) == "3"
        assert format_float(3.14159, 2) == "3.14"
        assert format_float(float("nan")) == "nan"

    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["a", 1.5], ["bb", 22.0]])
        lines = table.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "name" in table and "22.0" in table

    def test_ascii_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [["x", "y"]])

    def test_ascii_table_title(self):
        assert ascii_table(["h"], [["v"]], title="T").startswith("T\n")

    def test_bar_chart_scales(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}) == ""

    def test_bar_chart_zero_values(self):
        chart = ascii_bar_chart({"a": 0.0})
        assert "#" not in chart


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in(self):
        assert check_in("mode", "a", {"a", "b"}) == "a"
        with pytest.raises(ValueError):
            check_in("mode", "c", {"a", "b"})

    def test_check_type(self):
        assert check_type("n", 3, int) == 3
        with pytest.raises(TypeError):
            check_type("n", "3", int)
