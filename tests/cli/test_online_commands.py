"""CLI observe/refresh subcommands and the online-drift experiment entry."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.data.io import write_csv
from repro.data.dataset import ExecutionDataset
from repro.simulator import DriftSpec, generate_drift_scenario


@pytest.fixture(scope="module")
def scenario():
    return generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.9, start=0.0), seed=0, n_stream=12
    )


def _context_args(scenario):
    context = scenario.context
    args = [
        "--algorithm", context.algorithm,
        "--node-type", context.node_type,
        "--dataset-mb", str(context.dataset_mb),
        "--characteristics", context.dataset_characteristics,
        "--environment", context.environment,
        "--software", context.software,
    ]
    for key, value in context.job_params:
        args += ["--param", f"{key}={value}"]
    return args


def test_observe_appends_to_local_buffer(tmp_path, scenario, capsys):
    buffer_path = tmp_path / "observations.jsonl"
    for machines, runtime in scenario.stream[:3]:
        code = main(
            ["observe", *_context_args(scenario),
             "--machines", str(int(machines)), "--runtime", str(runtime),
             "--buffer", str(buffer_path)]
        )
        assert code == 0
    lines = [json.loads(line) for line in buffer_path.read_text().splitlines()]
    assert len(lines) == 3
    assert lines[0]["context"]["algorithm"] == "sgd"
    assert capsys.readouterr().out.count("buffered") == 3


def test_observe_needs_a_destination(scenario, capsys):
    code = main(
        ["observe", *_context_args(scenario), "--machines", "4", "--runtime", "100"]
    )
    assert code == 2
    assert "either --url" in capsys.readouterr().err


def test_refresh_scans_buffer_and_refreshes_drifted_group(tmp_path, scenario, capsys):
    # The session corpus == the scenario history, via the --traces CSV path.
    traces = tmp_path / "traces.csv"
    write_csv(traces, ExecutionDataset(list(scenario.history)))
    buffer_path = tmp_path / "observations.jsonl"
    for machines, runtime in scenario.stream:
        main(
            ["observe", *_context_args(scenario),
             "--machines", str(int(machines)), "--runtime", str(runtime),
             "--buffer", str(buffer_path)]
        )
    capsys.readouterr()

    store = tmp_path / "store"
    code = main(
        ["refresh", "--buffer", str(buffer_path), "--traces", str(traces),
         "--store", str(store), "--pretrain-epochs", "300", "--epochs", "200"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "refreshed 1 of 1 group(s)" in out
    assert "yes" in out  # the drifted column
    # The refreshed model landed in the store.
    assert any(p.name.startswith("online--") for p in store.rglob("*.npz"))


def test_refresh_dry_run_touches_nothing(tmp_path, scenario, capsys):
    traces = tmp_path / "traces.csv"
    write_csv(traces, ExecutionDataset(list(scenario.history)))
    buffer_path = tmp_path / "observations.jsonl"
    for machines, runtime in scenario.stream[:6]:
        main(
            ["observe", *_context_args(scenario),
             "--machines", str(int(machines)), "--runtime", str(runtime),
             "--buffer", str(buffer_path)]
        )
    capsys.readouterr()
    store = tmp_path / "store"
    code = main(
        ["refresh", "--buffer", str(buffer_path), "--traces", str(traces),
         "--store", str(store), "--pretrain-epochs", "300", "--dry-run"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "refreshed 0 of 1 group(s)" in out
    assert not any(p.name.startswith("online--") for p in store.rglob("*.npz"))


def test_refresh_empty_buffer_is_a_noop(tmp_path, capsys):
    buffer_path = tmp_path / "empty.jsonl"
    buffer_path.write_text("")
    code = main(["refresh", "--buffer", str(buffer_path)])
    assert code == 0
    assert "nothing to do" in capsys.readouterr().out


def test_serve_parser_accepts_online_flags():
    from repro.cli.main import build_parser

    args = build_parser().parse_args(
        ["serve", "--online", "--observations", "obs.jsonl",
         "--drift-tolerance", "1.8", "--refresh-samples", "6",
         "--refresh-epochs", "100"]
    )
    assert args.online is True
    assert args.drift_tolerance == 1.8
    assert args.refresh_samples == 6
    assert args.refresh_epochs == 100


def test_experiment_parser_accepts_online_drift():
    from repro.cli.main import build_parser

    args = build_parser().parse_args(["experiment", "online-drift", "--scale", "smoke"])
    assert args.which == "online-drift"
