"""The `repro-bellamy stats` command against a live prediction server."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.cli import build_parser, main
from repro.core.config import BellamyConfig
from repro.serve import HttpServeClient, PredictionServer


@pytest.fixture(scope="module")
def running_server(c3o_dataset):
    config = BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=20, finetune_max_epochs=60, finetune_patience=30
    )
    session = Session(c3o_dataset, config=config)
    with PredictionServer(session, port=0, batch_wait_ms=5.0) as server:
        context = c3o_dataset.for_algorithm("sgd").contexts()[0]
        HttpServeClient(server.url).predict(context, [4, 8])
        yield server


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.url == "http://127.0.0.1:8265"
        assert args.watch is False
        assert args.interval == 2.0
        assert args.iterations is None


class TestStatsCommand:
    def test_one_snapshot(self, running_server, capsys):
        assert main(["stats", "--url", running_server.url]) == 0
        out = capsys.readouterr().out
        assert f"[stats] {running_server.url}" in out
        assert "served" in out
        assert "[stats] request latency" in out
        assert "POST /predict" in out
        assert "[stats] cache" in out
        assert "[stats] batcher" in out

    def test_watch_stops_after_iterations(self, running_server, capsys):
        rc = main(
            [
                "stats",
                "--url", running_server.url,
                "--watch",
                "--interval", "0.01",
                "--iterations", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("[stats] request latency") == 3

    def test_unreachable_server_is_a_clean_error(self, capsys):
        rc = main(["stats", "--url", "http://127.0.0.1:9"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSmokeScrapeCheck:
    """The scrape gate behind `serve --smoke` (and the CI smoke step)."""

    def test_healthy_server_has_no_problems(self, running_server):
        from repro.cli.commands import _check_metrics_scrape

        client = HttpServeClient(running_server.url)
        assert _check_metrics_scrape(client) == []

    def test_missing_and_nan_series_are_reported(self):
        from repro.cli.commands import _check_metrics_scrape

        class FakeClient:
            def metrics(self):
                return "repro_serve_handled_total 1\nbroken_gauge NaN\n"

        problems = _check_metrics_scrape(FakeClient())
        assert any("missing required series" in p for p in problems)
        assert any("broken_gauge" in p and "NaN" in p for p in problems)

    def test_invalid_exposition_is_reported(self):
        from repro.cli.commands import _check_metrics_scrape

        class FakeClient:
            def metrics(self):
                return "this is { not prometheus\n"

        problems = _check_metrics_scrape(FakeClient())
        assert problems and "not valid Prometheus text" in problems[0]
