"""Tests of the CLI experiment subcommand (runner stubbed for speed)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.eval.protocol import EvaluationRecord
from repro.eval.records_io import load_records


def _fake_records() -> list:
    return [
        EvaluationRecord(
            method=method,
            algorithm="sgd",
            context_id="ctx",
            n_train=2,
            task=task,
            actual_s=100.0,
            predicted_s=95.0,
            fit_seconds=0.01,
            epochs_trained=5,
        )
        for method in ("NNLS", "Bellamy (full)")
        for task in ("interpolation", "extrapolation")
    ]


@pytest.fixture
def stub_cross_context(monkeypatch):
    """Replace the expensive cross-context runner with a canned result."""
    import repro.eval.experiments as experiments

    class FakeResult:
        records = _fake_records()
        pretrain_seconds = {"full": 1.0}
        wall_seconds = 0.1
        scale_name = "quick"

    calls = {}

    def fake_runner(dataset, scale, seed=0, n_workers=None, **kwargs):
        calls["scale"] = scale
        calls["seed"] = seed
        calls["n_workers"] = n_workers
        return FakeResult()

    monkeypatch.setattr(experiments, "run_cross_context_experiment", fake_runner)
    return calls


class TestExperimentCommand:
    def test_renders_tables(self, stub_cross_context, capsys):
        rc = main(["experiment", "cross-context", "--scale", "quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[Fig 5 | interpolation MRE]" in out
        assert "[Fig 6]" in out

    def test_scale_and_seed_forwarded(self, stub_cross_context):
        main(["experiment", "cross-context", "--scale", "smoke", "--seed", "7"])
        assert stub_cross_context["scale"].name == "smoke"
        assert stub_cross_context["seed"] == 7

    def test_workers_forwarded(self, stub_cross_context):
        main(["experiment", "cross-context", "--workers", "3"])
        assert stub_cross_context["n_workers"] == 3

    def test_tables_written_to_out(self, stub_cross_context, tmp_path, capsys):
        rc = main(
            ["experiment", "cross-context", "--out", str(tmp_path / "reports")]
        )
        assert rc == 0
        written = sorted(p.name for p in (tmp_path / "reports").glob("*.txt"))
        assert "fig5_interpolation.txt" in written
        assert "fig6_mae.txt" in written

    def test_records_exported(self, stub_cross_context, tmp_path):
        records_path = tmp_path / "records.json"
        rc = main(
            ["experiment", "cross-context", "--records", str(records_path)]
        )
        assert rc == 0
        records = load_records(records_path)
        assert len(records) == 4
        assert {r.method for r in records} == {"NNLS", "Bellamy (full)"}


class TestChaosExperiment:
    @pytest.fixture
    def stub_chaos(self, monkeypatch):
        """Replace the full chaos drill with a canned report."""
        import repro.simulator.chaos as chaos

        calls = {}

        def fake_runner(seed=0, **kwargs):
            calls["seed"] = seed
            return chaos.ChaosReport(
                seed=seed, responses=24, status_counts={"200": 22, "500": 2},
                unstructured_500s=0, injected={"online.refresh": 2},
                refresh_failures=2, quarantines=1, refreshes=1,
                quarantined_at_end=[], recovered=True,
                executor_fault_seen=True, executor_retry_ok=True,
                bit_identical=True, max_abs_delta_s=0.0,
                failures=list(calls.get("failures", [])),
            )

        monkeypatch.setattr(chaos, "run_chaos_scenario", fake_runner)
        return calls

    def test_chaos_prints_summary_and_passes(self, stub_chaos, capsys):
        rc = main(["experiment", "chaos", "--seed", "5"])
        assert rc == 0
        assert stub_chaos["seed"] == 5
        out = capsys.readouterr().out
        assert "chaos seed=5: PASS" in out
        assert "bit_identical=True" in out

    def test_chaos_failure_is_nonzero_exit(self, stub_chaos, capsys):
        stub_chaos["failures"] = ["bit-identity broke"]
        rc = main(["experiment", "chaos"])
        assert rc == 1
        assert "FAIL: bit-identity broke" in capsys.readouterr().out

    def test_chaos_table_written_to_out(self, stub_chaos, tmp_path):
        rc = main(["experiment", "chaos", "--out", str(tmp_path / "reports")])
        assert rc == 0
        text = (tmp_path / "reports" / "chaos.txt").read_text(encoding="utf-8")
        assert "chaos seed=0" in text
