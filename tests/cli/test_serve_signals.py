"""Signal handling of foreground ``repro-bellamy serve`` (and the fleet).

SIGTERM — what a container orchestrator sends on stop — must route
through the graceful path: stop accepting, drain the batch queue so every
accepted request is answered, release the store, exit 0. The regression
pinned here: the old inline handler only covered SIGTERM on the serial
path and bypassed :func:`repro.serve.serve_foreground`; both entry points
now share it (the fleet supervisor forwards the signal to every worker).
"""

from __future__ import annotations

import os
import select
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _spawn_serve(*extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli.main", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO),
    )


def _read_until(process: subprocess.Popen, needle: str, timeout_s: float = 120.0) -> str:
    """Collect stdout lines until one contains ``needle``."""
    collected = []
    deadline = time.monotonic() + timeout_s
    fd = process.stdout.fileno()
    buf = ""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            break
        ready, _, _ = select.select([fd], [], [], 0.2)
        if not ready:
            continue
        chunk = os.read(fd, 4096).decode("utf-8", "replace")
        if not chunk:
            break
        buf += chunk
        while "\n" in buf:
            line, _, buf = buf.partition("\n")
            collected.append(line)
            if needle in line:
                return "\n".join(collected)
    raise AssertionError(
        f"never saw {needle!r}; output so far:\n" + "\n".join(collected + [buf])
    )


def _finish(process: subprocess.Popen, timeout_s: float = 60.0) -> str:
    try:
        remainder, _ = process.communicate(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        process.kill()
        process.communicate()
        raise AssertionError("serve did not exit after SIGTERM")
    return remainder or ""


@pytest.mark.slow
def test_sigterm_drains_single_worker_serve():
    process = _spawn_serve()
    try:
        _read_until(process, "serving on http://")
        process.send_signal(signal.SIGTERM)
        tail = _finish(process)
        assert process.returncode == 0
        assert "shut down (batch queue drained)" in tail
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


@pytest.mark.slow
def test_sigterm_drains_fleet(tmp_path):
    process = _spawn_serve("--workers", "2", "--store", str(tmp_path / "models"))
    try:
        banner = _read_until(process, "fleet endpoint:")
        assert "with 2 workers" in banner
        process.send_signal(signal.SIGTERM)
        tail = _finish(process)
        assert process.returncode == 0
        assert "shut down (workers drained)" in tail
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


@pytest.mark.slow
def test_sigint_equivalent_to_sigterm():
    process = _spawn_serve()
    try:
        _read_until(process, "serving on http://")
        process.send_signal(signal.SIGINT)
        tail = _finish(process)
        assert process.returncode == 0
        assert "shut down (batch queue drained)" in tail
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
