"""Tests of the command-line interface (repro.cli)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.persistence import ModelStore
from repro.core.pretraining import pretrain
from repro.data.c3o import generate_c3o_contexts
from repro.data.dataset import ExecutionDataset
from repro.data.io import write_csv
from repro.simulator.traces import TraceGenerator

CONTEXT_FLAGS = [
    "--algorithm", "sgd",
    "--node-type", "m4.2xlarge",
    "--dataset-mb", "19353",
    "--characteristics", "dense-features",
    "--param", "max_iterations=50",
    "--param", "step_size=0.1",
]


@pytest.fixture(scope="module")
def tiny_traces_csv(tmp_path_factory):
    """A small SGD trace CSV for offline pretraining."""
    contexts = [c for c in generate_c3o_contexts(seed=6) if c.algorithm == "sgd"][:3]
    generator = TraceGenerator(seed=6)
    dataset = ExecutionDataset()
    for context in contexts:
        dataset.extend(generator.executions_for_context(context, (2, 4, 6, 8), 2))
    path = tmp_path_factory.mktemp("traces") / "sgd.csv"
    write_csv(path, dataset)
    return path


@pytest.fixture(scope="module")
def store_with_model(tmp_path_factory, tiny_traces_csv):
    """A model store holding one quickly pre-trained SGD model."""
    store_dir = tmp_path_factory.mktemp("store")
    rc = main(
        [
            "pretrain",
            "--traces", str(tiny_traces_csv),
            "--algorithm", "sgd",
            "--epochs", "15",
            "--store", str(store_dir),
            "--name", "sgd-quick",
        ]
    )
    assert rc == 0
    return store_dir


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_defaults(self):
        args = build_parser().parse_args(["dataset"])
        assert args.which == "c3o" and args.seed == 0

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "bogus"])

    def test_select_candidate_defaults(self):
        args = build_parser().parse_args(
            ["select", *CONTEXT_FLAGS, "--store", "s", "--name", "n", "--target", "100"]
        )
        assert args.candidates == [2, 4, 6, 8, 10, 12]


class TestDatasetCommand:
    def test_summary_only(self, capsys):
        assert main(["dataset", "--which", "bell"]) == 0
        out = capsys.readouterr().out
        assert "executions" in out

    def test_csv_export_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "bell.csv"
        assert main(["dataset", "--which", "bell", "--out", str(out_path)]) == 0
        from repro.data.io import read_csv

        dataset = read_csv(out_path)
        assert len(dataset) == 315  # 3 contexts x 15 scale-outs x 7 repeats


class TestPretrainPredictSelect:
    def test_pretrain_saves_model(self, store_with_model):
        store = ModelStore(store_with_model)
        # The named model plus the session's provenance-keyed cache copy.
        assert "sgd-quick" in store.names()
        assert store.metadata("sgd-quick")["algorithm"] == "sgd"

    def test_predict_prints_table(self, store_with_model, capsys):
        rc = main(
            [
                "predict", *CONTEXT_FLAGS,
                "--machines", "2", "6",
                "--store", str(store_with_model),
                "--name", "sgd-quick",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted runtime" in out

    def test_select_unreachable_target_fails(self, store_with_model, capsys):
        rc = main(
            [
                "select", *CONTEXT_FLAGS,
                "--store", str(store_with_model),
                "--name", "sgd-quick",
                "--target", "0.001",
            ]
        )
        assert rc == 1
        assert "no candidate" in capsys.readouterr().out

    def test_select_generous_target_recommends(self, store_with_model, capsys):
        rc = main(
            [
                "select", *CONTEXT_FLAGS,
                "--store", str(store_with_model),
                "--name", "sgd-quick",
                "--target", "1e9",
            ]
        )
        assert rc == 0
        assert "recommendation:" in capsys.readouterr().out

    def test_min_cost_requires_price(self, store_with_model, capsys):
        rc = main(
            [
                "select", *CONTEXT_FLAGS,
                "--store", str(store_with_model),
                "--name", "sgd-quick",
                "--target", "1e9",
                "--objective", "min_cost",
            ]
        )
        assert rc == 2  # ValueError surfaces as exit code 2
        assert "error:" in capsys.readouterr().err

    def test_missing_model_is_reported(self, tmp_path, capsys):
        rc = main(
            [
                "predict", *CONTEXT_FLAGS,
                "--machines", "2",
                "--store", str(tmp_path),
                "--name", "missing",
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_param_is_reported(self, store_with_model, capsys):
        rc = main(
            [
                "predict",
                "--algorithm", "sgd",
                "--node-type", "m4.2xlarge",
                "--dataset-mb", "19353",
                "--param", "not-a-pair",
                "--machines", "2",
                "--store", str(store_with_model),
                "--name", "sgd-quick",
            ]
        )
        assert rc == 2

    def test_pretrain_graph_model_type(self, tmp_path, tiny_traces_csv):
        rc = main(
            [
                "pretrain",
                "--traces", str(tiny_traces_csv),
                "--algorithm", "sgd",
                "--epochs", "10",
                "--model-type", "graph",
                "--store", str(tmp_path),
                "--name", "sgd-graph",
            ]
        )
        assert rc == 0
        from repro.core.graph_model import GraphBellamyModel

        model = ModelStore(tmp_path).load("sgd-graph")
        assert isinstance(model, GraphBellamyModel)

    def test_gnn_requires_algorithm(self, tmp_path, tiny_traces_csv, capsys):
        rc = main(
            [
                "pretrain",
                "--traces", str(tiny_traces_csv),
                "--epochs", "5",
                "--model-type", "gnn",
                "--store", str(tmp_path),
                "--name", "oops",
            ]
        )
        assert rc == 2


class TestModelsCommand:
    def test_lists_estimators_and_store(self, store_with_model, capsys):
        rc = main(["models", "--store", str(store_with_model)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bellamy-ft" in out
        assert "sgd-quick" in out

    def test_migrate_rehomes_flat_models(self, tmp_path, capsys):
        # Fabricate a pre-shard flat-layout store, then migrate it.
        import numpy as np

        from repro.core.config import BellamyConfig
        from repro.core.model import BellamyModel
        from repro.data.schema import JobContext
        from repro.utils.serialization import save_json, save_npz_dict

        model = BellamyModel(BellamyConfig(seed=0))
        context = JobContext("sgd", "m4.xlarge", 1000, "dense")
        raw, _ = model.featurizer.build_context_arrays(context, [2, 4, 8])
        model.fit_scaler(raw)
        model.set_runtime_scale(np.array([100.0, 300.0]))
        save_npz_dict(tmp_path / "flat-model.npz", model.full_state_dict())
        save_json(
            tmp_path / "flat-model.json",
            {"config": model.config.to_dict(), "model_class": "BellamyModel",
             "metadata": {}},
        )
        rc = main(["models", "--store", str(tmp_path), "--migrate", "--gc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "migrated 1 flat-layout model(s)" in out
        assert "swept 0 orphaned temp file(s)" in out
        assert "flat-model" in out
        assert not (tmp_path / "flat-model.npz").exists()
        assert ModelStore(tmp_path).exists("flat-model")

    def test_migrate_without_store_is_an_error(self, capsys):
        rc = main(["models", "--migrate"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
