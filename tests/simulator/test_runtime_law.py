"""Tests of the runtime law: scaling behaviour, memory cliffs, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.algorithms import get_algorithm_profile
from repro.simulator.nodes import get_node_type
from repro.simulator.runtime_law import (
    ContextLatents,
    expected_runtime,
    sample_runtime,
    work_factor_from_params,
)


def runtime_curve(algorithm, node="m4.xlarge", dataset_mb=10_000, params=None, **kwargs):
    profile = get_algorithm_profile(algorithm)
    node_type = get_node_type(node)
    return np.array(
        [
            expected_runtime(profile, node_type, x, dataset_mb, params=params, **kwargs)
            for x in (2, 4, 6, 8, 10, 12)
        ]
    )


class TestBasicProperties:
    def test_positive_runtimes(self):
        for algorithm in ("grep", "sort", "pagerank", "sgd", "kmeans"):
            assert (runtime_curve(algorithm) > 0).all()

    def test_grep_is_near_embarrassingly_parallel(self):
        curve = runtime_curve("grep", dataset_mb=30_000)
        # Strictly decreasing over the small-cluster range.
        assert curve[0] > curve[1] > curve[2]

    def test_more_data_takes_longer(self):
        small = runtime_curve("sort", dataset_mb=5_000)
        large = runtime_curve("sort", dataset_mb=40_000)
        assert (large > small).all()

    def test_faster_nodes_are_faster(self):
        slow = runtime_curve("grep", node="m4.xlarge")
        fast = runtime_curve("grep", node="c5.2xlarge")
        assert (fast < slow).all()

    def test_invalid_arguments(self):
        profile = get_algorithm_profile("grep")
        node = get_node_type("m4.xlarge")
        with pytest.raises(ValueError):
            expected_runtime(profile, node, 0, 1000)
        with pytest.raises(ValueError):
            expected_runtime(profile, node, 2, -5)


class TestIterationScaling:
    def test_sgd_iterations_increase_runtime(self):
        base = runtime_curve("sgd", params={"max_iterations": "25"})
        more = runtime_curve("sgd", params={"max_iterations": "100"})
        assert (more > base).all()

    def test_kmeans_k_increases_runtime(self):
        small_k = runtime_curve("kmeans", params={"k": "5", "iterations": "20"})
        large_k = runtime_curve("kmeans", params={"k": "25", "iterations": "20"})
        assert (large_k > small_k).all()

    def test_work_factor_dispatch(self):
        assert work_factor_from_params(get_algorithm_profile("kmeans"), {"k": "20"}) == 2.0
        assert work_factor_from_params(get_algorithm_profile("sgd"), {}) == 1.0
        grep = get_algorithm_profile("grep")
        short = work_factor_from_params(grep, {"pattern": "err"})
        long = work_factor_from_params(grep, {"pattern": "a-very-long-regex-pattern"})
        assert long > short

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            work_factor_from_params(get_algorithm_profile("kmeans"), {"k": "0"})

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            get_algorithm_profile("sgd").iterations({"max_iterations": "0"})


class TestMemoryCliff:
    def test_sgd_large_dataset_on_small_memory_has_cliff(self):
        # 30 GB * blowup 2.2 = 66 GB working set; m4.xlarge offers
        # 16 GB * 0.6 = 9.6 GB cache per machine, so small clusters spill.
        curve = runtime_curve("sgd", node="m4.xlarge", dataset_mb=30_000,
                              params={"max_iterations": "50"})
        # Massive drop (not Ernest-like 1/x) somewhere in the range.
        ratios = curve[:-1] / curve[1:]
        assert ratios.max() > 1.6

    def test_memory_rich_nodes_avoid_the_cliff(self):
        lean = runtime_curve("sgd", node="m4.xlarge", dataset_mb=30_000)
        rich = runtime_curve("sgd", node="r4.2xlarge", dataset_mb=30_000)
        # r4.2xlarge (61 GB) caches the working set at small scale-outs.
        assert rich[0] < lean[0]

    def test_small_dataset_no_cliff(self):
        curve = runtime_curve("sgd", node="r4.2xlarge", dataset_mb=2_000)
        ratios = curve[:-1] / np.maximum(curve[1:], 1e-9)
        assert ratios.max() < 1.5

    def test_batch_jobs_unaffected_by_blowup(self):
        assert get_algorithm_profile("grep").cache_blowup == 1.0
        assert get_algorithm_profile("sort").cache_blowup == 1.0


class TestLatentsAndEnvironment:
    def test_latents_deterministic(self):
        a = ContextLatents.from_descriptor(42, "ctx-1")
        b = ContextLatents.from_descriptor(42, "ctx-1")
        assert a == b

    def test_latents_differ_across_descriptors(self):
        a = ContextLatents.from_descriptor(42, "ctx-1")
        b = ContextLatents.from_descriptor(42, "ctx-2")
        assert a != b

    def test_latents_scale_runtime(self):
        heavy = ContextLatents(work=2.0, overhead=1.0, sync=1.0)
        base = runtime_curve("grep")
        scaled = runtime_curve("grep", latents=heavy)
        assert (scaled > base).all()

    def test_legacy_software_slower(self):
        modern = runtime_curve("sgd")
        legacy = runtime_curve("sgd", legacy_software=True)
        assert (legacy > modern).all()


class TestSampling:
    def test_noise_is_multiplicative_and_bounded(self):
        profile = get_algorithm_profile("grep")
        node = get_node_type("m4.xlarge")
        rng = np.random.default_rng(0)
        base = expected_runtime(profile, node, 4, 10_000)
        samples = np.array(
            [
                sample_runtime(profile, node, 4, 10_000, rng, noise_sigma=0.03,
                               straggler_probability=0.0)
                for _ in range(500)
            ]
        )
        assert samples.mean() == pytest.approx(base, rel=0.02)
        assert ((samples > 0.8 * base) & (samples < 1.25 * base)).all()

    def test_stragglers_add_positive_tail(self):
        profile = get_algorithm_profile("grep")
        node = get_node_type("m4.xlarge")
        rng = np.random.default_rng(0)
        base = expected_runtime(profile, node, 4, 10_000)
        samples = np.array(
            [
                sample_runtime(profile, node, 4, 10_000, rng, noise_sigma=0.0,
                               straggler_probability=1.0)
                for _ in range(100)
            ]
        )
        assert (samples > base * 1.05).all()

    def test_sampling_deterministic_given_rng(self):
        profile = get_algorithm_profile("sort")
        node = get_node_type("m5.xlarge")
        a = sample_runtime(profile, node, 4, 5_000, np.random.default_rng(9))
        b = sample_runtime(profile, node, 4, 5_000, np.random.default_rng(9))
        assert a == b
