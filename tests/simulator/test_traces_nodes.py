"""Tests of the node catalog, algorithm profiles, and trace generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ExecutionDataset
from repro.simulator import (
    ALGORITHM_PROFILES,
    ALL_NODE_TYPES,
    BELL_ALGORITHMS,
    C3O_ALGORITHMS,
    CLOUD_NODE_TYPES,
    CLUSTER_NODE_TYPES,
    TraceGenerator,
    cloud_node_names,
    get_algorithm_profile,
    get_node_type,
)


class TestNodeCatalog:
    def test_all_is_union(self):
        assert set(ALL_NODE_TYPES) == set(CLOUD_NODE_TYPES) | set(CLUSTER_NODE_TYPES)

    def test_lookup(self):
        node = get_node_type("m4.2xlarge")
        assert node.cores == 8
        assert node.memory_gb == 32.0
        assert node.environment == "cloud"

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            get_node_type("z9.mega")

    def test_cloud_names_sorted(self):
        names = cloud_node_names()
        assert names == sorted(names)
        assert len(names) >= 8

    def test_memory_mb(self):
        assert get_node_type("m4.xlarge").memory_mb == 16 * 1024

    def test_cluster_node_is_legacy_environment(self):
        node = get_node_type("cluster-node")
        assert node.environment == "cluster"
        assert node.price_per_hour == 0.0

    def test_node_families_differ_in_memory(self):
        assert get_node_type("r4.2xlarge").memory_gb > get_node_type("c4.2xlarge").memory_gb

    def test_invalid_node_spec_rejected(self):
        from repro.simulator.nodes import NodeType

        with pytest.raises(ValueError):
            NodeType("bad", 0, 16.0, 1.0, 100.0, 100.0, 0.1)
        with pytest.raises(ValueError):
            NodeType("bad", 4, -1.0, 1.0, 100.0, 100.0, 0.1)


class TestAlgorithmProfiles:
    def test_all_c3o_algorithms_present(self):
        assert set(C3O_ALGORITHMS) == set(ALGORITHM_PROFILES)

    def test_bell_subset(self):
        assert set(BELL_ALGORITHMS) <= set(C3O_ALGORITHMS)

    def test_lookup_case_insensitive(self):
        assert get_algorithm_profile("SGD").name == "sgd"

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            get_algorithm_profile("wordcount")

    def test_iterative_vs_batch(self):
        assert get_algorithm_profile("sgd").iterative_stages
        assert not get_algorithm_profile("grep").iterative_stages

    def test_iterations_from_params(self):
        profile = get_algorithm_profile("pagerank")
        assert profile.iterations({"iterations": "15"}) == 15
        assert profile.iterations({}) == 10  # default

    def test_non_iterative_iterations_is_one(self):
        assert get_algorithm_profile("sort").iterations({}) == 1

    def test_characteristics_factor_default(self):
        profile = get_algorithm_profile("grep")
        assert profile.characteristics_factor("unknown-label") == 1.0
        assert profile.characteristics_factor("long-lines") > 1.0


class TestTraceGenerator:
    def test_execution_counts(self, sgd_context):
        generator = TraceGenerator(seed=0)
        executions = generator.executions_for_context(sgd_context, (2, 4, 6), 4)
        assert len(executions) == 12
        assert {e.machines for e in executions} == {2, 4, 6}
        assert {e.repeat for e in executions} == {0, 1, 2, 3}

    def test_deterministic_per_seed(self, sgd_context):
        a = TraceGenerator(seed=5).executions_for_context(sgd_context, (2, 4), 3)
        b = TraceGenerator(seed=5).executions_for_context(sgd_context, (2, 4), 3)
        assert [e.runtime_s for e in a] == [e.runtime_s for e in b]

    def test_seed_changes_traces(self, sgd_context):
        a = TraceGenerator(seed=5).executions_for_context(sgd_context, (2, 4), 3)
        b = TraceGenerator(seed=6).executions_for_context(sgd_context, (2, 4), 3)
        assert [e.runtime_s for e in a] != [e.runtime_s for e in b]

    def test_repeats_vary(self, sgd_context):
        executions = TraceGenerator(seed=0).executions_for_context(sgd_context, (4,), 5)
        runtimes = [e.runtime_s for e in executions]
        assert len(set(runtimes)) == 5  # noise makes repeats distinct

    def test_noise_moderate(self, sgd_context):
        generator = TraceGenerator(seed=0)
        executions = generator.executions_for_context(sgd_context, (6,), 50)
        runtimes = np.array([e.runtime_s for e in executions])
        expected = generator.expected_runtime(sgd_context, 6)
        # SGD is the noisiest profile (sync-heavy, sigma 0.13 + stragglers);
        # its repeat-to-repeat coefficient of variation stays below ~25 %.
        assert runtimes.std() / runtimes.mean() < 0.25
        assert abs(runtimes.mean() - expected) / expected < 0.15

    def test_profile_noise_overrides_generator_default(self, sgd_context):
        # SGD's per-algorithm sigma (0.13) dominates a tiny generator default.
        quiet = TraceGenerator(seed=0, noise_sigma=0.001)
        executions = quiet.executions_for_context(sgd_context, (6,), 50)
        runtimes = np.array([e.runtime_s for e in executions])
        assert runtimes.std() / runtimes.mean() > 0.05

    def test_latents_deterministic_per_context(self, sgd_context):
        generator = TraceGenerator(seed=0)
        assert generator.latents_for(sgd_context) == generator.latents_for(sgd_context)

    def test_invalid_repeats(self, sgd_context):
        with pytest.raises(ValueError):
            TraceGenerator(seed=0).executions_for_context(sgd_context, (2,), 0)

    def test_mean_curve_close_to_expected(self, sgd_context):
        generator = TraceGenerator(seed=1)
        dataset = ExecutionDataset(
            generator.executions_for_context(sgd_context, (2, 4, 6, 8, 10, 12), 20)
        )
        machines, means = dataset.mean_runtime_curve()
        for m, observed in zip(machines, means):
            expected = generator.expected_runtime(sgd_context, int(m))
            assert abs(observed - expected) / expected < 0.12
