"""The chaos suite: the full serving stack survives a deterministic outage."""

from __future__ import annotations

import pytest

from repro.resilience import FaultPlan, FaultSpec, SITE_ONLINE_REFRESH
from repro.simulator import (
    ChaosReport,
    ChaosScenario,
    build_fault_plan,
    run_chaos_scenario,
)


def test_fault_plan_covers_every_site_and_is_capped():
    plan = build_fault_plan(seed=0)
    assert {spec.site for spec in plan.specs} == {
        "store.commit", "store.lock", "store.index", "executor.task",
        "online.refresh", "serve.predict",
    }
    assert all(spec.max_fires is not None for spec in plan.specs)
    assert {spec.kind for spec in plan.specs} == {"raise", "delay", "corrupt"}


def test_report_passed_tracks_failures():
    kwargs = dict(
        seed=0, responses=1, status_counts={"200": 1}, unstructured_500s=0,
        injected={}, refresh_failures=1, quarantines=1, refreshes=1,
        quarantined_at_end=[], recovered=True, executor_fault_seen=True,
        executor_retry_ok=True, bit_identical=True, max_abs_delta_s=0.0,
    )
    assert ChaosReport(**kwargs).passed
    assert not ChaosReport(**kwargs, failures=["an invariant broke"]).passed


@pytest.mark.slow
def test_chaos_scenario_end_to_end():
    """The ISSUE's chaos acceptance: structured errors, quarantine with
    half-open recovery, transparent lock retries, and bit-identity once
    the injected outage clears."""
    report = run_chaos_scenario(seed=0)
    assert report.passed, report.summary()

    # Zero unstructured 500s: every error response carried a JSON body
    # with an "error" key.
    assert report.unstructured_500s == 0
    # Every site of the plan actually fired.
    assert set(report.injected) == {
        "store.commit", "store.lock", "store.index", "executor.task",
        "online.refresh", "serve.predict",
    }
    assert all(count >= 1 for count in report.injected.values())
    # The two injected refresh failures quarantined the group, and the
    # half-open probe on a later drift flag recovered it mid-stream.
    assert report.refresh_failures == 2
    assert report.quarantines == 1
    assert report.recovered and not report.quarantined_at_end
    assert report.refreshes >= 1
    # The injected LockTimeouts were absorbed by the store's retry policy:
    # they fired, yet no request or refresh surfaced them.
    assert report.injected["store.lock"] >= 1
    # Bit-identity: after the faults cleared and one reconciling refresh,
    # the fault run predicts byte-for-byte what the clean run predicts.
    assert report.bit_identical
    assert report.max_abs_delta_s == 0.0


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["sqlite", "memory"])
def test_chaos_scenario_passes_on_alternate_backends(backend):
    """PR 7's invariants hold when the store index lives in SQLite (or in
    memory): injected index faults are absorbed, every response stays
    structured, and the post-outage stream is bit-identical."""
    report = run_chaos_scenario(seed=0, store_backend=backend)
    assert report.passed, report.summary()
    assert report.unstructured_500s == 0
    assert report.injected.get("store.index", 0) >= 1
    assert report.bit_identical


@pytest.mark.slow
def test_chaos_scenario_is_seed_deterministic():
    first = run_chaos_scenario(seed=3)
    second = run_chaos_scenario(seed=3)
    assert first.status_counts == second.status_counts
    assert first.injected == second.injected
    assert first.refresh_failures == second.refresh_failures


def test_custom_plan_is_used():
    plan = FaultPlan(
        seed=0,
        specs=(FaultSpec(site=SITE_ONLINE_REFRESH, kind="raise", max_fires=1),),
    )
    scenario = ChaosScenario(seed=0, plan=plan)
    assert scenario.plan is plan
