"""The drift scenario generator: reproducibility and drift semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import DRIFT_KINDS, DriftScenario, DriftSpec, generate_drift_scenario


def test_same_seed_reproduces_the_exact_stream():
    spec = DriftSpec(kind="step", magnitude=0.5, start=0.5)
    a = generate_drift_scenario(spec, seed=3, n_stream=16)
    b = generate_drift_scenario(spec, seed=3, n_stream=16)
    assert a.stream == b.stream
    assert [e.runtime_s for e in a.history] == [e.runtime_s for e in b.history]


def test_different_seeds_differ():
    spec = DriftSpec(kind="step", magnitude=0.5)
    a = generate_drift_scenario(spec, seed=1, n_stream=8)
    b = generate_drift_scenario(spec, seed=2, n_stream=8)
    assert a.stream != b.stream


def test_step_jumps_at_the_configured_position():
    scenario = generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.4, start=0.5), seed=0, n_stream=10
    )
    factors = [scenario.drift_factor(i) for i in range(10)]
    assert factors[:5] == [1.0] * 5
    assert factors[5:] == [pytest.approx(1.4)] * 5


def test_slope_grows_monotonically_to_full_magnitude():
    scenario = generate_drift_scenario(
        DriftSpec(kind="slope", magnitude=0.6), seed=0, n_stream=12
    )
    factors = [scenario.drift_factor(i) for i in range(12)]
    assert all(b > a for a, b in zip(factors, factors[1:]))
    assert factors[-1] == pytest.approx(1.6)


def test_noise_burst_preserves_the_mean_but_boosts_sigma():
    spec = DriftSpec(kind="noise-burst", magnitude=1.0, start=0.25, end=0.75)
    scenario = generate_drift_scenario(spec, seed=0, n_stream=16, noise_sigma=0.02)
    assert all(scenario.drift_factor(i) == 1.0 for i in range(16))
    assert scenario.noise_sigma(0, 0.02) == pytest.approx(0.02)
    assert scenario.noise_sigma(8, 0.02) == pytest.approx(0.04)   # inside burst
    assert scenario.noise_sigma(15, 0.02) == pytest.approx(0.02)  # after it


def test_stream_runtimes_track_the_drifted_law():
    """Observed runtimes stay within noise of factor x expected runtime."""
    scenario = generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.9, start=0.0), seed=0,
        n_stream=12, noise_sigma=0.02,
    )
    for position, (machines, runtime) in enumerate(scenario.stream):
        expected = scenario.expected_runtime(machines, position=position)
        assert runtime == pytest.approx(expected, rel=0.12)  # lognormal noise


def test_evaluation_set_reflects_end_of_stream_drift():
    scenario = generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.5, start=0.0), seed=0, n_stream=8
    )
    machines, truths = scenario.evaluation_set([4, 8])
    undrifted = np.array([scenario.expected_runtime(4), scenario.expected_runtime(8)])
    assert np.allclose(truths, undrifted * 1.5)


def test_history_spans_the_scaleout_grid():
    scenario = generate_drift_scenario(
        DriftSpec(kind="slope"), seed=0,
        history_scaleouts=(2, 4, 8), history_repeats=2, n_stream=4,
    )
    assert len(scenario.history) == 6
    assert sorted({e.machines for e in scenario.history}) == [2, 4, 8]
    assert all(e.context == scenario.context for e in scenario.history)


def test_invalid_specs_are_rejected():
    with pytest.raises(ValueError, match="unknown drift kind"):
        DriftSpec(kind="wobble")
    with pytest.raises(ValueError, match="magnitude"):
        DriftSpec(kind="step", magnitude=-0.1)
    with pytest.raises(ValueError, match="fractions"):
        DriftSpec(kind="noise-burst", start=1.5)
    with pytest.raises(ValueError, match="n_stream"):
        generate_drift_scenario(DriftSpec(), n_stream=0)


def test_all_kinds_generate():
    for kind in DRIFT_KINDS:
        scenario = generate_drift_scenario(DriftSpec(kind=kind), seed=0, n_stream=4)
        assert isinstance(scenario, DriftScenario)
        assert len(scenario.stream) == 4
