"""Property-based tests of the runtime law's physical invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.algorithms import ALGORITHM_PROFILES, get_algorithm_profile
from repro.simulator.nodes import CLOUD_NODE_TYPES, get_node_type
from repro.simulator.runtime_law import (
    ContextLatents,
    expected_runtime,
    work_factor_from_params,
)

ALGORITHMS = sorted(ALGORITHM_PROFILES)
NODES = sorted(CLOUD_NODE_TYPES)

algorithm_st = st.sampled_from(ALGORITHMS)
node_st = st.sampled_from(NODES)
machines_st = st.integers(min_value=1, max_value=64)
dataset_st = st.integers(min_value=500, max_value=80_000)


@settings(max_examples=60, deadline=None)
@given(algorithm=algorithm_st, node=node_st, machines=machines_st, mb=dataset_st)
def test_runtime_positive_and_finite(algorithm, node, machines, mb):
    runtime = expected_runtime(
        get_algorithm_profile(algorithm), get_node_type(node), machines, float(mb)
    )
    assert np.isfinite(runtime) and runtime > 0.0


@settings(max_examples=40, deadline=None)
@given(algorithm=algorithm_st, node=node_st, machines=machines_st, mb=dataset_st)
def test_runtime_monotone_in_dataset_size(algorithm, node, machines, mb):
    """More data never runs faster (all other things equal)."""
    profile = get_algorithm_profile(algorithm)
    node_type = get_node_type(node)
    small = expected_runtime(profile, node_type, machines, float(mb))
    large = expected_runtime(profile, node_type, machines, float(mb) * 2.0)
    assert large >= small - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    algorithm=st.sampled_from(("grep", "sort")),
    node=node_st,
    mb=st.integers(min_value=10_000, max_value=80_000),
)
def test_batch_jobs_benefit_from_machines_when_work_dominates(algorithm, node, mb):
    """In the work-dominated regime (batch jobs, >= 10 GB), 8 machines beat 1.

    The inverse is *deliberately* not universal: iterative jobs on small
    datasets are synchronization-dominated and slow down with more machines —
    the paper's "non-trivial scale-out behaviour" (Fig. 2).
    """
    profile = get_algorithm_profile(algorithm)
    node_type = get_node_type(node)
    one = expected_runtime(profile, node_type, 1, float(mb))
    eight = expected_runtime(profile, node_type, 8, float(mb))
    assert eight < one


def test_sync_dominated_jobs_slow_down_with_machines():
    """The non-trivial regime exists: tiny iterative jobs prefer few machines."""
    profile = get_algorithm_profile("kmeans")
    node_type = get_node_type("c4.2xlarge")
    params = {"iterations": "30", "k": "10"}
    two = expected_runtime(profile, node_type, 2, 500.0, params=params)
    twelve = expected_runtime(profile, node_type, 12, 500.0, params=params)
    assert twelve > two


@settings(max_examples=40, deadline=None)
@given(algorithm=algorithm_st, node=node_st, machines=machines_st, mb=dataset_st)
def test_legacy_software_is_slower(algorithm, node, machines, mb):
    profile = get_algorithm_profile(algorithm)
    node_type = get_node_type(node)
    modern = expected_runtime(profile, node_type, machines, float(mb))
    legacy = expected_runtime(
        profile, node_type, machines, float(mb), legacy_software=True
    )
    assert legacy >= modern


@settings(max_examples=40, deadline=None)
@given(
    algorithm=algorithm_st,
    node=node_st,
    machines=machines_st,
    mb=dataset_st,
    spread=st.floats(min_value=0.01, max_value=0.5),
    salt=st.integers(min_value=0, max_value=10_000),
)
def test_latents_scale_runtime_smoothly(algorithm, node, machines, mb, spread, salt):
    """Latents multiply terms; runtime stays within the latents' envelope."""
    profile = get_algorithm_profile(algorithm)
    node_type = get_node_type(node)
    latents = ContextLatents.from_descriptor(salt, f"ctx-{salt}", spread=spread)
    base = expected_runtime(profile, node_type, machines, float(mb))
    scaled = expected_runtime(
        profile, node_type, machines, float(mb), latents=latents
    )
    # Shuffle time carries no latent factor, so the envelope includes 1.0.
    bound = max(1.0, latents.work, latents.overhead, latents.sync)
    floor = min(1.0, latents.work, latents.overhead, latents.sync)
    assert floor * base - 1e-6 <= scaled <= bound * base + 1e-6


class TestWorkFactors:
    def test_kmeans_scales_with_k(self):
        profile = get_algorithm_profile("kmeans")
        assert work_factor_from_params(profile, {"k": "20"}) == pytest.approx(2.0)
        assert work_factor_from_params(profile, {"k": "5"}) == pytest.approx(0.5)

    def test_kmeans_invalid_k(self):
        with pytest.raises(ValueError):
            work_factor_from_params(get_algorithm_profile("kmeans"), {"k": "0"})

    def test_grep_pattern_length(self):
        profile = get_algorithm_profile("grep")
        short = work_factor_from_params(profile, {"pattern": "a"})
        long = work_factor_from_params(profile, {"pattern": "a" * 40})
        assert long > short
        # Pattern cost is capped at 30 characters.
        assert long == work_factor_from_params(profile, {"pattern": "b" * 31})

    def test_sgd_params_neutral(self):
        profile = get_algorithm_profile("sgd")
        assert work_factor_from_params(profile, {"step_size": "1.0"}) == 1.0


class TestValidation:
    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError, match="machines"):
            expected_runtime(
                get_algorithm_profile("grep"), get_node_type("m4.xlarge"), 0, 1000.0
            )

    def test_zero_dataset_rejected(self):
        with pytest.raises(ValueError, match="dataset_mb"):
            expected_runtime(
                get_algorithm_profile("grep"), get_node_type("m4.xlarge"), 2, 0.0
            )

    def test_iterative_cliff_depends_on_memory(self):
        """The SGD cliff hits low-memory nodes harder than high-memory ones."""
        profile = get_algorithm_profile("sgd")
        params = {"max_iterations": "50"}
        low_memory = expected_runtime(
            profile, get_node_type("c4.2xlarge"), 2, 40_000.0, params=params
        )
        high_memory = expected_runtime(
            profile, get_node_type("r4.2xlarge"), 2, 40_000.0, params=params
        )
        assert low_memory > high_memory * 1.5
