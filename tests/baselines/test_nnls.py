"""Tests of the from-scratch Lawson-Hanson NNLS solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp
from scipy.optimize import nnls as scipy_nnls

from repro.baselines.nnls import check_kkt, nnls


class TestBasics:
    def test_unconstrained_optimum_already_nonnegative(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([2.0, 3.0])
        x, residual = nnls(A, b)
        np.testing.assert_allclose(x, [2.0, 3.0], atol=1e-10)
        assert residual == pytest.approx(0.0, abs=1e-10)

    def test_constraint_active(self):
        # LS solution would be negative; NNLS must clamp to zero.
        A = np.array([[1.0], [1.0]])
        b = np.array([-1.0, -2.0])
        x, residual = nnls(A, b)
        assert x[0] == 0.0
        assert residual == pytest.approx(np.linalg.norm(b))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nnls(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            nnls(np.ones((3, 2)), np.ones(4))

    def test_underdetermined_system(self):
        # 1 equation, 4 unknowns (Ernest fitted on one point).
        A = np.array([[1.0, 0.5, 0.7, 2.0]])
        b = np.array([3.0])
        x, residual = nnls(A, b)
        assert (x >= 0).all()
        assert residual == pytest.approx(0.0, abs=1e-9)

    def test_solution_nonnegative_always(self):
        rng = np.random.default_rng(5)
        for _ in range(50):
            A = rng.normal(size=(6, 4))
            b = rng.normal(size=6)
            x, _ = nnls(A, b)
            assert (x >= 0).all()

    def test_zero_rhs(self):
        A = np.ones((3, 2))
        x, residual = nnls(A, np.zeros(3))
        np.testing.assert_allclose(x, 0.0)
        assert residual == pytest.approx(0.0)


class TestAgainstScipy:
    # Round elements to avoid subnormal/near-epsilon values where LAPACK's
    # rank decisions (and hence residuals of degenerate systems) may differ.
    @given(
        hnp.arrays(
            np.float64,
            (6, 4),
            elements=st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 6)),
        ),
        hnp.arrays(
            np.float64,
            (6,),
            elements=st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 6)),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_residual_matches(self, A, b):
        x, residual = nnls(A, b)
        _, scipy_residual = scipy_nnls(A, b)
        # The residual norm is unique even when the solution is not.
        assert residual == pytest.approx(scipy_residual, abs=1e-7, rel=1e-7)

    @given(
        hnp.arrays(np.float64, (8, 3), elements=st.floats(-10, 10, allow_nan=False)),
        hnp.arrays(np.float64, (8,), elements=st.floats(-10, 10, allow_nan=False)),
    )
    @settings(max_examples=60, deadline=None)
    def test_kkt_conditions_hold(self, A, b):
        x, _ = nnls(A, b)
        assert check_kkt(A, b, x, tol=1e-6)

    def test_wide_matrix(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(3, 7))
        b = rng.normal(size=3)
        x, residual = nnls(A, b)
        _, scipy_residual = scipy_nnls(A, b)
        assert residual == pytest.approx(scipy_residual, abs=1e-8)


class TestCheckKkt:
    def test_rejects_negative_solution(self):
        A = np.eye(2)
        b = np.array([1.0, 1.0])
        assert not check_kkt(A, b, np.array([-0.5, 1.0]))

    def test_rejects_suboptimal_solution(self):
        A = np.eye(2)
        b = np.array([1.0, 1.0])
        assert not check_kkt(A, b, np.array([0.0, 0.0]))

    def test_accepts_optimum(self):
        A = np.eye(2)
        b = np.array([1.0, 1.0])
        assert check_kkt(A, b, np.array([1.0, 1.0]))
