"""Tests of the Ernest and Bell baseline models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BellModel, ErnestModel, InterpolationModel


def ernest_curve(x: np.ndarray, theta=(5.0, 120.0, 3.0, 0.4)) -> np.ndarray:
    t1, t2, t3, t4 = theta
    return t1 + t2 / x + t3 * np.log(x) + t4 * x


GRID = np.array([2.0, 4.0, 6.0, 8.0, 10.0, 12.0])


class TestErnest:
    def test_recovers_in_family_curve(self):
        y = ernest_curve(GRID)
        model = ErnestModel().fit(GRID, y)
        np.testing.assert_allclose(model.predict(GRID), y, atol=1e-8)

    def test_weights_nonnegative(self):
        rng = np.random.default_rng(0)
        y = ernest_curve(GRID) * rng.uniform(0.9, 1.1, GRID.size)
        model = ErnestModel().fit(GRID, y)
        assert (model.theta >= 0).all()

    def test_extrapolates_in_family(self):
        y = ernest_curve(GRID)
        model = ErnestModel().fit(GRID, y)
        assert model.predict_one(20.0) == pytest.approx(ernest_curve(np.array([20.0]))[0], rel=1e-6)

    def test_single_point_is_defined_but_degenerate(self):
        model = ErnestModel().fit(np.array([4.0]), np.array([100.0]))
        assert model.predict_one(4.0) == pytest.approx(100.0, rel=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ErnestModel().predict(GRID)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErnestModel().fit(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            ErnestModel().fit(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            ErnestModel().fit(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            ErnestModel().fit(np.array([2.0]), np.array([-5.0]))


class TestInterpolation:
    def test_exact_at_training_points(self):
        y = np.array([100.0, 60.0, 45.0, 40.0, 38.0, 37.0])
        model = InterpolationModel().fit(GRID, y)
        np.testing.assert_allclose(model.predict(GRID), y)

    def test_linear_between_points(self):
        model = InterpolationModel().fit(np.array([2.0, 4.0]), np.array([10.0, 20.0]))
        assert model.predict_one(3.0) == pytest.approx(15.0)

    def test_extrapolates_boundary_slope(self):
        model = InterpolationModel().fit(
            np.array([2.0, 4.0, 6.0]), np.array([30.0, 20.0, 10.0])
        )
        assert model.predict_one(8.0) == pytest.approx(0.001)  # clipped at floor
        assert model.predict_one(1.0) == pytest.approx(35.0)

    def test_repeats_averaged(self):
        machines = np.array([2.0, 2.0, 4.0])
        runtimes = np.array([10.0, 14.0, 20.0])
        model = InterpolationModel().fit(machines, runtimes)
        assert model.predict_one(2.0) == pytest.approx(12.0)

    def test_never_negative(self):
        model = InterpolationModel().fit(
            np.array([2.0, 4.0]), np.array([100.0, 1.0])
        )
        assert model.predict_one(12.0) > 0.0

    def test_single_distinct_scaleout_constant(self):
        model = InterpolationModel().fit(np.array([4.0, 4.0]), np.array([10.0, 12.0]))
        assert model.predict_one(8.0) == pytest.approx(11.0)


class TestBell:
    def test_selects_parametric_for_in_family_curve(self):
        y = ernest_curve(GRID)
        model = BellModel().fit(GRID, y)
        assert model.selected_kind == "parametric"

    def test_selects_nonparametric_for_linear_decay(self):
        # A linearly decreasing curve is outside the non-negative Ernest
        # family (only the 1/x term can decrease), but the piecewise-linear
        # interpolator reproduces it exactly under leave-one-out CV.
        y = np.array([600.0, 500.0, 400.0, 300.0, 200.0, 100.0])
        model = BellModel().fit(GRID, y)
        assert model.selected_kind == "nonparametric"

    def test_fallback_below_three_points(self):
        model = BellModel().fit(np.array([2.0, 4.0]), np.array([10.0, 8.0]))
        assert model.selected_kind == "parametric-fallback"

    def test_predictions_track_selected_model(self):
        y = ernest_curve(GRID)
        model = BellModel().fit(GRID, y)
        reference = ErnestModel().fit(GRID, y)
        np.testing.assert_allclose(model.predict(GRID), reference.predict(GRID))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BellModel().predict(GRID)

    def test_min_train_points_constant(self):
        assert BellModel.min_train_points == 3

    def test_predict_one(self):
        model = BellModel().fit(GRID, ernest_curve(GRID))
        assert isinstance(model.predict_one(5.0), float)
