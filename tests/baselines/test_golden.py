"""Golden regression fixtures for the classical baselines (nnls/ernest/bell).

Each case fits a model family on a frozen synthetic dataset and compares its
predictions on a fixed query grid against values checked into
``tests/baselines/golden/golden.json`` — within 1e-10, so a numeric refactor
(solver rewrite, vectorization, operand reordering) cannot silently shift
baseline results.

Regenerate after an *intentional* numeric change::

    PYTHONPATH=src python tests/baselines/test_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.bell_model import BellModel
from repro.baselines.ernest import ErnestModel
from repro.baselines.nnls import nnls
from repro.baselines.nonparametric import InterpolationModel

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden.json"

TOLERANCE = 1e-10

#: The frozen query grid every fitted model predicts on.
QUERY_MACHINES = [1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 12.0, 16.0, 24.0]

#: Frozen training sets. Literal values — regenerating the suite's synthetic
#: datasets must not move these.
TRAINING_SETS = {
    "clean_curve": {
        "machines": [2.0, 4.0, 6.0, 8.0, 10.0, 12.0],
        "runtimes": [612.5, 342.8, 261.4, 224.9, 209.3, 203.8],
    },
    "noisy_curve": {
        "machines": [2.0, 2.0, 4.0, 4.0, 6.0, 8.0, 10.0, 12.0],
        "runtimes": [598.1, 645.2, 330.7, 355.9, 270.2, 219.6, 215.8, 197.4],
    },
    "three_points": {
        "machines": [2.0, 6.0, 12.0],
        "runtimes": [540.0, 250.0, 190.0],
    },
}

MODEL_FACTORIES = {
    "nnls": ErnestModel,      # the paper's "NNLS" baseline (Ernest's model)
    "bell": BellModel,
    "interpolation": InterpolationModel,
}


def compute_golden() -> dict:
    """Fit every (model, training set) pair and predict the query grid."""
    out: dict = {"tolerance": TOLERANCE, "query_machines": QUERY_MACHINES, "cases": {}}
    for dataset_name, data in TRAINING_SETS.items():
        machines = np.asarray(data["machines"], dtype=np.float64)
        runtimes = np.asarray(data["runtimes"], dtype=np.float64)
        for model_name, factory in MODEL_FACTORIES.items():
            model = factory().fit(machines, runtimes)
            predictions = model.predict(np.asarray(QUERY_MACHINES, dtype=np.float64))
            case: dict = {"predictions": [float(p) for p in predictions]}
            if model_name == "bell":
                case["selected_kind"] = model.selected_kind
            out["cases"][f"{model_name}/{dataset_name}"] = case
    # The raw NNLS solver itself, on a fixed ill-conditioned system.
    A = np.array(
        [
            [1.0, 0.5, 1.0, 2.0],
            [1.0, 0.25, 2.0, 4.0],
            [1.0, 0.125, 3.0, 8.0],
            [1.0, 0.1, 3.32, 10.0],
            [1.0, 0.0625, 4.0, 16.0],
        ]
    )
    b = np.array([400.0, 230.0, 160.0, 150.0, 120.0])
    x, rnorm = nnls(A, b)
    out["cases"]["nnls_solver/fixed_system"] = {
        "x": [float(v) for v in x],
        "rnorm": float(rnorm),
    }
    return out


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; generate it with "
        "`PYTHONPATH=src python tests/baselines/test_golden.py --regen`"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_golden_covers_every_case(golden):
    assert set(golden["cases"]) == set(compute_golden()["cases"])


@pytest.mark.parametrize(
    "case_name",
    [f"{m}/{d}" for m in MODEL_FACTORIES for d in TRAINING_SETS],
)
def test_model_predictions_match_golden(golden, case_name):
    fresh = compute_golden()["cases"][case_name]
    frozen = golden["cases"][case_name]
    fresh_pred = np.asarray(fresh["predictions"])
    frozen_pred = np.asarray(frozen["predictions"])
    drift = np.abs(fresh_pred - frozen_pred).max()
    assert drift <= TOLERANCE, (
        f"{case_name} drifted by {drift:.3e} (> {TOLERANCE}); if the numeric "
        "change is intentional, regenerate tests/baselines/golden/golden.json"
    )
    if "selected_kind" in frozen:
        assert fresh["selected_kind"] == frozen["selected_kind"]


def test_nnls_solver_matches_golden(golden):
    fresh = compute_golden()["cases"]["nnls_solver/fixed_system"]
    frozen = golden["cases"]["nnls_solver/fixed_system"]
    assert np.abs(np.asarray(fresh["x"]) - np.asarray(frozen["x"])).max() <= TOLERANCE
    assert abs(fresh["rnorm"] - frozen["rnorm"]) <= TOLERANCE


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(compute_golden(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
