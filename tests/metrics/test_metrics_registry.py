"""The metric primitives and registry: values, labels, quantiles, safety."""

from __future__ import annotations

import math
import random
import threading

import pytest

from repro.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    fanout_progress,
    log_buckets,
    timed,
)
from repro.metrics.registry import OVERFLOW_LABEL_VALUE


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("t_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_raises(self):
        counter = Counter("t_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_labeled_family_is_not_writable(self):
        family = Counter("t_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="labels"):
            family.inc()
        family.labels(kind="a").inc(2)
        assert family.labels(kind="a").value == 2.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("t_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0

    def test_track_inflight_restores_on_error(self):
        gauge = Gauge("t_inflight")
        with pytest.raises(RuntimeError):
            with gauge.track_inflight():
                assert gauge.value == 1.0
                raise RuntimeError("boom")
        assert gauge.value == 0.0


class TestHistogram:
    def test_exact_count_and_sum(self):
        hist = Histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 14.0
        assert hist.bucket_counts() == (1, 1, 1, 1)

    def test_boundary_value_lands_in_le_bucket(self):
        # Prometheus `le` semantics: an observation equal to a bound
        # belongs to that bound's bucket.
        hist = Histogram("t_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.bucket_counts() == (1, 0, 0)

    def test_empty_quantile_is_nan(self):
        hist = Histogram("t_seconds", buckets=(1.0,))
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_clamps_to_largest_finite_bound(self):
        hist = Histogram("t_seconds", buckets=(1.0, 2.0))
        hist.observe(100.0)  # +Inf bucket
        assert hist.quantile(0.5) == 2.0

    def test_quantile_out_of_range_raises(self):
        hist = Histogram("t_seconds", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_non_increasing_buckets_raise(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("t_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("t_seconds", buckets=())

    def test_default_buckets_are_the_latency_ladder(self):
        hist = Histogram("t_seconds")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS

    def test_percentiles_keys(self):
        hist = Histogram("t_seconds", buckets=(1.0, 2.0))
        hist.observe(0.5)
        assert set(hist.percentiles()) == {"p50", "p95", "p99"}

    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_quantile_accuracy_vs_sorted_sample(self, q):
        """Streaming estimates stay within the bucket of the true quantile."""
        rng = random.Random(7)
        buckets = log_buckets(0.001, 30.0, per_decade=3)
        hist = Histogram("t_seconds", buckets=buckets)
        samples = [rng.lognormvariate(-3.0, 1.2) for _ in range(5000)]
        for value in samples:
            hist.observe(value)
        samples.sort()
        reference = samples[min(len(samples) - 1, int(q * len(samples)))]
        estimate = hist.quantile(q)
        # The estimate can never leave the bucket containing the true
        # quantile, so its error is bounded by that bucket's width.
        bounds = (0.0,) + buckets
        for lower, upper in zip(bounds, bounds[1:]):
            if lower < reference <= upper:
                assert lower <= estimate <= upper
                break
        else:
            assert estimate == buckets[-1]  # reference beyond last bound


class TestLogBuckets:
    def test_doc_examples(self):
        assert log_buckets(1, 10, per_decade=3) == (1.0, 2.15, 4.64, 10.0)
        assert log_buckets(0.001, 1.0, per_decade=1) == (0.001, 0.01, 0.1, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)


class TestLabels:
    def test_same_label_set_returns_same_child(self):
        family = Counter("t_total", labelnames=("route", "method"))
        child = family.labels(route="/predict", method="POST")
        assert family.labels(method="POST", route="/predict") is child

    def test_values_are_str_coerced(self):
        family = Gauge("t_depth", labelnames=("shard",))
        family.labels(shard=3).set(1)
        assert family.labels(shard="3").value == 1.0

    def test_wrong_label_keys_raise(self):
        family = Counter("t_total", labelnames=("route",))
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(path="/predict")
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(route="/predict", method="GET")

    def test_labels_on_unlabeled_metric_raises(self):
        with pytest.raises(ValueError, match="without labelnames"):
            Counter("t_total").labels(route="x")

    def test_labels_on_child_raises(self):
        family = Counter("t_total", labelnames=("route",))
        child = family.labels(route="/predict")
        with pytest.raises(ValueError, match="child"):
            child.labels(route="/other")

    def test_invalid_names_raise(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("t_total", labelnames=("bad-label",))
        with pytest.raises(ValueError, match="duplicate"):
            Counter("t_total", labelnames=("a", "a"))

    def test_cardinality_cap_collapses_into_other(self):
        family = Counter("t_total", labelnames=("user",), max_label_sets=3)
        for index in range(10):
            family.labels(user=f"u{index}").inc()
        overflow = family.labels(user="u999")
        assert overflow._labelvalues == (OVERFLOW_LABEL_VALUE,)
        # 3 real children + the shared overflow child; 7 of the first 10
        # label sets collapsed, plus u999 resolving to the existing child.
        assert family.dropped_label_sets == 8
        assert overflow.value == 7.0
        # Established children keep their own series.
        assert family.labels(user="u0").value == 1.0


class TestTimed:
    def test_context_manager_observes_once(self):
        hist = Histogram("t_seconds", buckets=(10.0,))
        with timed(hist):
            pass
        assert hist.count == 1
        assert 0.0 <= hist.sum < 10.0

    def test_decorator_preserves_function(self):
        hist = Histogram("t_seconds", buckets=(10.0,))

        @timed(hist)
        def work(x):
            """Docstring survives."""
            return x * 2

        assert work(21) == 42
        assert work.__doc__ == "Docstring survives."
        assert hist.count == 1

    def test_observes_even_when_block_raises(self):
        hist = Histogram("t_seconds", buckets=(10.0,))
        with pytest.raises(RuntimeError):
            with timed(hist):
                raise RuntimeError("boom")
        assert hist.count == 1

    def test_nested_use_is_balanced(self):
        hist = Histogram("t_seconds", buckets=(10.0,))
        timer = timed(hist)
        with timer:
            with timer:
                pass
        assert hist.count == 2


class TestRegistry:
    def test_get_or_create_returns_existing(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "help text")
        assert registry.counter("t_total") is first
        assert registry.get("t_total") is first
        assert registry.get("absent") is None

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_metric")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("t_metric")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.histogram("t_metric")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total", labelnames=("route",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("t_total", labelnames=("method",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("t_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("t_seconds", buckets=(1.0, 4.0))
        # Re-requesting without explicit buckets accepts the existing ones.
        assert registry.histogram("t_seconds").buckets == (1.0, 2.0)

    def test_names_and_collect_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("t_b_total")
        registry.gauge("t_a_depth")
        assert registry.names() == ["t_a_depth", "t_b_total"]
        assert [m.name for m in registry.collect()] == ["t_a_depth", "t_b_total"]

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "Things.").inc(2)
        registry.histogram("t_seconds", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["t_total"]["type"] == "counter"
        assert snapshot["t_total"]["series"] == [{"labels": {}, "value": 2.0}]
        series = snapshot["t_seconds"]["series"][0]
        assert series["count"] == 1 and series["sum"] == 0.5
        assert set(series) == {"labels", "count", "sum", "p50", "p95", "p99"}

    def test_default_registry_is_process_wide(self):
        assert default_registry() is default_registry()


class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, fn):
        start = threading.Barrier(self.THREADS)

        def run():
            start.wait()
            for _ in range(self.PER_THREAD):
                fn()

        threads = [threading.Thread(target=run) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_total_is_exact(self):
        counter = Counter("t_total")
        self._hammer(counter.inc)
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_labeled_counter_totals_are_exact(self):
        family = Counter("t_total", labelnames=("worker",))
        ident = threading.local()
        counter = iter(range(10**6))

        def inc():
            if not hasattr(ident, "child"):
                ident.child = family.labels(worker=next(counter))
            ident.child.inc()

        self._hammer(inc)
        total = sum(child.value for _, child in family._series())
        assert total == self.THREADS * self.PER_THREAD

    def test_histogram_count_and_sum_are_exact(self):
        # Integer-valued observations so the float sum is exact.
        hist = Histogram("t_seconds", buckets=(1.0, 4.0, 16.0))
        self._hammer(lambda: hist.observe(2.0))
        expected = self.THREADS * self.PER_THREAD
        assert hist.count == expected
        assert hist.sum == 2.0 * expected
        assert sum(hist.bucket_counts()) == expected

    def test_concurrent_get_or_create_yields_one_metric(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def create():
            metric = registry.counter("t_total")
            with lock:
                seen.append(metric)

        self._hammer(create)
        assert all(metric is seen[0] for metric in seen)


class TestFanoutProgress:
    def test_tracks_remaining_and_completed(self):
        registry = MetricsRegistry()
        progress = fanout_progress(registry, total=4, name="trial")
        remaining = registry.get("repro_fanout_remaining").labels(fanout="trial")
        completed = registry.get("repro_fanout_completed_total").labels(fanout="trial")
        assert remaining.value == 4.0
        progress(1, 4)
        progress(3, 4)
        assert remaining.value == 1.0
        assert completed.value == 3.0
        progress(3, 4)  # duplicate report: counter must not double-count
        assert completed.value == 3.0
