"""Prometheus text exposition: golden rendering and parser round-trips."""

from __future__ import annotations

import math

import pytest

from repro.metrics import CONTENT_TYPE, MetricsRegistry, parse_text, render_text


def _demo_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter(
        "demo_requests_total", "Requests served.", labelnames=("route",)
    )
    requests.labels(route="/predict").inc(3)
    requests.labels(route="/healthz").inc()
    registry.gauge("demo_queue_depth", "Queued items.").set(2)
    latency = registry.histogram(
        "demo_latency_seconds", "Request latency.", buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 0.5, 7.0):
        latency.observe(value)
    return registry


GOLDEN = """\
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 1
demo_latency_seconds_bucket{le="1"} 3
demo_latency_seconds_bucket{le="+Inf"} 4
demo_latency_seconds_sum 8.05
demo_latency_seconds_count 4
# HELP demo_queue_depth Queued items.
# TYPE demo_queue_depth gauge
demo_queue_depth 2
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{route="/healthz"} 1
demo_requests_total{route="/predict"} 3
"""


class TestRenderText:
    def test_golden_output(self):
        assert render_text(_demo_registry()) == GOLDEN

    def test_empty_registry_renders_empty(self):
        assert render_text(MetricsRegistry()) == ""

    def test_content_type_pins_format_version(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_help_and_label_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "demo_total", 'multi\nline \\ help', labelnames=("path",)
        )
        family.labels(path='a"b\\c\nd').inc()
        text = render_text(registry)
        assert '# HELP demo_total multi\\nline \\\\ help' in text
        assert 'demo_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_integral_floats_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.gauge("demo_value").set(5.0)
        assert "demo_value 5\n" in render_text(registry)


class TestParseText:
    def test_round_trip_preserves_every_sample(self):
        registry = _demo_registry()
        series = parse_text(render_text(registry))
        assert series["demo_requests_total"] == [
            ({"route": "/healthz"}, 1.0),
            ({"route": "/predict"}, 3.0),
        ]
        assert series["demo_queue_depth"] == [({}, 2.0)]
        assert series["demo_latency_seconds_bucket"] == [
            ({"le": "0.1"}, 1.0),
            ({"le": "1"}, 3.0),
            ({"le": "+Inf"}, 4.0),
        ]
        assert series["demo_latency_seconds_sum"] == [({}, 8.05)]
        assert series["demo_latency_seconds_count"] == [({}, 4.0)]

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        registry.counter("demo_total", labelnames=("path",)).labels(
            path=tricky
        ).inc()
        series = parse_text(render_text(registry))
        assert series["demo_total"] == [({"path": tricky}, 1.0)]

    def test_special_values(self):
        series = parse_text("a NaN\nb +Inf\nc -Inf\n")
        assert math.isnan(series["a"][0][1])
        assert series["b"][0][1] == math.inf
        assert series["c"][0][1] == -math.inf

    def test_comments_and_blanks_are_skipped(self):
        series = parse_text("# HELP a help\n\n# TYPE a counter\na 1\n")
        assert series == {"a": [({}, 1.0)]}

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_text("demo_total{route= 1\n")
        with pytest.raises(ValueError, match="malformed"):
            parse_text("not a sample line\n")
