"""Property test: concurrent commits and deletes never tear an artifact.

Hypothesis draws the schedule — per-thread operation lists of tagged
two-member commits and deletes against one artifact name — and the
threads run it concurrently. Whatever interleaving the scheduler picks,
the store's locking must guarantee:

* the member pair is never torn: both files present with the same tag,
  or both absent;
* the index never points at missing bytes.

Each example runs against a fresh root so examples cannot contaminate
each other (hypothesis re-runs the body many times per test invocation,
which is why the package's function-scoped ``harness`` fixture is not
used here).
"""

from __future__ import annotations

import tempfile
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import ArtifactStore

from .conftest import BACKENDS, release_uri, store_uri, write_text

pytestmark = pytest.mark.fuzz

#: One thread's schedule: a few commits/deletes in order.
_OPS = st.lists(st.sampled_from(["commit", "delete"]), min_size=1, max_size=4)
#: Two to four concurrent threads, each with its own schedule.
_SCHEDULES = st.lists(_OPS, min_size=2, max_size=4)


def _run_schedule(store: ArtifactStore, ops, worker_id, errors):
    try:
        for step, op in enumerate(ops):
            if op == "commit":
                tag = f"{worker_id}-{step}"
                with store.transaction("shared") as txn:
                    txn.write("npz", write_text(tag))
                    txn.write("json", write_text(tag))
            else:
                store.delete("shared")
    except BaseException as exc:  # pragma: no cover - the failure we hunt
        errors.append((worker_id, exc))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedules=_SCHEDULES)
def test_interleaved_commits_and_deletes_never_tear(backend, schedules):
    with tempfile.TemporaryDirectory(prefix="repro-conformance-") as tmp:
        root = store_uri(backend, tmp)
        try:
            store = ArtifactStore(root)
            errors = []
            threads = [
                threading.Thread(
                    target=_run_schedule,
                    args=(ArtifactStore(root), ops, worker_id, errors),
                )
                for worker_id, ops in enumerate(schedules)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert errors == []

            # Invariant 1: the member pair is whole — both present with one
            # writer's tag, or both absent.
            npz = store.find("shared", "npz")
            sidecar = store.find("shared", "json")
            assert (npz is None) == (sidecar is None)
            if npz is not None:
                assert npz.read_text() == sidecar.read_text()

            # Invariant 2: every index entry resolves to committed bytes.
            index = store.backend.read_index() or {}
            for name, members in index.items():
                for member in members:
                    assert store.backend.member_path(name, member).is_file()

            # Invariant 3: no staged temp files survive the schedule.
            assert list(store.root.rglob("*.tmp")) == []
        finally:
            release_uri(backend, tmp)
