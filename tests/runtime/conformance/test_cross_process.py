"""Cross-process conformance: the locking/index contract between real
processes.

Runs on the backends whose state other processes can observe
(``local_fs`` and ``sqlite``; ``memory://`` is process-local by design,
so it has no cross-process story to conform to). The sqlite leg is the
ISSUE's explicit requirement: two writer processes hammering one artifact
through lease locks and row-level index upserts must never tear a member
pair or lose an index update.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.runtime import ArtifactStore


def _hammer_same_artifact(args):
    """Writer process: save tagged member pairs under one artifact name."""
    root, worker_id, rounds = args
    store = ArtifactStore(root)
    for i in range(rounds):
        tag = f"{worker_id}-{i}"
        with store.transaction("shared") as txn:
            txn.write("npz", lambda path, tag=tag: Path(path).write_text(tag))
            txn.write("json", lambda path, tag=tag: Path(path).write_text(tag))
    return worker_id


def _save_distinct_names(args):
    root, worker_id, rounds = args
    store = ArtifactStore(root)
    for i in range(rounds):
        with store.transaction(f"w{worker_id}-{i}") as txn:
            txn.write("npz", lambda path: Path(path).write_text("x"))
    return worker_id


@pytest.mark.stress
class TestCrossProcessConformance:
    def test_two_writer_processes_never_tear(self, xproc_harness):
        """Two writer processes on one name: every observable state is a
        whole save from one writer."""
        root = xproc_harness.root
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_hammer_same_artifact, (root, w, 10))
                for w in range(2)
            ]
            for future in futures:
                future.result(timeout=120)
        store = xproc_harness.reopen()
        final_npz = store.find("shared", "npz").read_text()
        final_json = store.find("shared", "json").read_text()
        assert final_npz == final_json  # one writer's save, whole
        assert store.names() == ["shared"]
        assert store.members("shared") == ["json", "npz"]

    def test_concurrent_distinct_names_all_indexed(self, xproc_harness):
        """Index registration loses no updates across processes."""
        root = xproc_harness.root
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_save_distinct_names, (root, w, 10))
                for w in range(2)
            ]
            for future in futures:
                future.result(timeout=120)
        store = xproc_harness.reopen()
        names = store.names()
        assert len(names) == 20
        for name in names:
            assert store.exists(name, "npz")
