"""Conformance: the monotonic store generation every backend must expose.

The fleet's cross-worker cache invalidation rides on one number: a
counter that moves with *every* index mutation (register, unregister,
rebuild), atomically with the mutation itself, and — for the shareable
backends — is visible to a fresh store handle as another process would
open one. ``memory://`` keeps the same in-process contract but must
*refuse* (not silently mis-answer) a cross-process read.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from .conftest import write_text


class TestGenerationContract:
    def test_fresh_store_starts_at_zero(self, harness):
        assert harness.open().generation() == 0

    def test_commit_bumps(self, harness):
        store = harness.open()
        before = store.generation()
        with store.transaction("model") as txn:
            txn.write("npz", write_text("payload"))
        assert store.generation() > before

    def test_every_mutation_bumps_monotonically(self, harness):
        store = harness.open()
        observed = [store.generation()]
        for name in ("a", "b"):
            with store.transaction(name) as txn:
                txn.write("npz", write_text(name))
            observed.append(store.generation())
        store.delete("a")
        observed.append(store.generation())
        store.rebuild_index()
        observed.append(store.generation())
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed)  # strictly increasing

    def test_aborted_transaction_does_not_bump(self, harness):
        """No member committed → nothing registered → generation still.

        (A transaction that dies *after* committing members keeps them —
        and their index entry, and hence the bump — by the store's crash
        semantics; only a commit-less abort must leave the counter alone.)
        """
        store = harness.open()
        before = store.generation()

        def exploding_writer(path: Path) -> None:
            raise RuntimeError("abort before commit")

        with pytest.raises(RuntimeError):
            with store.transaction("doomed") as txn:
                txn.write("npz", exploding_writer)
        assert store.generation() == before

    def test_read_only_operations_do_not_bump(self, harness):
        store = harness.open()
        with store.transaction("model") as txn:
            txn.write("npz", write_text("payload"))
        before = store.generation()
        store.names()
        store.members("model")
        store.exists("model", "npz")
        store.find("model", "npz")
        assert store.generation() == before


class TestGenerationCrossHandle:
    def test_reopened_handle_sees_the_bump(self, xproc_harness):
        """A fresh handle (what another process constructs) observes the
        writer's generation — the signal fleet workers poll on."""
        writer = xproc_harness.open()
        reader = xproc_harness.reopen()
        start = reader.generation()
        with writer.transaction("model") as txn:
            txn.write("npz", write_text("payload"))
        assert reader.generation() > start

    def test_generation_moves_with_the_index(self, xproc_harness):
        """Once the reader sees the new generation, the index mutation
        that bumped it is visible too (bump happens with, not after, the
        commit)."""
        writer = xproc_harness.open()
        reader = xproc_harness.reopen()
        before = reader.generation()
        with writer.transaction("fresh-model") as txn:
            txn.write("npz", write_text("payload"))
        assert reader.generation() > before
        assert "fresh-model" in reader.names()


def test_memory_backend_refuses_cross_process_generation(tmp_path):
    """``memory://`` raises a diagnosis, not a stale answer, from a fork."""
    from repro.runtime import ArtifactStore

    from .conftest import release_uri, store_uri

    uri = store_uri("memory", tmp_path)
    try:
        store = ArtifactStore(uri)
        assert store.generation() == 0  # in-process reads stay fine
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process
            os.close(read_fd)
            try:
                store.generation()
                os.write(write_fd, b"no-error")
            except RuntimeError as error:
                message = str(error).encode()
                os.write(write_fd, b"raised:" + message[:200])
            except BaseException:
                os.write(write_fd, b"wrong-error")
            finally:
                os._exit(0)
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as pipe:
            outcome = pipe.read().decode()
        os.waitpid(pid, 0)
        assert outcome.startswith("raised:")
        assert "process-private" in outcome
    finally:
        release_uri("memory", tmp_path)
