"""The backend contract, written once and run on every backend.

Each test body takes the parametrized ``harness`` fixture and therefore
runs verbatim on ``local_fs``, ``sqlite``, and ``memory``. A case that
needed a per-backend branch or skip would mean the backends disagree on
observable semantics — exactly what this suite exists to forbid. Crash
windows are simulated through backend primitives (``unregister``,
``replace_index``) rather than ``index.json`` surgery so the simulation
itself is backend-agnostic.
"""

from __future__ import annotations

import os
import time

import pytest

from .conftest import write_text


# --------------------------------------------------------------------- #
# Transactions
# --------------------------------------------------------------------- #


class TestTransactions:
    def test_commit_and_queries(self, harness):
        store = harness.open()
        with store.transaction("model-a") as txn:
            txn.write("npz", write_text("weights"))
            txn.write("json", write_text("meta"))
        assert store.exists("model-a")
        assert store.exists("model-a", "npz")
        assert not store.exists("model-a", "bin")
        assert store.names() == ["model-a"]
        assert store.members("model-a") == ["json", "npz"]
        # Members land in the two-level shard fan-out on every backend.
        path = store.find("model-a", "npz")
        assert path.read_text() == "weights"
        assert path.parent.parent.parent == store.root
        assert len(path.parent.name) == 2 and len(path.parent.parent.name) == 2

    def test_reopen_sees_commits(self, harness):
        writer = harness.open()
        with writer.transaction("m") as txn:
            txn.write("npz", write_text("x"))
        reader = harness.reopen()
        assert reader.exists("m", "npz")
        assert reader.names() == ["m"]
        assert reader.find("m", "npz").read_text() == "x"

    def test_aborted_transaction_keeps_committed_prefix(self, harness):
        """Prefix-crash semantics: members committed before the failure
        stay committed; the failing member leaves no file and no temp."""
        store = harness.open()

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with store.transaction("m") as txn:
                txn.write("npz", write_text("x"))  # commits

                def exploding(path):
                    path.write_text("partial")
                    raise Boom()

                txn.write("json", exploding)
        assert store.exists("m", "npz")
        assert not store.exists("m", "json")
        assert list(store.root.rglob("*.tmp")) == []

    def test_failing_first_writer_commits_nothing(self, harness):
        store = harness.open()
        with pytest.raises(RuntimeError):
            with store.transaction("m") as txn:
                txn.write("npz", lambda path: (_ for _ in ()).throw(RuntimeError()))
        assert not store.exists("m")
        assert store.names() == []
        assert list(store.root.rglob("*.tmp")) == []

    def test_overwrite_is_atomic_per_member(self, harness):
        store = harness.open()
        for tag in ("one", "two"):
            with store.transaction("m") as txn:
                txn.write("npz", write_text(tag))
        assert store.find("m", "npz").read_text() == "two"
        assert store.names() == ["m"]

    def test_transaction_holds_the_artifact_lock(self, harness):
        from repro.runtime import LockTimeout

        store = harness.open()
        with store.transaction("m") as txn:
            txn.write("npz", write_text("x"))
            contender = store.backend.lock("m")
            contender.timeout = 0.1
            with pytest.raises(LockTimeout):
                contender.acquire()
        # Released on exit: the same lock acquires now.
        with store.lock("m"):
            pass


# --------------------------------------------------------------------- #
# Names and members
# --------------------------------------------------------------------- #


class TestNaming:
    def test_dotted_names_do_not_collide(self, harness):
        """'m' and 'm.v2' are distinct artifacts; deleting one keeps the
        other (member suffixes are dot-free, so parsing is unambiguous)."""
        store = harness.open()
        for name in ("m", "m.v2"):
            with store.transaction(name) as txn:
                txn.write("npz", write_text(name))
        store.delete("m")
        assert store.names() == ["m.v2"]
        assert store.find("m.v2", "npz").read_text() == "m.v2"

    def test_unsafe_names_rejected(self, harness):
        store = harness.open()
        for name in ("../escape", "a/b", ""):
            with pytest.raises(ValueError):
                with store.transaction(name):
                    pass

    def test_reserved_members_rejected(self, harness):
        store = harness.open()
        with pytest.raises(ValueError):
            with store.transaction("m") as txn:
                txn.write("lock", write_text("x"))

    def test_queries_agree(self, harness):
        """names(), exists(), members(), and find() tell one story."""
        store = harness.open()
        expected = {"a": ["json", "npz"], "a.v2": ["npz"], "b": ["bin", "json"]}
        for name, members in expected.items():
            with store.transaction(name) as txn:
                for member in members:
                    txn.write(member, write_text(f"{name}.{member}"))
        assert store.names() == sorted(expected)
        for name, members in expected.items():
            assert store.exists(name)
            assert store.members(name) == sorted(members)
            for member in members:
                assert store.exists(name, member)
                assert store.find(name, member).read_text() == f"{name}.{member}"
        assert not store.exists("absent")
        assert store.members("absent") == []
        assert store.find("a", "bin") is None
        # The member filter of names() agrees with members().
        assert store.names(member="json") == ["a", "b"]
        assert store.names(member="bin") == ["b"]


# --------------------------------------------------------------------- #
# Deletion + GC
# --------------------------------------------------------------------- #


class TestMaintenance:
    def test_delete_removes_members_and_index_entry(self, harness):
        store = harness.open()
        with store.transaction("m") as txn:
            txn.write("npz", write_text("x"))
            txn.write("json", write_text("y"))
        store.delete("m")
        assert not store.exists("m")
        assert store.names() == []
        assert store.find("m", "npz") is None
        assert store.backend.stored_members("m") == set()
        store.delete("m")  # absent: no error
        # A reopened store agrees the artifact is gone.
        assert not harness.reopen().exists("m")

    def test_gc_temp_sweeps_only_orphans(self, harness):
        store = harness.open()
        shard = store.shard_dir("m")
        shard.mkdir(parents=True, exist_ok=True)
        old = shard / "m.npz.123.0.tmp"
        old.write_text("orphan")
        ancient = time.time() - 7200
        os.utime(old, (ancient, ancient))
        fresh = shard / "m.npz.123.1.tmp"
        fresh.write_text("in-flight")
        removed = store.gc_temp(max_age_s=3600.0)
        assert removed == [old]
        assert not old.exists() and fresh.exists()
        # Temp files are never visible as members.
        assert store.names() == []


# --------------------------------------------------------------------- #
# Index recovery: crash windows, self-heal, rebuild
# --------------------------------------------------------------------- #


class TestIndexRecovery:
    def test_find_self_heals_unregistered_member(self, harness):
        """A writer that crashed between committing bytes and registering
        the index entry is healed by the next find()/exists() — names()
        converges back to the stored bytes."""
        store = harness.open()
        with store.transaction("ok") as txn:
            txn.write("npz", write_text("x"))
        with store.transaction("orphan") as txn:
            txn.write("npz", write_text("y"))
        # Simulate the crash window through the backend's own primitive.
        store.backend.unregister("orphan")
        assert harness.reopen().names() == ["ok"]  # the regression
        healer = harness.reopen()
        assert healer.exists("orphan", "npz")  # stat fallback + self-heal
        assert healer.names() == ["ok", "orphan"]
        assert harness.reopen().names() == ["ok", "orphan"]  # persisted

    def test_rebuild_index_recovers_lost_index(self, harness):
        store = harness.open()
        for name in ("a", "b"):
            with store.transaction(name) as txn:
                txn.write("npz", write_text(name))
        store.backend.replace_index({})  # the index is lost wholesale
        fresh = harness.reopen()
        assert fresh.exists("a", "npz")  # stat fallback still answers
        assert fresh.rebuild_index() == ["a", "b"]
        assert fresh.names() == ["a", "b"]
        assert harness.reopen().names() == ["a", "b"]

    def test_index_never_points_at_missing_bytes(self, harness):
        """After arbitrary commits and deletes, every index entry resolves
        to committed bytes."""
        store = harness.open()
        for name in ("a", "b", "c"):
            with store.transaction(name) as txn:
                txn.write("npz", write_text(name))
                txn.write("json", write_text(name))
        store.delete("b")
        index = store.backend.read_index() or {}
        assert sorted(index) == ["a", "c"]
        for name, members in index.items():
            for member in members:
                assert store.backend.member_path(name, member).is_file()
