"""Backend-conformance harness: one fixture body, every backend.

Every test in this package takes the ``harness`` fixture, which is
parametrized over all registered backends (``local_fs``, ``sqlite``,
``memory``). Contract tests are written once against the harness and must
pass identically on all three — no per-backend skips. Cross-process tests
use ``xproc_harness``, which covers only the backends whose state is
visible to other processes (``memory://`` is process-local by design, so
it is excluded there by construction, not by skip).

The harness opens stores through store URIs (``file://``, ``sqlite://``,
``memory://``) so every conformance run also exercises the URI-based
backend selection in :func:`repro.runtime.backends.make_backend`.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.runtime import ArtifactStore

#: Every registered backend; contract tests run on all of them.
BACKENDS = ("local_fs", "sqlite", "memory")
#: Backends whose state other processes can observe.
CROSS_PROCESS_BACKENDS = ("local_fs", "sqlite")

_SCHEMES = {"local_fs": "file", "sqlite": "sqlite", "memory": "memory"}


def store_uri(backend: str, path: Path) -> str:
    """The store URI selecting ``backend`` rooted at ``path``.

    ``memory://`` URIs use the path purely as a process-wide key, so a
    unique ``tmp_path`` gives each test its own named instance.
    """
    return f"{_SCHEMES[backend]}://{path}"


def release_uri(backend: str, path: Path) -> None:
    """Drop per-test global state a URI may have created (the named
    ``memory://`` registry entry; the filesystem backends keep state only
    under ``path``, which pytest reclaims)."""
    if backend == "memory":
        from repro.runtime.backends import memory

        memory._REGISTRY.pop(str(path), None)


@dataclasses.dataclass
class StoreHarness:
    """Opens (and re-opens) stores against one backend + root."""

    backend: str
    root: str

    def open(self, **kwargs) -> ArtifactStore:
        return ArtifactStore(self.root, **kwargs)

    def reopen(self, **kwargs) -> ArtifactStore:
        """A fresh store over the same root — what a second process (or a
        later run) would construct. For ``memory://`` this resolves to
        the same named instance, which *is* its reopen semantics."""
        return self.open(**kwargs)


@pytest.fixture(params=BACKENDS)
def harness(request, tmp_path):
    backend = request.param
    yield StoreHarness(backend=backend, root=store_uri(backend, tmp_path))
    release_uri(backend, tmp_path)


@pytest.fixture(params=CROSS_PROCESS_BACKENDS)
def xproc_harness(request, tmp_path):
    backend = request.param
    yield StoreHarness(backend=backend, root=store_uri(backend, tmp_path))
    release_uri(backend, tmp_path)


def write_text(text: str):
    """A member writer committing ``text`` (the suite's payload helper)."""
    return lambda path: Path(path).write_text(text)
