"""ArtifactStore under faults: lock retries, commit failures, degradation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.persistence import ModelStore, default_lock_retry
from repro.resilience import (
    SITE_STORE_COMMIT,
    SITE_STORE_INDEX,
    SITE_STORE_LOCK,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
)
from repro.runtime import ArtifactStore, LockTimeout


def _write_text(text: str):
    return lambda path: Path(path).write_text(text)


def _lock_fault_plan(timeouts: int) -> FaultPlan:
    return FaultPlan(
        seed=0,
        specs=(
            FaultSpec(
                site=SITE_STORE_LOCK,
                kind="raise",
                exception=LockTimeout,
                max_fires=timeouts,
            ),
        ),
    )


# --------------------------------------------------------------------- #
# Lock acquisition retries
# --------------------------------------------------------------------- #


def test_injected_lock_timeouts_surface_without_a_retry_policy(tmp_path):
    store = ArtifactStore(tmp_path)
    with FaultInjector(_lock_fault_plan(timeouts=1)):
        with pytest.raises(LockTimeout):
            with store.transaction("m") as txn:
                txn.write("npz", _write_text("x"))
    assert not store.exists("m")


def test_retry_policy_absorbs_transient_lock_timeouts(tmp_path):
    retry = RetryPolicy(
        max_attempts=3, base_delay_s=0.0, retry_on=(LockTimeout,),
        sleep=lambda _: None,
    )
    store = ArtifactStore(tmp_path, retry=retry)
    with FaultInjector(_lock_fault_plan(timeouts=2)):
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
    assert store.exists("m", "npz")  # two timeouts retried, third try landed


def test_retry_budget_exhaustion_reraises_lock_timeout(tmp_path):
    retry = RetryPolicy(
        max_attempts=2, base_delay_s=0.0, retry_on=(LockTimeout,),
        sleep=lambda _: None,
    )
    store = ArtifactStore(tmp_path, retry=retry)
    with FaultInjector(_lock_fault_plan(timeouts=5)):
        with pytest.raises(LockTimeout):  # the original type, not a wrapper
            with store.transaction("m") as txn:
                txn.write("npz", _write_text("x"))


def test_model_store_retries_lock_timeouts_by_default(tmp_path):
    store = ModelStore(tmp_path)
    assert store.artifacts.retry is not None
    # Two injected timeouts sit inside the default three-attempt budget,
    # so the save is transparent to the caller.
    with FaultInjector(_lock_fault_plan(timeouts=2)):
        with store.artifacts.transaction("base__sgd") as txn:
            txn.write("json", _write_text("{}"))
    assert store.artifacts.exists("base__sgd", "json")


def test_default_lock_retry_only_catches_lock_timeouts():
    retry = default_lock_retry()
    assert retry.retry_on == (LockTimeout,)
    assert retry.max_attempts == 3


# --------------------------------------------------------------------- #
# Commit faults: atomicity under a failing os.replace
# --------------------------------------------------------------------- #


def test_commit_fault_aborts_transaction_and_leaves_no_artifact(tmp_path):
    store = ArtifactStore(tmp_path)
    plan = FaultPlan(
        seed=0,
        specs=(FaultSpec(site=SITE_STORE_COMMIT, kind="raise", max_fires=1),),
    )
    with FaultInjector(plan):
        with pytest.raises(InjectedFault):
            with store.transaction("m") as txn:
                txn.write("npz", _write_text("x"))
    assert not store.exists("m")
    # Crash-atomicity: the aborted commit's temp file was swept, and no
    # member landed under the shard tree.
    leftovers = [
        path for path in tmp_path.rglob("*")
        if path.is_file() and path.name != "index.json" and ".lock" not in path.name
    ]
    assert leftovers == []


def test_commit_fault_on_second_member_leaves_a_consistent_prefix(tmp_path):
    store = ArtifactStore(tmp_path)
    plan = FaultPlan(
        seed=0,
        specs=(FaultSpec(site=SITE_STORE_COMMIT, kind="raise", start=1),),
    )
    with FaultInjector(plan):
        with pytest.raises(InjectedFault):
            with store.transaction("m") as txn:
                txn.write("npz", _write_text("weights"))  # commit 0: fine
                txn.write("json", _write_text("meta"))  # commit 1: injected
    # Members commit individually (the store's documented contract): the
    # interrupted transaction leaves exactly the committed prefix — the
    # self-contained first member — and no temp files.
    assert store.members("m") == ["npz"]
    assert not store.exists("m", "json")
    assert list(tmp_path.rglob("*.tmp")) == []


# --------------------------------------------------------------------- #
# Index faults: the crash window between commit and registration
# --------------------------------------------------------------------- #


def _index_fault_plan(fires: int = 1) -> FaultPlan:
    return FaultPlan(
        seed=0,
        specs=(FaultSpec(site=SITE_STORE_INDEX, kind="raise", max_fires=fires),),
    )


@pytest.mark.parametrize("backend", ["local_fs", "sqlite", "memory"])
def test_index_fault_leaves_committed_bytes_and_self_heals(tmp_path, backend):
    """A raise injected into the index registration reproduces the
    commit-then-crash window exactly: the member bytes are committed, the
    index entry is missing, and the next read self-heals — on every
    backend."""
    store = ArtifactStore(tmp_path, backend=backend)
    with store.transaction("ok") as txn:  # the index exists before the fault
        txn.write("npz", _write_text("seed"))
    with FaultInjector(_index_fault_plan(fires=1)):
        with pytest.raises(InjectedFault):
            with store.transaction("m") as txn:
                txn.write("npz", _write_text("x"))
    # The bytes landed; the index entry did not.
    assert store.backend.stored_members("m") == {"npz"}
    assert store.backend.index_members("m") is None
    # find() heals the entry, so names() converges back to the bytes.
    assert store.exists("m", "npz")
    assert store.names() == ["m", "ok"]
    assert store.backend.index_members("m") == ["npz"]


@pytest.mark.parametrize("backend", ["local_fs", "sqlite", "memory"])
def test_index_fault_on_delete_is_recoverable(tmp_path, backend):
    """A crash between delete()'s byte removal and its index update leaves
    a dangling entry (the documented crash window, same as pre-backend
    stores) — and retrying the delete converges the store on every
    backend."""
    store = ArtifactStore(tmp_path, backend=backend)
    with store.transaction("m") as txn:
        txn.write("npz", _write_text("x"))
    with FaultInjector(_index_fault_plan(fires=1)):
        with pytest.raises(InjectedFault):
            store.delete("m")
    # The bytes are gone; the index entry dangles until the next delete
    # (or rebuild_index) converges it.
    assert store.backend.stored_members("m") == set()
    assert store.backend.index_members("m") == ["npz"]
    store.delete("m")  # the fault cleared: delete completes
    assert not store.exists("m")
    assert store.names() == []
    assert store.backend.index_members("m") is None


def test_commit_delay_faults_do_not_change_outcomes(tmp_path):
    naps = []
    store = ArtifactStore(tmp_path)
    plan = FaultPlan(
        seed=0,
        specs=(
            FaultSpec(site=SITE_STORE_COMMIT, kind="delay", delay_s=0.2, max_fires=2),
        ),
    )
    with FaultInjector(plan, sleep=naps.append):
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
            txn.write("json", _write_text("y"))
    assert store.members("m") == ["json", "npz"]
    assert naps == [0.2, 0.2]
