"""Fork-safety of :class:`repro.runtime.locks.FileLock`.

``flock`` locks belong to the open file *description*, which every fd
duplicated by ``fork()`` shares. The regression pinned here: a forked
child calling ``release()`` on an inherited lock used to ``LOCK_UN`` that
shared description — silently dropping the lock its **parent** still
held, the exact window in which two fleet workers can tear one artifact.
The fix is PID-stamped ownership: children only ever *close* their
duplicate.
"""

from __future__ import annotations

import fcntl
import os

import pytest

from repro.runtime.locks import FileLock, LockTimeout


def _flock_would_block(path) -> bool:
    """Whether some process still holds the exclusive flock on ``path``."""
    probe = os.open(path, os.O_RDWR)
    try:
        try:
            fcntl.flock(probe, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except (BlockingIOError, PermissionError):
            return True
        fcntl.flock(probe, fcntl.LOCK_UN)
        return False
    finally:
        os.close(probe)


def _run_in_child(fn) -> int:
    """fork(), run ``fn()`` in the child, return its exit status code."""
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process
        code = 1
        try:
            code = int(fn() or 0)
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


class TestForkedChild:
    def test_lock_fd_is_cloexec(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            flags = fcntl.fcntl(lock._fd, fcntl.F_GETFD)
            assert flags & fcntl.FD_CLOEXEC

    def test_parent_holds_child_exits_lock_survives(self, tmp_path):
        """The ISSUE's sequence: parent acquires, child exits, parent must
        still hold — the inherited duplicate dies with the child without
        releasing the shared description."""
        path = tmp_path / "a.lock"
        lock = FileLock(path)
        with lock:
            assert _run_in_child(lambda: 0) == 0
            assert _flock_would_block(path)
            assert lock.held

    def test_child_release_never_unlocks_parent(self, tmp_path):
        """An explicit ``release()`` in the child (the old bug's trigger)
        only closes the duplicate; the parent's flock stays."""
        path = tmp_path / "a.lock"
        lock = FileLock(path)
        with lock:

            def child() -> int:
                lock.release()  # must be a close, not a LOCK_UN
                return 0 if _flock_would_block(path) else 7

            assert _run_in_child(child) == 0
            assert _flock_would_block(path)

    def test_held_is_false_in_child(self, tmp_path):
        lock = FileLock(tmp_path / "a.lock")
        with lock:
            assert lock.held
            assert _run_in_child(lambda: 0 if not lock.held else 7) == 0

    def test_child_acquire_discards_inherited_fd_and_blocks(self, tmp_path):
        """A child re-acquiring an inherited held lock opens a *fresh* fd
        and then times out against the parent — it does not sneak in
        through the shared description."""
        path = tmp_path / "a.lock"
        lock = FileLock(path)
        with lock:

            def child() -> int:
                lock.timeout = 0.2
                try:
                    lock.acquire()
                except LockTimeout:
                    return 0
                return 7

            assert _run_in_child(child) == 0
            assert _flock_would_block(path)

    def test_child_acquires_after_parent_releases(self, tmp_path):
        """Once the parent lets go, the inherited instance is fully usable
        in the child: acquire, exclude others, release."""
        path = tmp_path / "a.lock"
        lock = FileLock(path)
        lock.acquire()
        lock.release()

        def child() -> int:
            with lock:
                if not lock.held:
                    return 7
                if not _flock_would_block(path):
                    return 8
            return 0 if not _flock_would_block(path) else 9

        assert _run_in_child(child) == 0


def test_parent_release_unaffected_by_forked_child(tmp_path):
    """After a child inherited (and discarded) the fd, the parent's own
    release still works and frees the file for the next process."""
    path = tmp_path / "a.lock"
    lock = FileLock(path)
    lock.acquire()
    assert _run_in_child(lambda: 0) == 0
    lock.release()
    assert not lock.held
    assert not _flock_would_block(path)
    with FileLock(path, timeout=1.0):
        pass
