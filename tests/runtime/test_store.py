"""ArtifactStore: sharding, index, locking, migration, GC.

The cross-process suites spawn real processes (module-level workers) and
exercise the locking contract the ISSUE demands: two processes saving the
same name concurrently never corrupt or interleave an artifact's members.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.runtime import ArtifactStore, FileLock, LockTimeout


def _write_text(text: str):
    return lambda path: Path(path).write_text(text)


# --------------------------------------------------------------------- #
# Layout + transactions
# --------------------------------------------------------------------- #


class TestTransactions:
    def test_commit_and_queries(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with store.transaction("model-a") as txn:
            txn.write("npz", _write_text("weights"))
            txn.write("json", _write_text("meta"))
        assert store.exists("model-a")
        assert store.exists("model-a", "npz")
        assert not store.exists("model-a", "bin")
        assert store.names() == ["model-a"]
        assert store.members("model-a") == ["json", "npz"]
        # The file landed in its two-level shard, not at the top level.
        path = store.find("model-a", "npz")
        assert path.parent.parent.parent == store.root
        assert len(path.parent.name) == 2 and len(path.parent.parent.name) == 2

    def test_other_instances_see_commits(self, tmp_path):
        ArtifactStore(tmp_path)  # fresh instance before the write existed
        writer = ArtifactStore(tmp_path)
        with writer.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
        reader = ArtifactStore(tmp_path)
        assert reader.exists("m", "npz")
        assert reader.names() == ["m"]

    def test_aborted_transaction_leaves_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)

        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with store.transaction("m") as txn:
                txn.write("npz", _write_text("x"))  # commits (prefix semantics)

                def exploding(path):
                    Path(path).write_text("partial")
                    raise Boom()

                txn.write("json", exploding)
        # The npz prefix stays committed (crash semantics of ModelStore.save);
        # the failed member leaves no file and no temp.
        assert store.exists("m", "npz")
        assert not store.exists("m", "json")
        assert list(store.root.rglob("*.tmp")) == []

    def test_failing_first_writer_commits_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.transaction("m") as txn:
                txn.write("npz", lambda path: (_ for _ in ()).throw(RuntimeError()))
        assert not store.exists("m")
        assert store.names() == []
        assert list(store.root.rglob("*.tmp")) == []

    def test_overwrite_is_atomic_per_member(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for tag in ("one", "two"):
            with store.transaction("m") as txn:
                txn.write("npz", _write_text(tag))
        assert store.find("m", "npz").read_text() == "two"
        assert store.names() == ["m"]

    def test_dotted_names_do_not_collide(self, tmp_path):
        """'m' and 'm.v2' are distinct artifacts; deleting one keeps the
        other (member suffixes are dot-free, so parsing is unambiguous)."""
        store = ArtifactStore(tmp_path)
        for name in ("m", "m.v2"):
            with store.transaction(name) as txn:
                txn.write("npz", _write_text(name))
        store.delete("m")
        assert store.names() == ["m.v2"]
        assert store.find("m.v2", "npz").read_text() == "m.v2"

    def test_unsafe_names_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for name in ("../escape", "a/b", ""):
            with pytest.raises(ValueError):
                with store.transaction(name):
                    pass

    def test_reserved_members_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            with store.transaction("m") as txn:
                txn.write("lock", _write_text("x"))


# --------------------------------------------------------------------- #
# Flat-layout compatibility + migration
# --------------------------------------------------------------------- #


class TestFlatLayout:
    def _flat_artifact(self, root: Path, name: str) -> None:
        (root / f"{name}.npz").write_text(f"{name}-weights")
        (root / f"{name}.json").write_text(f"{name}-meta")

    def test_flat_files_are_found(self, tmp_path):
        self._flat_artifact(tmp_path, "legacy")
        store = ArtifactStore(tmp_path)
        assert store.exists("legacy", "npz")
        assert store.names() == ["legacy"]
        assert store.find("legacy", "npz") == tmp_path / "legacy.npz"

    def test_save_rehomes_flat_files(self, tmp_path):
        self._flat_artifact(tmp_path, "legacy")
        store = ArtifactStore(tmp_path)
        with store.transaction("legacy") as txn:
            txn.write("npz", _write_text("new-weights"))
            txn.write("json", _write_text("new-meta"))
        assert not (tmp_path / "legacy.npz").exists()  # re-homed
        assert not (tmp_path / "legacy.json").exists()
        assert store.find("legacy", "npz").read_text() == "new-weights"
        assert store.names() == ["legacy"]

    def test_migrate_flat_moves_everything(self, tmp_path):
        for name in ("a", "b", "c.v2"):
            self._flat_artifact(tmp_path, name)
        store = ArtifactStore(tmp_path)
        migrated = store.migrate_flat()
        assert migrated == ["a", "b", "c.v2"]
        assert sorted(p.name for p in tmp_path.glob("*.npz")) == []
        assert store.names() == ["a", "b", "c.v2"]
        assert store.find("b", "npz").read_text() == "b-weights"
        # Idempotent.
        assert store.migrate_flat() == []

    def test_find_self_heals_unregistered_sharded_member(self, tmp_path):
        """A writer that crashed between committing a member and registering
        it (index entry missing) is healed by the next find()/exists() —
        names() converges back to the files on disk."""
        import json

        store = ArtifactStore(tmp_path)
        with store.transaction("ok") as txn:
            txn.write("npz", _write_text("x"))
        with store.transaction("orphan") as txn:
            txn.write("npz", _write_text("y"))
        # Simulate the crash window: drop 'orphan' from the index.
        index_path = tmp_path / "index.json"
        payload = json.loads(index_path.read_text())
        del payload["artifacts"]["orphan"]
        index_path.write_text(json.dumps(payload))
        assert ArtifactStore(tmp_path).names() == ["ok"]  # the regression
        healer = ArtifactStore(tmp_path)
        assert healer.exists("orphan", "npz")  # stat fallback + self-heal
        assert healer.names() == ["ok", "orphan"]
        assert ArtifactStore(tmp_path).names() == ["ok", "orphan"]  # persisted

    def test_rebuild_index_recovers_from_deleted_index(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
        (tmp_path / "index.json").unlink()
        # exists() still answers via the stat fallback; names() recovers
        # after a rebuild.
        fresh = ArtifactStore(tmp_path)
        assert fresh.exists("m", "npz")
        assert fresh.rebuild_index() == ["m"]
        assert fresh.names() == ["m"]


# --------------------------------------------------------------------- #
# Deletion + GC
# --------------------------------------------------------------------- #


class TestMaintenance:
    def test_delete_removes_members_and_index_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / "m.json").write_text("flat-meta")  # stale flat copy too
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
        store.delete("m")
        assert not store.exists("m")
        assert store.names() == []
        assert not (tmp_path / "m.json").exists()
        store.delete("m")  # absent: no error

    def test_gc_temp_sweeps_only_orphans(self, tmp_path):
        store = ArtifactStore(tmp_path)
        shard = store.shard_dir("m")
        shard.mkdir(parents=True, exist_ok=True)
        old = shard / "m.npz.123.0.tmp"
        old.write_text("orphan")
        ancient = time.time() - 7200
        os.utime(old, (ancient, ancient))
        fresh = shard / "m.npz.123.1.tmp"
        fresh.write_text("in-flight")
        removed = store.gc_temp(max_age_s=3600.0)
        assert removed == [old]
        assert not old.exists() and fresh.exists()


# --------------------------------------------------------------------- #
# Locking
# --------------------------------------------------------------------- #


class TestFileLock:
    def test_thread_exclusion(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        inside = []
        overlaps = []

        def critical(tag):
            with FileLock(lock_path, timeout=10.0):
                inside.append(tag)
                if len(inside) > 1:
                    overlaps.append(tuple(inside))
                time.sleep(0.01)
                inside.remove(tag)

        threads = [threading.Thread(target=critical, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert overlaps == []

    def test_timeout_raises(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        holder = FileLock(lock_path).acquire()
        try:
            contender = FileLock(lock_path, timeout=0.1)
            with pytest.raises(LockTimeout):
                contender.acquire()
        finally:
            holder.release()
        # Released: acquisition succeeds now.
        with FileLock(lock_path, timeout=1.0) as lock:
            assert lock.held


def _try_lock(args):
    path, timeout = args
    try:
        with FileLock(path, timeout=timeout):
            return "acquired"
    except LockTimeout:
        return "timeout"


def _hammer_same_artifact(args):
    """Writer process: save tagged member pairs under one artifact name."""
    root, worker_id, rounds = args
    store = ArtifactStore(root)
    for i in range(rounds):
        tag = f"{worker_id}-{i}"
        with store.transaction("shared") as txn:
            txn.write("npz", _write_text(tag))
            txn.write("json", _write_text(tag))
    return worker_id


def _watch_consistency(args):
    """Reader process: under the artifact lock, both members must always
    carry the same tag — an interleaved save would break this."""
    root, rounds = args
    store = ArtifactStore(root)
    violations = 0
    for _ in range(rounds):
        with store.lock("shared"):
            npz = store.find("shared", "npz")
            sidecar = store.find("shared", "json")
            if npz is not None and sidecar is not None:
                if npz.read_text() != sidecar.read_text():
                    violations += 1
        time.sleep(0.001)
    return violations


def _save_distinct_names(args):
    root, worker_id, rounds = args
    store = ArtifactStore(root)
    for i in range(rounds):
        with store.transaction(f"w{worker_id}-{i}") as txn:
            txn.write("npz", _write_text("x"))
    return worker_id


@pytest.mark.stress
class TestCrossProcessLocking:
    def test_concurrent_same_name_saves_never_interleave(self, tmp_path):
        with ProcessPoolExecutor(max_workers=3) as pool:
            writers = [
                pool.submit(_hammer_same_artifact, (str(tmp_path), w, 15))
                for w in range(2)
            ]
            watcher = pool.submit(_watch_consistency, (str(tmp_path), 60))
            for future in writers:
                future.result(timeout=120)
            assert watcher.result(timeout=120) == 0
        store = ArtifactStore(tmp_path)
        final_npz = store.find("shared", "npz").read_text()
        final_json = store.find("shared", "json").read_text()
        assert final_npz == final_json  # one writer's save, whole
        assert store.names() == ["shared"]

    def test_cross_process_lock_blocks(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        with ProcessPoolExecutor(max_workers=1) as pool:
            with FileLock(lock_path):
                assert pool.submit(_try_lock, (str(lock_path), 0.2)).result(timeout=60) == "timeout"
            assert pool.submit(_try_lock, (str(lock_path), 0.2)).result(timeout=60) == "acquired"

    def test_concurrent_distinct_names_all_indexed(self, tmp_path):
        """The index's read-modify-write is serialized: no lost updates."""
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_save_distinct_names, (str(tmp_path), w, 10))
                for w in range(2)
            ]
            for future in futures:
                future.result(timeout=120)
        names = ArtifactStore(tmp_path).names()
        assert len(names) == 20
