"""Backend selection, URIs, and the backend-specific surfaces.

The *shared* semantics live in ``tests/runtime/conformance/``; this file
covers what is legitimately per-backend — URI/env resolution in
``make_backend``, the memory backend's content-addressed blob plane, the
SQLite lease lock's expiry/takeover story, and the store's per-backend
metrics instruments.
"""

from __future__ import annotations

import time

import pytest

from repro.metrics import MetricsRegistry
from repro.runtime import ArtifactStore, LockTimeout
from repro.runtime.backends import (
    BACKEND_ENV,
    LocalFsBackend,
    MemoryBackend,
    SqliteBackend,
    SqliteLock,
    StoreBackend,
    make_backend,
    parse_store_uri,
)


def _write_text(text: str):
    return lambda path: path.write_text(text)


# --------------------------------------------------------------------- #
# Selection: URIs, names, env, explicit instances
# --------------------------------------------------------------------- #


class TestSelection:
    def test_parse_store_uri(self):
        assert parse_store_uri("file:///tmp/store") == ("file", "/tmp/store")
        assert parse_store_uri("sqlite://models") == ("sqlite", "models")
        assert parse_store_uri("memory://shared") == ("memory", "shared")
        assert parse_store_uri("memory://") == ("memory", "")
        assert parse_store_uri("plain/dir") == (None, "plain/dir")
        # Path objects are never mistaken for URIs.
        from pathlib import Path

        assert parse_store_uri(Path("plain/dir")) == (None, "plain/dir")

    def test_plain_path_defaults_to_local_fs(self, tmp_path):
        assert isinstance(make_backend(tmp_path), LocalFsBackend)

    def test_scheme_selects_backend(self, tmp_path):
        assert isinstance(
            make_backend(f"file://{tmp_path}"), LocalFsBackend
        )
        assert isinstance(
            make_backend(f"sqlite://{tmp_path}"), SqliteBackend
        )
        assert isinstance(make_backend("memory://"), MemoryBackend)

    def test_explicit_name_beats_scheme(self, tmp_path):
        backend = make_backend(f"file://{tmp_path}", backend="sqlite")
        assert isinstance(backend, SqliteBackend)

    def test_explicit_instance_wins(self, tmp_path):
        instance = MemoryBackend()
        assert make_backend(tmp_path, backend=instance) is instance

    def test_env_selects_backend_for_plain_paths(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        assert isinstance(make_backend(tmp_path), SqliteBackend)
        # ...but never overrides an explicit scheme.
        assert isinstance(
            make_backend(f"file://{tmp_path}"), LocalFsBackend
        )

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend(tmp_path, backend="carrier-pigeon")

    def test_named_memory_uris_share_state(self, tmp_path):
        try:
            a = ArtifactStore("memory://test-backends-shared")
            with a.transaction("m") as txn:
                txn.write("npz", _write_text("x"))
            b = ArtifactStore("memory://test-backends-shared")
            assert b.exists("m", "npz")
            assert a.backend is b.backend
            # An anonymous memory:// store is private.
            assert not ArtifactStore("memory://").exists("m")
        finally:
            from repro.runtime.backends import memory

            memory._REGISTRY.pop("test-backends-shared", None)

    def test_describe_names_scheme_and_root(self, tmp_path):
        assert make_backend(tmp_path).describe() == f"file://{tmp_path}"
        assert (
            make_backend(f"sqlite://{tmp_path}").describe()
            == f"sqlite://{tmp_path}"
        )
        assert MemoryBackend().describe() == "memory://<anonymous>"
        assert MemoryBackend(key="k").describe() == "memory://k"

    def test_store_root_is_a_real_directory_on_every_backend(self, tmp_path):
        for store in (
            ArtifactStore(tmp_path / "fs"),
            ArtifactStore(tmp_path / "db", backend="sqlite"),
            ArtifactStore("ignored", backend=MemoryBackend()),
        ):
            assert store.root.is_dir()
            assert store.root == store.backend.root


# --------------------------------------------------------------------- #
# Memory backend: the blob (object-store) plane
# --------------------------------------------------------------------- #


class TestMemoryBlobs:
    def test_commits_mirror_into_content_addressed_blobs(self):
        backend = MemoryBackend()
        store = ArtifactStore("ignored", backend=backend)
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("weights"))
        digest = backend.blob_digest("m", "npz")
        assert digest is not None
        assert backend.get_blob(digest) == b"weights"
        assert backend.list_blobs() == [digest]

    def test_identical_content_shares_one_blob(self):
        backend = MemoryBackend()
        store = ArtifactStore("ignored", backend=backend)
        for name in ("a", "b"):
            with store.transaction(name) as txn:
                txn.write("npz", _write_text("same-bytes"))
        assert len(backend.list_blobs()) == 1
        assert backend.blob_digest("a", "npz") == backend.blob_digest("b", "npz")

    def test_delete_drops_unreferenced_blobs(self):
        backend = MemoryBackend()
        store = ArtifactStore("ignored", backend=backend)
        for name in ("a", "b"):
            with store.transaction(name) as txn:
                txn.write("npz", _write_text(name))
        store.delete("a")
        assert len(backend.list_blobs()) == 1
        assert backend.blob_digest("a", "npz") is None
        store.delete("b")
        assert backend.list_blobs() == []


# --------------------------------------------------------------------- #
# SQLite: lease locks
# --------------------------------------------------------------------- #


class TestSqliteLease:
    def test_contended_lease_times_out(self, tmp_path):
        backend = SqliteBackend(tmp_path)
        holder = backend.lock("m").acquire()
        try:
            contender = SqliteLock(backend, "m", timeout=0.15)
            # Bypass the shared thread-lock layer to model a second
            # process contending purely on the lease row.
            contender._key = "sqlite::other-process::m"
            with pytest.raises(LockTimeout):
                contender.acquire()
        finally:
            holder.release()
        with backend.lock("m") as lock:
            assert lock.held

    def test_expired_lease_is_taken_over(self, tmp_path):
        """A crashed writer's lease does not deadlock the artifact: after
        ``lease_s`` the next acquirer reclaims the row."""
        backend = SqliteBackend(tmp_path)
        crashed = SqliteLock(backend, "m", lease_s=0.05)
        crashed._key = "sqlite::crashed-process::m"
        crashed.acquire()  # never released — the holder "crashed"
        time.sleep(0.06)
        with SqliteLock(backend, "m", timeout=1.0) as lock:
            assert lock.held

    def test_release_only_deletes_own_lease(self, tmp_path):
        backend = SqliteBackend(tmp_path)
        first = SqliteLock(backend, "m", lease_s=0.05)
        first._key = "sqlite::one::m"
        first.acquire()
        time.sleep(0.06)
        second = SqliteLock(backend, "m", timeout=1.0)
        second._key = "sqlite::two::m"
        second.acquire()  # took over the expired lease
        first.release()  # stale owner token: must not free second's lease
        third = SqliteLock(backend, "m", timeout=0.15)
        third._key = "sqlite::three::m"
        with pytest.raises(LockTimeout):
            third.acquire()
        second.release()


# --------------------------------------------------------------------- #
# Metrics: per-backend op counters and latency histograms
# --------------------------------------------------------------------- #


class TestStoreMetrics:
    @pytest.mark.parametrize(
        "backend, scheme",
        [("local_fs", "file"), ("sqlite", "sqlite"), ("memory", "memory")],
    )
    def test_ops_are_counted_per_backend(self, tmp_path, backend, scheme):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path, backend=backend, registry=registry)
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
        store.exists("m", "npz")
        store.names()
        counter = registry.counter(
            "repro_store_ops_total",
            "Artifact-store operations, by backend and operation.",
            labelnames=("backend", "op"),
        )
        assert counter.labels(backend=scheme, op="commit").value == 1
        assert counter.labels(backend=scheme, op="exists").value == 1
        assert counter.labels(backend=scheme, op="names").value == 1
        rendered = registry.render()
        assert "repro_store_ops_total" in rendered
        assert "repro_store_op_seconds" in rendered

    def test_rebind_carries_totals(self, tmp_path):
        first = MetricsRegistry()
        store = ArtifactStore(tmp_path, registry=first)
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
        second = MetricsRegistry()
        store.rebind_metrics(second)
        counter = second.counter(
            "repro_store_ops_total",
            "Artifact-store operations, by backend and operation.",
            labelnames=("backend", "op"),
        )
        assert counter.labels(backend="file", op="commit").value == 1
        store.exists("m")
        assert counter.labels(backend="file", op="exists").value == 1

    def test_unbound_store_records_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.registry is None
        with store.transaction("m") as txn:
            txn.write("npz", _write_text("x"))
        assert store.exists("m")


# --------------------------------------------------------------------- #
# The abstract contract itself
# --------------------------------------------------------------------- #


class TestAbstractSeam:
    def test_backends_declare_their_schemes(self):
        assert LocalFsBackend.scheme == "file"
        assert SqliteBackend.scheme == "sqlite"
        assert MemoryBackend.scheme == "memory"

    def test_store_backend_is_abstract(self, tmp_path):
        with pytest.raises(TypeError):
            StoreBackend(tmp_path)  # index/lock planes are abstract

    def test_close_is_idempotent(self, tmp_path):
        for backend in (
            LocalFsBackend(tmp_path / "fs"),
            SqliteBackend(tmp_path / "db"),
            MemoryBackend(),
        ):
            backend.close()
            backend.close()
