"""Executor semantics: ordering, bit-identity, errors, cancellation."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    CancelledError,
    CancelToken,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_map,
    get_executor,
    jobs_from_env,
    resolve_jobs,
    resolve_workers,
)


def _square(x: int) -> int:
    return x * x


def _seeded_draw(seed: int) -> np.ndarray:
    """Deterministic per-item work: the bit-identity reference."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=16) @ rng.normal(size=(16, 4))


def _fail_on(x: int) -> int:
    if x in (2, 5):
        raise ValueError(f"item {x} failed")
    return x


# --------------------------------------------------------------------- #
# Worker-count resolution
# --------------------------------------------------------------------- #


class TestResolution:
    def test_none_and_zero_are_serial(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(0, 10) == 1

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1, 1000) == (os.cpu_count() or 1)

    def test_capped_by_tasks(self):
        assert resolve_workers(16, 3) == 3
        assert resolve_workers(8, 0) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert jobs_from_env() == 3
        assert resolve_jobs(None, n_tasks=10) == 3
        assert resolve_jobs(2, n_tasks=10) == 2  # explicit wins
        monkeypatch.setenv("REPRO_JOBS", "soon")
        assert jobs_from_env() is None  # unparsable: ignored, not raised

    def test_get_executor_kinds(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert get_executor(jobs=0).kind == "serial"
        assert get_executor(jobs=None).kind == "serial"
        thread = get_executor(jobs=2, n_tasks=8, kind="thread")
        assert (thread.kind, thread.workers) == ("thread", 2)
        thread.shutdown()
        with pytest.raises(ValueError, match="unknown executor kind"):
            get_executor(jobs=2, n_tasks=8, kind="fiber")


# --------------------------------------------------------------------- #
# Ordering and bit-identity
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_results_in_input_order(self):
        for executor in (SerialExecutor(), ThreadExecutor(4), ProcessExecutor(2)):
            with executor:
                assert executor.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_serial_thread_process_bit_identical(self):
        seeds = list(range(12))
        reference = SerialExecutor().map(_seeded_draw, seeds)
        for make in (
            lambda: ThreadExecutor(2),
            lambda: ThreadExecutor(5),
            lambda: ProcessExecutor(2),
            lambda: ProcessExecutor(3),
        ):
            with make() as executor:
                results = executor.map(_seeded_draw, seeds)
            assert len(results) == len(reference)
            for got, want in zip(results, reference):
                assert got.tobytes() == want.tobytes()  # bitwise, not allclose

    def test_executor_map_jobs_values_identical(self):
        seeds = list(range(8))
        reference = executor_map(_seeded_draw, seeds, jobs=0)
        for jobs, kind in ((2, "process"), (3, "thread"), (-1, "thread")):
            results = executor_map(_seeded_draw, seeds, jobs=jobs, kind=kind)
            for got, want in zip(results, reference):
                assert got.tobytes() == want.tobytes()

    def test_empty_map(self):
        for executor in (SerialExecutor(), ThreadExecutor(2)):
            with executor:
                assert executor.map(_square, []) == []


# --------------------------------------------------------------------- #
# Error propagation
# --------------------------------------------------------------------- #


class TestErrors:
    def test_lowest_index_error_wins_everywhere(self):
        """Items 2 and 5 both fail; every executor raises item 2's error."""
        items = list(range(8))
        for make in (
            lambda: SerialExecutor(),
            lambda: ThreadExecutor(1),
            lambda: ThreadExecutor(4),
            lambda: ProcessExecutor(2),
        ):
            with make() as executor:
                with pytest.raises(ValueError, match="item 2 failed"):
                    executor.map(_fail_on, items)

    def test_failure_cancels_pending_work(self):
        """After a failure, queued (unstarted) items never run."""
        executed = set()
        lock = threading.Lock()

        def work(x):
            with lock:
                executed.add(x)
            if x == 0:
                raise ValueError("item 0 failed")
            time.sleep(0.01)
            return x

        with ThreadExecutor(2) as executor:
            with pytest.raises(ValueError, match="item 0 failed"):
                executor.map(work, list(range(50)))
        assert len(executed) < 50  # the tail was cancelled, not executed

    def test_submit_propagates_exception(self):
        with ThreadExecutor(1) as executor:
            handle = executor.submit(_fail_on, 2)
            with pytest.raises(ValueError, match="item 2 failed"):
                handle.result(timeout=5.0)
            assert isinstance(handle.exception(timeout=5.0), ValueError)


# --------------------------------------------------------------------- #
# Cancellation and progress
# --------------------------------------------------------------------- #


class TestCancellation:
    def test_cancel_mid_fanout(self):
        """Cancelling mid-flight: running items finish, queued items are
        skipped, and map raises CancelledError."""
        token = CancelToken()
        started = threading.Event()
        release = threading.Event()
        executed = []
        lock = threading.Lock()

        def work(x):
            with lock:
                executed.append(x)
            started.set()
            release.wait(timeout=10.0)
            return x

        outcome = {}

        def run():
            try:
                with ThreadExecutor(2) as executor:
                    outcome["result"] = executor.map(work, list(range(20)), cancel=token)
            except BaseException as error:  # noqa: BLE001 - recorded for assertion
                outcome["error"] = error

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=10.0)
        token.cancel()
        # Let the collector's cancellation sweep land while both workers
        # are still blocked — only then release them, so the queued tail is
        # deterministically cancelled before any worker could pick it up.
        time.sleep(0.5)
        release.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert isinstance(outcome.get("error"), CancelledError)
        assert len(executed) <= 2  # only the in-flight items ever ran

    def test_serial_cancellation_before_start(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(CancelledError):
            SerialExecutor().map(_square, [1, 2, 3], cancel=token)
        with pytest.raises(CancelledError):
            token.raise_if_cancelled()

    def test_progress_callback(self):
        ticks = []
        for executor in (SerialExecutor(), ThreadExecutor(3)):
            ticks.clear()
            with executor:
                executor.map(_square, list(range(7)), progress=lambda done, total: ticks.append((done, total)))
            assert ticks == [(i + 1, 7) for i in range(7)]


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_thread_executor_rejects_after_shutdown(self):
        executor = ThreadExecutor(2)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(_square, 2)

    def test_thread_executor_drains_queue_on_shutdown(self):
        executor = ThreadExecutor(1)
        handles = [executor.submit(_square, i) for i in range(10)]
        executor.shutdown(wait=True)
        assert [h.result(timeout=5.0) for h in handles] == [i * i for i in range(10)]

    def test_long_running_loop_coexists_with_submits(self):
        """A service loop (the batcher pattern) occupies one worker while
        short tasks flow through the other — one scheduling primitive."""
        stop = threading.Event()
        executor = ThreadExecutor(2, name="serve-like")
        loop = executor.submit(stop.wait, 10.0)
        short = [executor.submit(_square, i) for i in range(5)]
        assert [h.result(timeout=5.0) for h in short] == [0, 1, 4, 9, 16]
        stop.set()
        assert loop.result(timeout=5.0) is True
        executor.shutdown()

    def test_serial_submit_is_eager(self):
        handle = SerialExecutor().submit(_square, 4)
        assert handle.done() and handle.result() == 16

    def test_reused_executor_scales_back_up(self):
        """A map() on an executor with an idle leftover worker still fans
        out to max_workers — the barrier only releases if all three items
        run concurrently (regression: idle==0 spawn condition capped a
        reused executor at one thread)."""
        executor = ThreadExecutor(3)
        executor.submit(_square, 1).result(timeout=5.0)  # leaves an idle worker
        gate = threading.Barrier(3, timeout=10.0)
        assert executor.map(lambda _: gate.wait() >= 0, range(3)) == [True] * 3
        executor.shutdown()
