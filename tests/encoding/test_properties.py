"""Tests of the property encoder (lambda prefix dispatch, Eq. 3-4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.properties import (
    LAMBDA_BINARIZED,
    LAMBDA_HASHED,
    PropertyEncoder,
)


@pytest.fixture()
def encoder() -> PropertyEncoder:
    return PropertyEncoder(vector_size=40)


class TestDispatch:
    def test_integer_uses_binarizer(self, encoder):
        out = encoder.encode_property(19353)
        assert out[0] == LAMBDA_BINARIZED
        assert encoder.decode_numeric(out) == 19353

    def test_digit_string_uses_binarizer(self, encoder):
        out = encoder.encode_property("25")
        assert out[0] == LAMBDA_BINARIZED
        assert encoder.decode_numeric(out) == 25

    def test_text_uses_hasher(self, encoder):
        out = encoder.encode_property("m4.2xlarge")
        assert out[0] == LAMBDA_HASHED
        assert np.linalg.norm(out[1:]) == pytest.approx(1.0)

    def test_float_string_uses_hasher(self, encoder):
        assert encoder.encode_property("0.85")[0] == LAMBDA_HASHED

    def test_over_capacity_natural_falls_back_to_hasher(self, encoder):
        # 2^39 exceeds the 39-bit capacity of a 40-wide vector; such values
        # cannot be represented exactly and must hash instead of raising.
        assert encoder.encode_property(2**39)[0] == LAMBDA_HASHED
        assert encoder.encode_property("550000000000")[0] == LAMBDA_HASHED
        assert encoder.encode_property(2**39 - 1)[0] == LAMBDA_BINARIZED

    def test_vector_size(self, encoder):
        assert encoder.encode_property("anything").shape == (40,)

    def test_is_binarized(self, encoder):
        assert encoder.is_binarized(encoder.encode_property(7))
        assert not encoder.is_binarized(encoder.encode_property("text"))

    def test_decode_numeric_rejects_hashed(self, encoder):
        with pytest.raises(ValueError):
            encoder.decode_numeric(encoder.encode_property("text"))


class TestBatchEncoding:
    def test_encode_properties_shape(self, encoder):
        out = encoder.encode_properties([19353, "dense", "k=10", "m4.xlarge"])
        assert out.shape == (4, 40)

    def test_empty_sequence(self, encoder):
        assert encoder.encode_properties([]).shape == (0, 40)

    def test_rows_match_single_encoding(self, encoder):
        values = [7, "m4.xlarge"]
        batch = encoder.encode_properties(values)
        for row, value in zip(batch, values):
            np.testing.assert_array_equal(row, encoder.encode_property(value))


class TestProperties:
    @given(st.integers(0, 2**39 - 1))
    @settings(max_examples=50, deadline=None)
    def test_numeric_roundtrip(self, value):
        encoder = PropertyEncoder(vector_size=40)
        assert encoder.decode_numeric(encoder.encode_property(value)) == value

    @given(st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_all_entries_bounded(self, text):
        # Every coordinate lies in [-1, 1]: bits in {0,1}, hashed unit-sphere
        # coordinates in [-1, 1] - the precondition for the tanh decoder.
        encoder = PropertyEncoder(vector_size=40)
        out = encoder.encode_property(text)
        assert (np.abs(out) <= 1.0 + 1e-12).all()

    def test_deterministic_across_instances(self):
        a = PropertyEncoder(vector_size=40).encode_property("m4.2xlarge")
        b = PropertyEncoder(vector_size=40).encode_property("m4.2xlarge")
        np.testing.assert_array_equal(a, b)

    def test_vector_size_validation(self):
        with pytest.raises(ValueError):
            PropertyEncoder(vector_size=1)

    def test_large_vector_size_caps_binarizer(self):
        encoder = PropertyEncoder(vector_size=100)
        assert encoder.binarizer.length == 62
