"""Tests of the character n-gram hashing vectorizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.hashing import HashingVectorizer, fnv1a_64
from repro.encoding.ngrams import extract_ngrams, ngram_counts
from repro.encoding.vocabulary import DEFAULT_VOCABULARY, Vocabulary

texts = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
    max_size=40,
)


class TestFnv:
    def test_known_vectors(self):
        # Published FNV-1a 64-bit reference values.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_deterministic(self):
        assert fnv1a_64(b"spark") == fnv1a_64(b"spark")

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"m4.xlarge") != fnv1a_64(b"r4.xlarge")


class TestNgrams:
    def test_unigrams_bigrams_trigrams(self):
        grams = extract_ngrams("abc", (1, 3))
        assert grams == ["a", "b", "c", "ab", "bc", "abc"]

    def test_short_text(self):
        assert extract_ngrams("a", (1, 3)) == ["a"]

    def test_empty_text(self):
        assert extract_ngrams("", (1, 3)) == []

    def test_counts(self):
        counts = ngram_counts("aaa", (1, 2))
        assert counts == {"a": 3, "aa": 2}

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            extract_ngrams("abc", (2, 1))
        with pytest.raises(ValueError):
            extract_ngrams("abc", (0, 2))


class TestVocabulary:
    def test_clean_lowercases(self):
        assert DEFAULT_VOCABULARY.clean("M4.XLarge") == "m4.xlarge"

    def test_clean_strips_unknown(self):
        assert DEFAULT_VOCABULARY.clean("a!@#b") == "ab"

    def test_special_symbols_kept(self):
        assert DEFAULT_VOCABULARY.clean("k=10 x-y_z/a.b") == "k=10 x-y_z/a.b"

    def test_contains(self):
        assert "a" in DEFAULT_VOCABULARY
        assert "A" in DEFAULT_VOCABULARY  # case-insensitive
        assert "!" not in DEFAULT_VOCABULARY

    def test_custom_symbols(self):
        vocab = Vocabulary(special_symbols="+")
        assert vocab.clean("a+b-c") == "a+bc"  # "-" is no longer whitelisted


class TestHashingVectorizer:
    def test_output_size(self):
        assert HashingVectorizer(39).transform("m4.xlarge").shape == (39,)

    def test_unit_norm(self):
        out = HashingVectorizer(39).transform("spark 2.4.4")
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        out = HashingVectorizer(39).transform("")
        np.testing.assert_array_equal(out, np.zeros(39))

    def test_all_stripped_is_zero_vector(self):
        out = HashingVectorizer(39).transform("!!!")
        np.testing.assert_array_equal(out, np.zeros(39))

    @given(texts)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, text):
        v = HashingVectorizer(39)
        np.testing.assert_array_equal(v.transform(text), v.transform(text))

    @given(texts)
    @settings(max_examples=50, deadline=None)
    def test_norm_is_one_or_zero(self, text):
        out = HashingVectorizer(39).transform(text)
        norm = np.linalg.norm(out)
        assert norm == pytest.approx(1.0) or norm == 0.0

    def test_case_insensitive(self):
        v = HashingVectorizer(39)
        np.testing.assert_array_equal(v.transform("GREP"), v.transform("grep"))

    def test_distinct_nodes_distinct_vectors(self):
        v = HashingVectorizer(39)
        assert not np.array_equal(v.transform("m4.2xlarge"), v.transform("r4.2xlarge"))

    def test_similar_texts_closer_than_dissimilar(self):
        v = HashingVectorizer(39)
        a = v.transform("m4.2xlarge")
        b = v.transform("m4.xlarge")
        c = v.transform("iterations=100 step=0.1")
        assert np.dot(a, b) > np.dot(a, c)

    def test_unsigned_counts_nonnegative(self):
        out = HashingVectorizer(39, signed=False, normalize=False).transform("abcabc")
        assert (out >= 0).all()

    def test_signed_mode_can_go_negative(self):
        out = HashingVectorizer(8, signed=True, normalize=False).transform(
            "abcdefghijklmnop"
        )
        assert (out < 0).any()

    def test_counts_without_normalization(self):
        v = HashingVectorizer(64, ngram_range=(1, 1), normalize=False)
        out = v.transform("aab")
        assert out.sum() == pytest.approx(3.0)  # 3 unigrams counted

    def test_transform_many(self):
        v = HashingVectorizer(16)
        out = v.transform_many(["a", "b", "c"])
        assert out.shape == (3, 16)

    def test_transform_many_empty(self):
        assert HashingVectorizer(16).transform_many([]).shape == (0, 16)

    def test_invalid_n_features(self):
        with pytest.raises(ValueError):
            HashingVectorizer(0)

    def test_index_of_in_range(self):
        v = HashingVectorizer(7)
        for term in ("a", "bc", "def", "m4."):
            assert 0 <= v.index_of(term) < 7
