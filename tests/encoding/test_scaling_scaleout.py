"""Tests of min-max scaling and the scale-out feature maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.scaleout import bellamy_features, ernest_features
from repro.encoding.scaling import MinMaxScaler


class TestMinMaxScaler:
    def test_fit_transform_unit_box(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        out = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(out.min(axis=0), [0.0, 0.0])
        np.testing.assert_allclose(out.max(axis=0), [1.0, 1.0])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_boundaries_frozen_after_fit(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[20.0]]))
        assert out[0, 0] == pytest.approx(2.0)  # outside the box, by design

    def test_constant_column_maps_to_half(self):
        scaler = MinMaxScaler().fit(np.array([[3.0, 1.0], [3.0, 2.0]]))
        out = scaler.transform(np.array([[3.0, 1.5]]))
        assert out[0, 0] == pytest.approx(0.5)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.ones(3))
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.ones((0, 2)))

    def test_state_roundtrip(self):
        scaler = MinMaxScaler().fit(np.array([[0.0, 1.0], [2.0, 5.0]]))
        other = MinMaxScaler()
        other.load_state_dict(scaler.state_dict())
        data = np.array([[1.0, 3.0]])
        np.testing.assert_allclose(scaler.transform(data), other.transform(data))

    def test_empty_state_means_unfit(self):
        scaler = MinMaxScaler()
        assert scaler.state_dict() == {}
        scaler.load_state_dict({})
        assert not scaler.is_fit

    @given(
        hnp.arrays(
            np.float64, (5, 3), elements=st.floats(-100, 100, allow_nan=False)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_training_data_always_in_unit_box(self, data):
        out = MinMaxScaler().fit_transform(data)
        assert (out >= -1e-9).all() and (out <= 1.0 + 1e-9).all()


class TestScaleoutFeatures:
    def test_bellamy_columns(self):
        out = bellamy_features([2, 4])
        np.testing.assert_allclose(out[:, 0], [0.5, 0.25])
        np.testing.assert_allclose(out[:, 1], np.log([2.0, 4.0]))
        np.testing.assert_allclose(out[:, 2], [2.0, 4.0])

    def test_ernest_has_intercept(self):
        out = ernest_features([3, 6])
        np.testing.assert_allclose(out[:, 0], [1.0, 1.0])
        assert out.shape == (2, 4)

    def test_positive_scaleouts_required(self):
        with pytest.raises(ValueError):
            bellamy_features([0])
        with pytest.raises(ValueError):
            ernest_features([-1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bellamy_features([])

    def test_scalar_input(self):
        assert bellamy_features(4).shape == (1, 3)
