"""Tests of the binary encoder for natural-number properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.binarizer import Binarizer


class TestEncode:
    def test_zero(self):
        np.testing.assert_array_equal(Binarizer(4).encode(0), [0, 0, 0, 0])

    def test_lsb_first(self):
        np.testing.assert_array_equal(Binarizer(4).encode(6), [0, 1, 1, 0])

    def test_capacity_value(self):
        b = Binarizer(5)
        assert b.capacity == 31
        np.testing.assert_array_equal(b.encode(31), np.ones(5))

    def test_over_capacity_raises(self):
        with pytest.raises(ValueError):
            Binarizer(4).encode(16)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            Binarizer(4).encode(-1)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            Binarizer(0)
        with pytest.raises(ValueError):
            Binarizer(63)

    def test_output_dtype_float(self):
        assert Binarizer(4).encode(3).dtype == np.float64

    @given(st.integers(0, 2**39 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, value):
        b = Binarizer(39)  # paper: L = N - 1 = 39
        assert b.decode(b.encode(value)) == value

    @given(st.integers(0, 2**20 - 1), st.integers(0, 2**20 - 1))
    @settings(max_examples=50, deadline=None)
    def test_uniqueness(self, a, b):
        binarizer = Binarizer(20)
        if a != b:
            assert not np.array_equal(binarizer.encode(a), binarizer.encode(b))


class TestDecode:
    def test_decode_shape_check(self):
        with pytest.raises(ValueError):
            Binarizer(4).decode(np.zeros(5))

    def test_decode_non_binary_raises(self):
        with pytest.raises(ValueError):
            Binarizer(4).decode(np.array([0.4, 0.0, 0.0, 0.0]))

    def test_decode_tolerates_float_rounding(self):
        bits = Binarizer(4).encode(9) + 1e-9
        assert Binarizer(4).decode(bits) == 9


class TestDispatchHelpers:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (5, True),
            (0, True),
            (-3, False),
            (True, False),  # booleans are not counts
            ("25", True),
            (" 42 ", True),
            ("3.5", False),
            ("m4.xlarge", False),
            (2.0, False),
            (np.int64(7), True),
        ],
    )
    def test_is_encodable(self, value, expected):
        assert Binarizer.is_encodable(value) is expected

    def test_to_int(self):
        assert Binarizer.to_int("25") == 25
        assert Binarizer.to_int(7) == 7

    def test_to_int_rejects_text(self):
        with pytest.raises(TypeError):
            Binarizer.to_int("abc")
