"""Concurrency stress tests for LruTtlCache: counters, stampedes, deadlocks.

N threads hammer ``get_or_load`` across overlapping keys while the clock
jumps TTLs mid-flight. The invariants that must hold whatever the
interleaving:

* every lookup is counted exactly once: ``hits + misses + coalesced == calls``;
* every loader execution corresponds to exactly one miss (the cache never
  loads more often than it reports);
* a stampede on a cold key runs the loader once, everyone else coalesces;
* nothing deadlocks (all joins complete within a hard timeout).
"""

from __future__ import annotations

import threading
from collections import defaultdict

import pytest

from repro.serve.cache import FakeClock, LruTtlCache

pytestmark = pytest.mark.stress

JOIN_TIMEOUT_S = 30.0


def _join_all(threads):
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT_S)
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"deadlocked threads: {alive}"


class _LoadCounter:
    """Thread-safe per-key loader call counter."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.calls = defaultdict(int)

    def loader_for(self, key):
        def load():
            with self.lock:
                self.calls[key] += 1
            return f"value-{key}"

        return load

    @property
    def total(self) -> int:
        with self.lock:
            return sum(self.calls.values())


def test_hammer_overlapping_keys_with_ttl_expiry_midflight():
    n_threads = 16
    iterations = 300
    keys = [f"k{i}" for i in range(6)]  # overlapping: 16 threads, 6 keys
    clock = FakeClock()
    clock_lock = threading.Lock()
    cache = LruTtlCache(capacity=4, ttl_s=5.0, clock=clock)  # capacity < keys
    counter = _LoadCounter()
    lookups_done = [0] * n_threads
    errors = []

    def worker(index: int) -> None:
        try:
            for i in range(iterations):
                # Each thread cycles a 3-key working set (re-access distance
                # < capacity → hits happen) that overlaps other threads'
                # sets (6 keys total > capacity → eviction pressure).
                key = keys[(index + i % 3) % len(keys)]
                value, _hit = cache.get_or_load(key, counter.loader_for(key))
                assert value == f"value-{key}"
                lookups_done[index] += 1
                if i % 50 == 25:
                    # Jump time past the TTL mid-flight so entries expire
                    # while other threads are loading/reading them.
                    with clock_lock:
                        clock.advance(6.0)
        except BaseException as error:  # pragma: no cover - failure capture
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"hammer-{i}")
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    _join_all(threads)
    assert not errors, errors

    stats = cache.stats()
    total_lookups = sum(lookups_done)
    assert total_lookups == n_threads * iterations
    # Every lookup resolved exactly one way.
    assert stats["hits"] + stats["misses"] + stats["coalesced_loads"] == total_lookups
    # Exactly one loader execution per reported miss — no duplicated loads.
    assert counter.total == stats["misses"]
    # The stress actually stressed: warm hits, TTL expiry mid-flight, and
    # LRU eviction pressure all occurred.
    assert stats["hits"] > 0
    assert stats["expirations"] > 0
    assert stats["evictions"] > 0
    assert len(cache) <= cache.capacity


def test_cold_key_stampede_single_load():
    """A burst of concurrent misses on one cold key runs the loader once."""
    import time

    n_threads = 12
    cache = LruTtlCache(capacity=4)
    release = threading.Event()
    started = threading.Event()
    load_calls = []
    results = []
    barrier = threading.Barrier(n_threads)

    def slow_loader():
        load_calls.append(threading.current_thread().name)
        started.set()
        assert release.wait(timeout=JOIN_TIMEOUT_S), "loader never released"
        return "warm"

    def worker() -> None:
        barrier.wait()
        value, hit = cache.get_or_load("cold", slow_loader)
        results.append((value, hit))

    threads = [
        threading.Thread(target=worker, name=f"stampede-{i}")
        for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    assert started.wait(timeout=JOIN_TIMEOUT_S)
    # Only release the loader once every other thread is parked on the
    # in-flight load — otherwise a late arrival would see a warm hit and
    # the stampede would not be a stampede.
    deadline = time.monotonic() + JOIN_TIMEOUT_S
    while cache.stats()["coalesced_loads"] < n_threads - 1:
        assert time.monotonic() < deadline, cache.stats()
        time.sleep(0.001)
    release.set()
    _join_all(threads)

    assert load_calls and len(load_calls) == 1  # single load per stampede
    assert all(value == "warm" for value, _ in results)
    assert all(hit is False for _, hit in results)  # miss + coalesced waiters
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["coalesced_loads"] == n_threads - 1
    assert stats["hits"] + stats["misses"] + stats["coalesced_loads"] == n_threads


def test_loader_exception_propagates_to_all_waiters_and_recovers():
    """A failing stampede poisons nobody: every waiter sees the error and the
    next lookup loads fresh."""
    n_threads = 8
    cache = LruTtlCache(capacity=2)
    release = threading.Event()
    barrier = threading.Barrier(n_threads)
    outcomes = []

    def exploding_loader():
        assert release.wait(timeout=JOIN_TIMEOUT_S)
        raise RuntimeError("store down")

    def worker() -> None:
        barrier.wait()
        try:
            cache.get_or_load("bad", exploding_loader)
            outcomes.append("ok")
        except RuntimeError:
            outcomes.append("error")

    threads = [
        threading.Thread(target=worker, name=f"fail-{i}") for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    release.set()
    _join_all(threads)

    assert outcomes == ["error"] * n_threads
    assert "bad" not in cache  # nothing cached
    # The key is not poisoned: a healthy loader succeeds afterwards.
    value, hit = cache.get_or_load("bad", lambda: "recovered")
    assert (value, hit) == ("recovered", False)
