"""GET /metrics: valid Prometheus text, agreeing with /stats, end to end."""

from __future__ import annotations

import math
import urllib.request

import pytest

from repro.metrics import CONTENT_TYPE, parse_text
from repro.serve import HttpServeClient, PredictionServer, ServeApp, ServeClient

#: Families every served app must expose (bind-time registration: they are
#: present — at zero — before any traffic arrives).
EXPECTED_FAMILIES = (
    "repro_serve_handled_total",
    "repro_serve_http_requests_total",
    "repro_serve_request_seconds_count",
    "repro_serve_inflight_requests",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_cache_entries",
    "repro_batch_submitted_total",
    "repro_batch_queue_depth",
    "repro_batch_size_count",
    "repro_batch_flush_seconds_count",
    "repro_executor_tasks_total",
    "repro_executor_task_seconds_count",
    "repro_executor_queue_depth",
)


def _sample(series, name, **labels):
    for sample_labels, value in series[name]:
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            return value
    raise AssertionError(f"no sample {name} with labels {labels}")


@pytest.fixture()
def app(serve_session):
    app = ServeApp(serve_session, batch_wait_ms=5.0)
    yield app
    app.close()


class TestMetricsEndpoint:
    def test_scrape_parses_and_covers_every_subsystem(self, app, serve_session):
        client = ServeClient(app)
        context = serve_session.corpus.for_algorithm("sgd").contexts()[0]
        client.predict(context, [4, 8])
        series = parse_text(client.metrics())
        for family in EXPECTED_FAMILIES:
            assert family in series, family
        assert _sample(series, "repro_serve_handled_total", outcome="served") == 1.0
        assert (
            _sample(
                series,
                "repro_serve_http_requests_total",
                route="/predict",
                method="POST",
                code="200",
            )
            == 1.0
        )
        assert _sample(series, "repro_batch_submitted_total") == 1.0
        # The scrape itself is in flight while the body is rendered.
        assert _sample(series, "repro_serve_inflight_requests") == 1.0

    def test_no_nan_samples_anywhere(self, app, serve_session):
        client = ServeClient(app)
        client.predict(serve_session.corpus.for_algorithm("sgd").contexts()[0], [4])
        client.healthz()
        client.stats()
        for name, samples in parse_text(client.metrics()).items():
            for labels, value in samples:
                assert not math.isnan(value), f"{name}{labels} is NaN"

    def test_stats_and_metrics_agree_on_shared_counters(self, app, serve_session):
        client = ServeClient(app)
        context = serve_session.corpus.for_algorithm("sgd").contexts()[0]
        for _ in range(3):
            client.predict(context, [4])
        with pytest.raises(Exception):
            client.predict(context, [0])  # 400: client error
        stats = client.stats()
        series = parse_text(client.metrics())
        assert stats["requests"]["served"] == _sample(
            series, "repro_serve_handled_total", outcome="served"
        )
        assert stats["requests"]["client_errors"] == _sample(
            series, "repro_serve_handled_total", outcome="client_errors"
        )
        assert stats["cache"]["hits"] == _sample(series, "repro_cache_hits_total")
        assert stats["cache"]["misses"] == _sample(
            series, "repro_cache_misses_total"
        )
        assert stats["batcher"]["submitted"] == _sample(
            series, "repro_batch_submitted_total"
        )
        assert stats["batcher"]["batches"] == _sample(
            series, "repro_batch_batches_total"
        )
        latency = stats["latency"]["POST /predict"]
        assert latency["count"] == _sample(
            series,
            "repro_serve_request_seconds_count",
            route="/predict",
            method="POST",
        )
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_unknown_routes_collapse_into_other_label(self, app):
        client = ServeClient(app)
        status, _ = app.handle("GET", "/bogus", None)
        assert status == 404
        series = parse_text(client.metrics())
        assert (
            _sample(
                series,
                "repro_serve_http_requests_total",
                route="_other_",
                method="GET",
                code="404",
            )
            == 1.0
        )
        # Unknown routes never count as handled outcomes.
        assert _sample(series, "repro_serve_handled_total", outcome="served") == 0.0

    def test_metrics_requests_are_themselves_metered(self, app):
        client = ServeClient(app)
        client.metrics()
        series = parse_text(client.metrics())
        assert (
            _sample(
                series,
                "repro_serve_http_requests_total",
                route="/metrics",
                method="GET",
                code="200",
            )
            >= 1.0
        )


class TestMetricsOverHttp:
    def test_scrape_through_prediction_server(self, serve_session):
        with PredictionServer(serve_session, port=0, batch_wait_ms=5.0) as server:
            client = HttpServeClient(server.url)
            context = serve_session.corpus.for_algorithm("sgd").contexts()[0]
            client.predict(context, [4, 8])
            body = client.metrics()
            assert isinstance(body, str)
            series = parse_text(body)
            for family in EXPECTED_FAMILIES:
                assert family in series, family
            assert (
                _sample(series, "repro_serve_handled_total", outcome="served")
                == 1.0
            )
            # /stats over the same wire agrees with the scrape.
            stats = client.stats()
            assert stats["requests"]["served"] == 1

    def test_content_type_is_prometheus_text(self, serve_session):
        with PredictionServer(serve_session, port=0, batch_wait_ms=5.0) as server:
            with urllib.request.urlopen(server.url + "/metrics", timeout=30) as resp:
                assert resp.status == 200
                assert resp.headers.get("Content-Type") == CONTENT_TYPE
                parse_text(resp.read().decode("utf-8"))
