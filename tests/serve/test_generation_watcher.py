"""Unit tests of :class:`repro.serve.cache.StoreGenerationWatcher`.

The watcher is the reader half of the fleet's cross-worker invalidation:
it compares the store's monotonic generation against the last value seen
and, on movement, re-applies the published serving-overrides document and
drops superseded warm-cache entries. These tests drive it against a stub
store so every leg — rate limiting, initial sync, the version-collision
invalidation — is deterministic and instant.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.metrics import MetricsRegistry
from repro.serve.cache import FakeClock, LruTtlCache, StoreGenerationWatcher


class _StubStore:
    """A store exposing exactly what the watcher reads."""

    def __init__(self) -> None:
        self._generation = 0
        self._overrides = {}
        self.generation_calls = 0

    def generation(self) -> int:
        self.generation_calls += 1
        return self._generation

    def load_serving_overrides(self):
        return dict(self._overrides)

    def publish(self, overrides) -> None:
        """What a committed refresh does: new doc, bumped generation."""
        self._overrides = dict(overrides)
        self._generation += 1


def _session(store=None):
    return SimpleNamespace(store=store or _StubStore(), serving_overrides={})


def _loaded_cache(*names):
    cache = LruTtlCache(capacity=8)
    for name in names:
        cache.get_or_load(("named", name), lambda name=name: f"model:{name}")
    return cache


class TestRateLimiting:
    def test_maybe_check_probes_at_most_once_per_interval(self):
        clock = FakeClock()
        session = _session()
        watcher = StoreGenerationWatcher(
            session, LruTtlCache(capacity=4), interval_s=1.0, clock=clock
        )
        baseline = session.store.generation_calls  # the constructor's sync
        for _ in range(10):
            watcher.maybe_check()
        assert session.store.generation_calls == baseline  # interval not up
        clock.advance(1.0)
        watcher.maybe_check()
        assert session.store.generation_calls == baseline + 1

    def test_zero_interval_probes_every_call(self):
        clock = FakeClock()
        session = _session()
        watcher = StoreGenerationWatcher(
            session, LruTtlCache(capacity=4), interval_s=0.0, clock=clock
        )
        baseline = session.store.generation_calls
        for _ in range(3):
            watcher.maybe_check()
        assert session.store.generation_calls == baseline + 3

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            StoreGenerationWatcher(
                _session(), LruTtlCache(capacity=4), interval_s=-1.0
            )


class TestInitialSync:
    def test_pre_existing_overrides_applied_at_construction(self):
        """A worker forked *after* a refresh must serve the refreshed
        model from its very first request — the constructor syncs."""
        session = _session()
        session.store.publish({"group-a": "model-v2"})
        watcher = StoreGenerationWatcher(
            session, LruTtlCache(capacity=4), interval_s=1.0, clock=FakeClock()
        )
        assert session.serving_overrides == {"group-a": "model-v2"}
        assert watcher.generation == 1


class TestInvalidation:
    def test_override_change_drops_superseded_entry(self):
        session = _session()
        session.serving_overrides["group-a"] = "model-v1"
        cache = _loaded_cache("model-v1")
        clock = FakeClock()
        watcher = StoreGenerationWatcher(session, cache, interval_s=1.0, clock=clock)

        session.store.publish({"group-a": "model-v2"})
        clock.advance(1.0)
        assert watcher.maybe_check() is True
        assert session.serving_overrides["group-a"] == "model-v2"
        assert ("named", "model-v1") not in cache

    def test_unchanged_name_still_drops_the_published_entry(self):
        """The version-collision leg: two workers refreshing one group
        race to the *same* versioned name, so a generation bump with an
        unchanged override name can still mean replaced bytes — the warm
        copy of the published name itself must go."""
        session = _session()
        session.serving_overrides["group-a"] = "model-v1"
        cache = _loaded_cache("model-v1")
        clock = FakeClock()
        watcher = StoreGenerationWatcher(session, cache, interval_s=1.0, clock=clock)

        # Same name re-published (peer overwrote the bytes underneath).
        session.store.publish({"group-a": "model-v1"})
        clock.advance(1.0)
        assert watcher.maybe_check() is True
        assert ("named", "model-v1") not in cache

    def test_no_generation_movement_means_no_invalidation(self):
        session = _session()
        session.serving_overrides["group-a"] = "model-v1"
        cache = _loaded_cache("model-v1")
        clock = FakeClock()
        watcher = StoreGenerationWatcher(session, cache, interval_s=0.0, clock=clock)
        assert watcher.check() is False
        assert ("named", "model-v1") in cache

    def test_unrelated_entries_survive(self):
        session = _session()
        cache = _loaded_cache("model-v1", "other-model")
        clock = FakeClock()
        watcher = StoreGenerationWatcher(session, cache, interval_s=0.0, clock=clock)
        session.store.publish({"group-a": "model-v2"})
        watcher.check()
        assert ("named", "other-model") in cache


class TestMetrics:
    def test_counters_and_gauge(self):
        registry = MetricsRegistry()
        session = _session()
        clock = FakeClock()
        watcher = StoreGenerationWatcher(
            session,
            LruTtlCache(capacity=4),
            interval_s=0.0,
            clock=clock,
            registry=registry,
        )
        session.store.publish({"group-a": "model-v2"})
        watcher.check()
        assert watcher._m_checks.value == 2  # constructor sync + explicit
        assert watcher._m_changes.value == 1
        assert watcher._m_generation.value == 1
