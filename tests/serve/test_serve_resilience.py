"""The serve layer's degradation paths: shedding, deadlines, stale models,
structured 500s, and the HTTP client's retry/unavailable behavior."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import Session
from repro.metrics import parse_text
from repro.resilience import (
    SITE_SERVE_PREDICT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.serve import (
    HttpServeClient,
    PredictionServer,
    ServeApp,
    ServeClient,
    ServeError,
    ServeUnavailableError,
    predict_payload,
)


@pytest.fixture()
def sgd_serving_context(serve_session):
    return serve_session.corpus.for_algorithm("sgd").contexts()[0]


def _predict_plan(**spec_kwargs) -> FaultPlan:
    return FaultPlan(
        seed=0, specs=(FaultSpec(site=SITE_SERVE_PREDICT, **spec_kwargs),)
    )


# --------------------------------------------------------------------- #
# Load shedding
# --------------------------------------------------------------------- #


def test_full_queue_sheds_with_structured_503(serve_session, sgd_serving_context):
    app = ServeApp(
        serve_session, cache=False, max_queue_depth=0, retry_after_s=2.5
    )
    client = ServeClient(app)
    try:
        with pytest.raises(ServeError) as excinfo:
            client.predict(sgd_serving_context, [4])
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"] == "overloaded"
        assert excinfo.value.payload["retry_after_s"] == 2.5
        assert app.registry.get("repro_serve_shed_total").value == 1
        # Shedding is pre-queue: nothing reached the batcher.
        assert app.batcher.queue_depth() == 0
    finally:
        app.close()


def test_shed_response_carries_retry_after_header_over_http(
    serve_session, sgd_serving_context
):
    app = ServeApp(serve_session, cache=False, max_queue_depth=0, retry_after_s=3.0)
    with PredictionServer(app) as server:
        body = json.dumps(predict_payload(sgd_serving_context, [4])).encode()
        request = urllib.request.Request(
            server.url + "/predict", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] == "3"
        assert json.loads(excinfo.value.read())["error"] == "overloaded"


# --------------------------------------------------------------------- #
# Request deadlines
# --------------------------------------------------------------------- #


def test_expired_deadline_is_structured_504(serve_session, sgd_serving_context):
    # A nanosecond budget cannot cover any batch wait: every default-path
    # predict times out, is withdrawn from the queue, and becomes a 504.
    app = ServeApp(serve_session, cache=False, request_deadline_s=1e-9)
    client = ServeClient(app)
    try:
        with pytest.raises(ServeError) as excinfo:
            client.predict(sgd_serving_context, [4])
        assert excinfo.value.status == 504
        assert excinfo.value.payload["error"] == "deadline_exceeded"
        assert app.registry.get("repro_serve_deadline_exceeded_total").value == 1
        # The expired request was withdrawn: the queue is empty again.
        assert app.batcher.queue_depth() == 0
    finally:
        app.close()


def test_generous_deadline_serves_normally(serve_session, sgd_serving_context):
    app = ServeApp(serve_session, cache=False, request_deadline_s=30.0)
    client = ServeClient(app)
    try:
        prediction = client.predict(sgd_serving_context, [4, 8])
        assert np.all(np.isfinite(prediction))
        assert app.registry.get("repro_serve_deadline_exceeded_total").value == 0
    finally:
        app.close()


# --------------------------------------------------------------------- #
# Stale-model fallback on load failure
# --------------------------------------------------------------------- #


@pytest.fixture()
def named_model_app(c3o_dataset, tmp_path, small_config):
    session = Session(c3o_dataset, config=small_config, store=tmp_path / "models")
    session.pretrain("sgd", save_as="sgd-base")
    app = ServeApp(session, batch_wait_ms=5.0)
    yield app, session, c3o_dataset.for_algorithm("sgd").contexts()[0]
    app.close()


def test_load_failure_serves_last_good_model(named_model_app, monkeypatch):
    app, session, context = named_model_app
    client = ServeClient(app)
    healthy = client.predict(context, [4, 8], model="sgd-base")

    def poisoned_load(name):
        raise RuntimeError("store hiccup mid-refresh")

    monkeypatch.setattr(session, "load", poisoned_load)
    stale = client.predict(context, [4, 8], model="sgd-base")
    np.testing.assert_array_equal(stale, healthy)  # the last good copy
    assert app.registry.get("repro_serve_stale_served_total").value == 1


def test_load_failure_without_a_good_copy_is_500(named_model_app, monkeypatch):
    app, session, context = named_model_app
    monkeypatch.setattr(
        session, "load", lambda name: (_ for _ in ()).throw(RuntimeError("cold"))
    )
    client = ServeClient(app)
    with pytest.raises(ServeError) as excinfo:
        client.predict(context, [4], model="sgd-base")
    assert excinfo.value.status == 500
    assert excinfo.value.payload["error"] == "internal"


def test_unknown_model_stays_404_not_stale(named_model_app):
    app, _, context = named_model_app
    client = ServeClient(app)
    client.predict(context, [4], model="sgd-base")  # a good copy exists
    with pytest.raises(ServeError) as excinfo:
        client.predict(context, [4], model="no-such-model")
    assert excinfo.value.status == 404  # FileNotFoundError is not degraded
    assert app.registry.get("repro_serve_stale_served_total").value == 0


# --------------------------------------------------------------------- #
# Injected predict faults: structured 500s, corruption, worker survival
# --------------------------------------------------------------------- #


def test_injected_predict_failure_is_structured_500_and_worker_survives(
    serve_session, sgd_serving_context
):
    app = ServeApp(serve_session, cache=False, batch_wait_ms=5.0)
    client = ServeClient(app)
    try:
        with FaultInjector(_predict_plan(kind="raise", max_fires=1)):
            with pytest.raises(ServeError) as excinfo:
                client.predict(sgd_serving_context, [4])
            assert excinfo.value.status == 500
            assert excinfo.value.payload["error"] == "internal"
            assert "InjectedFault" in excinfo.value.payload["detail"]
            # The worker survived: the very next request serves fine.
            prediction = client.predict(sgd_serving_context, [4])
            assert np.all(np.isfinite(prediction))
    finally:
        app.close()


def test_server_500s_are_counted_by_code_over_http(serve_session, sgd_serving_context):
    app = ServeApp(serve_session, cache=False, batch_wait_ms=5.0)
    with PredictionServer(app) as server:
        client = HttpServeClient(server.url)
        with FaultInjector(_predict_plan(kind="raise", max_fires=1)):
            with pytest.raises(ServeError) as excinfo:
                client.predict(sgd_serving_context, [4])
            assert excinfo.value.status == 500
        # The 500 is visible in the scrape, labeled by code — and the HTTP
        # worker survived to serve both the scrape and another predict.
        series = parse_text(client.metrics())
        by_code = {
            labels.get("code"): value
            for labels, value in series["repro_serve_http_requests_total"]
        }
        assert by_code.get("500") == 1
        assert np.all(np.isfinite(client.predict(sgd_serving_context, [4])))


def test_corrupt_fault_doubles_the_prediction(serve_session, sgd_serving_context):
    app = ServeApp(serve_session, cache=False, batch_wait_ms=5.0)
    client = ServeClient(app)
    try:
        honest = client.predict(sgd_serving_context, [4, 8])
        with FaultInjector(_predict_plan(kind="corrupt", max_fires=1)):
            corrupted = client.predict(sgd_serving_context, [4, 8])
        np.testing.assert_allclose(corrupted, honest * 2.0)
    finally:
        app.close()


# --------------------------------------------------------------------- #
# HTTP client: unavailable errors, retries, per-call timeouts
# --------------------------------------------------------------------- #


def test_unreachable_server_raises_typed_error_with_url():
    client = HttpServeClient("http://127.0.0.1:9", timeout_s=0.5)
    with pytest.raises(ServeUnavailableError) as excinfo:
        client.healthz()
    assert excinfo.value.url == "http://127.0.0.1:9/healthz"
    assert isinstance(excinfo.value, ConnectionError)  # except ConnectionError works


def test_retry_policy_rides_out_unavailable_then_gives_up():
    naps = []
    client = HttpServeClient(
        "http://127.0.0.1:9", timeout_s=0.5,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.0),
        sleep=naps.append,
    )
    with pytest.raises(ServeUnavailableError):
        client.healthz()
    assert naps == pytest.approx([0.05, 0.1])  # backed off between attempts


def test_client_retries_503_honoring_retry_after(serve_session, sgd_serving_context):
    app = ServeApp(serve_session, cache=False, max_queue_depth=0, retry_after_s=0.0)
    with PredictionServer(app) as server:
        naps = []
        client = HttpServeClient(
            server.url,
            retry=RetryPolicy(max_attempts=2, base_delay_s=5.0, jitter=0.0),
            sleep=naps.append,
        )
        with pytest.raises(ServeError) as excinfo:
            client.predict(sgd_serving_context, [4])
        assert excinfo.value.status == 503
        # One retry happened, and it slept the server's Retry-After (0s,
        # rounded up to 1 by the header), not the policy's 5s backoff.
        assert len(naps) == 1
        assert naps[0] < 5.0


def test_timeout_override_reaches_the_probe_endpoints(serve_session):
    app = ServeApp(serve_session, cache=False)
    with PredictionServer(app) as server:
        client = HttpServeClient(server.url, timeout_s=30.0)
        assert client.healthz(timeout_s=2.0)["status"] == "ok"
        assert "requests" in client.stats(timeout_s=2.0)
        assert "repro_serve" in client.metrics(timeout_s=2.0)
