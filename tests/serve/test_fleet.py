"""End-to-end tests of :mod:`repro.serve.fleet`.

A real pre-fork fleet per module: forked worker processes, a shared
on-disk store, HTTP over the shared listener. Covers the tentpole
contract — bit-identity with serial serving, crash restarts, the
aggregation endpoint — plus the cross-process invalidation legs (an
override published by one process observed by another within one
generation check) for both shareable backends, and the ``memory://``
refusals.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.request

import numpy as np
import pytest

from repro.api import Session
from repro.core.config import BellamyConfig
from repro.core.persistence import ModelStore
from repro.resilience import FaultInjector, FaultPlan, RetryPolicy, SITE_FLEET_WORKER
from repro.serve import (
    FleetSupervisor,
    HttpServeClient,
    LruTtlCache,
    ServeApp,
    StoreGenerationWatcher,
    ensure_fleet_store,
    reuseport_available,
)
from repro.serve.fleet import merge_metrics_texts


def _small_config(seed: int = 0) -> BellamyConfig:
    return BellamyConfig(seed=seed).with_overrides(
        pretrain_epochs=20, finetune_max_epochs=60, finetune_patience=30
    )


def _get_json(url: str):
    return json.loads(urllib.request.urlopen(url, timeout=10).read())


def _wait_for(predicate, timeout_s: float = 60.0, poll_s: float = 0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll_s)
    raise AssertionError("condition not met within the deadline")


def _run_in_child(fn) -> int:
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process
        code = 1
        try:
            code = int(fn() or 0)
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


# --------------------------------------------------------------------- #
# Pure units
# --------------------------------------------------------------------- #


class TestMergeMetricsTexts:
    def test_families_keep_one_header_and_grouped_samples(self):
        text = (
            "# HELP a A.\n# TYPE a counter\na 1\n"
            "# HELP b B.\n# TYPE b gauge\nb{x=\"y\"} 2\n"
        )
        merged = merge_metrics_texts([("0", text), ("1", text)])
        assert merged.count("# HELP a A.") == 1
        assert merged.count("# TYPE b gauge") == 1
        lines = merged.strip().splitlines()
        # Samples stay under their family's header block.
        assert lines.index('a{worker="0"} 1') < lines.index("# HELP b B.")
        assert 'b{worker="1",x="y"} 2' in lines

    def test_parses_back(self):
        from repro.metrics import parse_text

        text = "# HELP a A.\n# TYPE a counter\na 1\n"
        series = parse_text(merge_metrics_texts([("0", text), ("1", text)]))
        assert {labels["worker"] for labels, _ in series["a"]} == {"0", "1"}

    def test_empty(self):
        assert merge_metrics_texts([]) == ""


def test_reuseport_probe_returns_bool():
    assert reuseport_available() in (True, False)


def test_worker_count_validated():
    with pytest.raises(ValueError):
        FleetSupervisor(lambda: None, workers=0)


def test_build_fault_plan_gains_fleet_site_on_request():
    from repro.simulator.chaos import build_fault_plan

    default_sites = {spec.site for spec in build_fault_plan().specs}
    assert SITE_FLEET_WORKER not in default_sites
    armed_sites = {spec.site for spec in build_fault_plan(worker_crashes=1).specs}
    assert SITE_FLEET_WORKER in armed_sites


# --------------------------------------------------------------------- #
# memory:// refusals
# --------------------------------------------------------------------- #


class TestMemoryRefusal:
    def test_ensure_fleet_store_rejects_memory(self):
        with pytest.raises(ValueError, match="process-private"):
            ensure_fleet_store(ModelStore("memory://fleet-reject-test"))

    def test_ensure_fleet_store_accepts_file(self, tmp_path):
        ensure_fleet_store(ModelStore(str(tmp_path)))

    def test_watcher_raises_from_forked_process(self, c3o_dataset):
        """Across a fork, a ``memory://`` watcher diagnoses instead of
        silently diverging (the index it polls is the parent's heap)."""
        session = Session(
            c3o_dataset, config=_small_config(), store="memory://fleet-fork-test"
        )
        watcher = StoreGenerationWatcher(session, LruTtlCache(capacity=4))

        def child() -> int:
            try:
                watcher.check()
            except RuntimeError as error:
                return 0 if "process-private" in str(error) else 8
            return 7

        assert _run_in_child(child) == 0
        watcher.check()  # the parent keeps working


# --------------------------------------------------------------------- #
# Cross-process invalidation (the generation hand-off, no HTTP)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("scheme", ["file", "sqlite"])
def test_override_published_by_another_process_is_observed(
    scheme, tmp_path, c3o_dataset
):
    """Process A commits a serving-overrides document; process B's next
    generation check applies it and drops the superseded cache entry."""
    uri = f"{scheme}://{tmp_path / 'store'}"
    session = Session(c3o_dataset, config=_small_config(), store=uri)
    session.serving_overrides["group-a"] = "old-model"
    cache = LruTtlCache(capacity=8)
    cache.get_or_load(("named", "old-model"), lambda: "stale-bytes")
    watcher = StoreGenerationWatcher(session, cache, interval_s=0.0)
    generation_before = watcher.generation

    def child() -> int:
        other = ModelStore(uri)  # what a peer worker holds
        other.publish_serving_overrides({"group-a": "new-model"})
        return 0

    assert _run_in_child(child) == 0
    assert watcher.check() is True  # one check interval is enough
    assert watcher.generation > generation_before
    assert session.serving_overrides["group-a"] == "new-model"
    assert ("named", "old-model") not in cache


# --------------------------------------------------------------------- #
# The fleet itself
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fleet(tmp_path_factory, c3o_dataset):
    """A running 2-worker fleet over a warmed shared store, plus the
    serial session it must agree with bit-for-bit."""
    store_root = str(tmp_path_factory.mktemp("fleet-store"))
    serial = Session(c3o_dataset, config=_small_config(), store=store_root)
    serial.base_model("sgd")  # train once; workers load from the store

    def make_app() -> ServeApp:
        session = Session(c3o_dataset, config=_small_config(), store=store_root)
        return ServeApp(session, generation_check_s=0.1)

    supervisor = FleetSupervisor(
        make_app,
        port=0,
        workers=2,
        poll_s=0.05,
        restart_policy=RetryPolicy(
            max_attempts=6, base_delay_s=0.05, multiplier=1.0, jitter=0.0
        ),
    )
    supervisor.start()
    try:
        yield supervisor, serial, c3o_dataset.contexts()[0]
    finally:
        supervisor.close()


class TestFleetServing:
    def test_bit_identical_to_serial(self, fleet):
        supervisor, serial, context = fleet
        machines = [2, 4, 8, 12]
        expected = np.asarray(serial.predict(context, machines), dtype=np.float64)
        client = HttpServeClient(supervisor.url)
        for _ in range(4):  # several requests so both workers likely answer
            got = np.asarray(client.predict(context, machines), dtype=np.float64)
            np.testing.assert_array_equal(got, expected)

    def test_every_worker_answers_identically(self, fleet):
        """Per-admin-port predictions (one per worker, no load-balancer
        ambiguity) must agree bit-for-bit with the serial session."""
        supervisor, serial, context = fleet
        machines = [2, 4, 8]
        expected = np.asarray(serial.predict(context, machines), dtype=np.float64)
        for row in supervisor.worker_table():
            client = HttpServeClient(f"http://127.0.0.1:{row['admin_port']}")
            got = np.asarray(client.predict(context, machines), dtype=np.float64)
            np.testing.assert_array_equal(got, expected)

    def test_fleet_healthz(self, fleet):
        supervisor, _, _ = fleet
        body = _get_json(supervisor.fleet_url + "/fleet/healthz")
        assert body["status"] == "ok"
        assert body["workers"] == 2
        assert body["alive"] == 2
        assert len(body["table"]) == 2
        for row in body["table"]:
            assert row["alive"] is True
            assert isinstance(row["admin_port"], int)

    def test_fleet_stats_keyed_by_slot(self, fleet):
        supervisor, _, context = fleet
        HttpServeClient(supervisor.url).predict(context, [4])
        body = _get_json(supervisor.fleet_url + "/fleet/stats")
        assert set(body["workers"]) == {"0", "1"}
        for entry in body["workers"].values():
            assert entry["healthz"]["status"] == "ok"
            assert "store_generation" in entry["healthz"]
            assert "requests" in entry["stats"]

    def test_fleet_metrics_relabeled_per_worker(self, fleet):
        from repro.metrics import parse_text

        supervisor, _, _ = fleet
        with urllib.request.urlopen(
            supervisor.fleet_url + "/fleet/metrics", timeout=10
        ) as response:
            series = parse_text(response.read().decode("utf-8"))
        gauge = series["repro_serve_inflight_requests"]
        assert {labels["worker"] for labels, _ in gauge} == {"0", "1"}

    def test_sigkilled_worker_is_restarted_and_serves(self, fleet):
        supervisor, serial, context = fleet
        victim = supervisor.worker_table()[0]
        os.kill(victim["pid"], signal.SIGKILL)

        def respawned():
            table = supervisor.worker_table()
            fresh = table[0]
            return (
                fresh["alive"]
                and fresh["pid"] != victim["pid"]
                and fresh["admin_port"] is not None
            ) and fresh
        replacement = _wait_for(respawned)
        assert replacement["restarts"] == victim["restarts"] + 1
        expected = np.asarray(serial.predict(context, [4, 8]), dtype=np.float64)
        client = HttpServeClient(f"http://127.0.0.1:{replacement['admin_port']}")
        np.testing.assert_array_equal(
            np.asarray(client.predict(context, [4, 8]), dtype=np.float64), expected
        )
        assert _get_json(supervisor.fleet_url + "/fleet/healthz")["alive"] == 2


def test_injected_bootstrap_crash_is_restarted(c3o_dataset):
    """The chaos ``fleet.worker`` site: a fault armed at worker bootstrap
    kills the first spawn; once the outage clears, the monitor's backoff
    respawns the slot and it serves."""
    from repro.simulator.chaos import build_fault_plan

    plan = FaultPlan(
        seed=0,
        specs=tuple(
            spec
            for spec in build_fault_plan(worker_crashes=1).specs
            if spec.site == SITE_FLEET_WORKER
        ),
    )

    def make_app() -> ServeApp:
        return ServeApp(Session(c3o_dataset, config=_small_config()))

    supervisor = FleetSupervisor(
        make_app,
        port=0,
        workers=1,
        poll_s=0.05,
        restart_policy=RetryPolicy(
            max_attempts=6, base_delay_s=0.05, multiplier=1.0, jitter=0.0
        ),
    )
    try:
        with FaultInjector(plan):
            supervisor.start()
            # The injected crash killed the first spawn before it reported.
            assert supervisor.worker_table()[0]["admin_port"] is None
        # Outage over (respawns fork from the parent, where ACTIVE is now
        # cleared): the slot comes back and serves.
        row = _wait_for(
            lambda: (
                (table := supervisor.worker_table())[0]["alive"]
                and table[0]["admin_port"] is not None
                and table[0]
            )
        )
        assert row["restarts"] >= 1
        context = c3o_dataset.contexts()[0]
        prediction = HttpServeClient(supervisor.url).predict(context, [4])
        assert prediction.shape == (1,)
    finally:
        supervisor.close()


@pytest.mark.slow
def test_online_refresh_in_one_worker_reaches_all_workers(tmp_path):
    """The acceptance path end-to-end: drift traffic triggers a refresh in
    whichever worker received it; the refresh publishes overrides through
    the shared store, and *every* worker serves the refreshed model (bit-
    identically) within one generation-check interval."""
    from repro.data.dataset import ExecutionDataset
    from repro.online import OnlineSession, RefreshPolicy
    from repro.simulator import DriftSpec, generate_drift_scenario

    scenario = generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.9, start=0.0), seed=0, n_stream=12
    )
    config = BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=300, finetune_max_epochs=250, finetune_patience=120
    )
    store_root = str(tmp_path / "models")
    check_s = 0.05

    def make_app() -> ServeApp:
        corpus = ExecutionDataset(list(scenario.history))
        session = Session(corpus, config=config, store=store_root)
        online = OnlineSession(
            session,
            RefreshPolicy(
                min_observations=3, window=6, refresh_samples=8, max_epochs=250
            ),
            publish_overrides=True,
        )
        return ServeApp(session, online=online, generation_check_s=check_s)

    # Warm the base model once so the workers load instead of racing to train.
    Session(
        ExecutionDataset(list(scenario.history)), config=config, store=store_root
    ).base_model(scenario.context.algorithm)

    supervisor = FleetSupervisor(
        make_app, port=0, workers=2, use_reuseport=False, poll_s=0.05
    )
    supervisor.start()
    try:
        client = HttpServeClient(supervisor.url)
        context = scenario.context
        stale = client.predict(context, [4, 8])

        refreshed = None
        for machines, runtime_s in scenario.stream:
            body = client.observe(context, machines, runtime_s)
            if body["refreshed"] is not None and refreshed is None:
                refreshed = body["refreshed"]
        assert refreshed is not None, "the drift stream never triggered a refresh"

        time.sleep(2 * check_s)  # one generation-check interval (plus slack)
        predictions = []
        for row in supervisor.worker_table():
            worker = HttpServeClient(f"http://127.0.0.1:{row['admin_port']}")
            predictions.append(
                np.asarray(worker.predict(context, [4, 8]), dtype=np.float64)
            )
            health = worker.healthz()
            assert health["store_generation"] == supervisor_generation(store_root)
        np.testing.assert_array_equal(predictions[0], predictions[1])
        assert not np.array_equal(predictions[0], stale)
    finally:
        supervisor.close()


def supervisor_generation(store_root: str) -> int:
    """The store generation an outside observer (the test) sees."""
    return ModelStore(store_root).generation()
