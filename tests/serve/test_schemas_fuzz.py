"""Property-based fuzzing of the serve wire schemas.

Every randomized payload — wrong types, NaN/inf numbers, huge arrays, deep
nesting, surprise keys — must either parse cleanly or raise a structured
:class:`SchemaError`; through the app it must yield 200 or a structured 400,
**never** a 500 and never an unhandled exception. This is the contract that
keeps the public endpoint unkillable by malformed traffic.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.schemas import (
    MAX_JOB_PARAMS,
    MAX_LIST_ITEMS,
    SchemaError,
    parse_observe_payload,
    parse_predict_payload,
)
from repro.serve.server import ServeApp

pytestmark = pytest.mark.fuzz

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**30), max_value=10**30),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=40),
)

#: Arbitrary JSON-shaped values, nested up to 6 levels deep.
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=8),
        st.dictionaries(st.text(max_size=12), children, max_size=8),
    ),
    max_leaves=40,
)

_context_like = st.fixed_dictionaries(
    {},
    optional={
        "algorithm": _json_values,
        "node_type": _json_values,
        "dataset_mb": _json_values,
        "dataset_characteristics": _json_values,
        "environment": _json_values,
        "software": _json_values,
        "job_params": _json_values,
        "surprise": _json_values,
    },
)

_valid_context = st.just(
    {"algorithm": "sgd", "node_type": "m4.2xlarge", "dataset_mb": 1000}
)

_predict_like = st.fixed_dictionaries(
    {},
    optional={
        "context": st.one_of(_json_values, _context_like, _valid_context),
        "machines": _json_values,
        "samples": _json_values,
        "model": _json_values,
        "extra": _json_values,
    },
)

_observe_like = st.fixed_dictionaries(
    {},
    optional={
        "context": st.one_of(_json_values, _context_like, _valid_context),
        "machines": _json_values,
        "runtime_s": _json_values,
        "extra": _json_values,
    },
)

_any_payload = st.one_of(_json_values, _predict_like, _observe_like)


# --------------------------------------------------------------------- #
# Parser level: SchemaError or success, nothing else
# --------------------------------------------------------------------- #


@settings(max_examples=150, deadline=None)
@given(payload=_any_payload)
def test_parse_predict_never_raises_unstructured(payload):
    try:
        request = parse_predict_payload(payload)
    except SchemaError as error:
        assert error.field
        assert error.payload()["error"] == "bad_request"
    else:
        # Parsed values are bounded, positive, and finite.
        assert 0 < len(request.machines) <= MAX_LIST_ITEMS
        assert all(math.isfinite(m) and m > 0 for m in request.machines)
        if request.train_machines is not None:
            assert len(request.train_machines) <= MAX_LIST_ITEMS
            assert all(math.isfinite(m) and m > 0 for m in request.train_machines)
            assert all(
                math.isfinite(r) and r > 0 for r in (request.train_runtimes or ())
            )
        assert len(request.context.job_params) <= MAX_JOB_PARAMS


@settings(max_examples=150, deadline=None)
@given(payload=_any_payload)
def test_parse_observe_never_raises_unstructured(payload):
    try:
        context, machines, runtime = parse_observe_payload(payload)
    except SchemaError as error:
        assert error.field
        assert error.payload()["error"] == "bad_request"
    else:
        assert math.isfinite(machines) and machines > 0
        assert math.isfinite(runtime) and runtime > 0
        assert context.context_id


def test_nan_and_inf_machines_are_rejected():
    for bad in (float("nan"), float("inf"), -float("inf")):
        with pytest.raises(SchemaError):
            parse_predict_payload(
                {
                    "context": {"algorithm": "a", "node_type": "n", "dataset_mb": 1},
                    "machines": [bad],
                }
            )


def test_huge_machine_list_is_rejected_structured():
    with pytest.raises(SchemaError) as excinfo:
        parse_predict_payload(
            {
                "context": {"algorithm": "a", "node_type": "n", "dataset_mb": 1},
                "machines": [1.0] * (MAX_LIST_ITEMS + 1),
            }
        )
    assert "at most" in str(excinfo.value)


# --------------------------------------------------------------------- #
# App level: every payload gets 200 or a structured 400 — never a 500
# --------------------------------------------------------------------- #


class _StubSession:
    """Just enough Session surface for ServeApp routing tests.

    Predictions are canned, so the fuzz run exercises the request path
    (parsing, batching, error mapping) without training any model.
    """

    def __init__(self) -> None:
        self.model_cache = None
        self.last_batch_stats = {}
        self.batch_hooks = []

    def predict_batch(self, requests, model=None, max_epochs=None, exact=True):
        return [np.ones(len(r.machines)) for r in requests]

    def load(self, name):
        raise FileNotFoundError(f"no model named {name!r}")


@pytest.fixture(scope="module")
def fuzz_app():
    app = ServeApp(_StubSession(), cache=False, batch_wait_ms=0.0)
    yield app
    app.close()


@settings(max_examples=100, deadline=None)
@given(payload=_any_payload)
def test_predict_endpoint_never_500s(fuzz_app, payload):
    status, body = fuzz_app.handle("POST", "/predict", payload)
    assert status in (200, 400, 404), body
    if status == 400:
        assert body["error"] == "bad_request"
        assert "field" in body and "detail" in body
    if status == 404:
        assert body["error"] == "unknown_model"


@settings(max_examples=100, deadline=None)
@given(payload=_any_payload)
def test_observe_endpoint_never_500s_when_disabled(fuzz_app, payload):
    status, body = fuzz_app.handle("POST", "/observe", payload)
    # This app has no online lifecycle: every payload gets the structured 404.
    assert status == 404
    assert body["error"] == "online_disabled"
