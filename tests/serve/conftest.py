"""Shared fixtures of the serving tests: one small warm session."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.core.config import BellamyConfig


def _small_config(seed: int = 0) -> BellamyConfig:
    return BellamyConfig(seed=seed).with_overrides(
        pretrain_epochs=20, finetune_max_epochs=60, finetune_patience=30
    )


@pytest.fixture(scope="session")
def small_config() -> BellamyConfig:
    """A training budget small enough for sub-second pre-training."""
    return _small_config()


@pytest.fixture(scope="session")
def serve_session(c3o_dataset) -> Session:
    """A session over the C3O corpus with the SGD base model warm.

    Shared across serving tests (read-mostly); tests that install caches or
    mutate session state build their own session instead.
    """
    session = Session(c3o_dataset, config=_small_config())
    session.base_model("sgd")
    return session


@pytest.fixture()
def fresh_session(c3o_dataset) -> Session:
    """A session safe to mutate (cache installation, store wiring)."""
    return Session(c3o_dataset, config=_small_config())
