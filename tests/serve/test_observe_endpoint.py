"""The /observe endpoint: routing, validation, drift wiring, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.core.config import BellamyConfig
from repro.data.dataset import ExecutionDataset
from repro.online import OnlineSession, RefreshPolicy
from repro.serve import (
    HttpServeClient,
    PredictionServer,
    ServeApp,
    ServeClient,
    ServeError,
)
from repro.simulator import DriftSpec, generate_drift_scenario


@pytest.fixture(scope="module")
def scenario():
    return generate_drift_scenario(
        DriftSpec(kind="step", magnitude=0.9, start=0.0), seed=0, n_stream=12
    )


@pytest.fixture()
def online_app(scenario):
    corpus = ExecutionDataset(list(scenario.history))
    config = BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=300, finetune_max_epochs=250, finetune_patience=120
    )
    session = Session(corpus, config=config)
    online = OnlineSession(
        session,
        RefreshPolicy(min_observations=3, window=6, refresh_samples=8, max_epochs=250),
    )
    app = ServeApp(session, online=online)
    yield app
    app.close()


def test_observe_records_and_reports_drift_state(online_app, scenario):
    client = ServeClient(online_app)
    machines, runtime = scenario.stream[0]
    body = client.observe(scenario.context, machines, runtime)
    assert body["recorded"] is True
    assert body["group"] == scenario.context.context_id
    assert body["runtime_s"] == runtime
    assert body["predicted_s"] > 0
    assert body["relative_error"] >= 0
    assert body["drifted"] is False  # too few observations yet
    assert body["refreshed"] is None


def test_observe_stream_triggers_refresh_and_stats(online_app, scenario):
    client = ServeClient(online_app)
    refreshed = None
    for machines, runtime in scenario.stream:
        body = client.observe(scenario.context, machines, runtime)
        if body["refreshed"] is not None and refreshed is None:
            refreshed = body["refreshed"]
    assert refreshed is not None
    assert refreshed["refreshed_error"] < refreshed["stale_error"]
    assert refreshed["version"] == 1
    assert refreshed["model_name"] is None  # session has no store

    stats = client.stats()["online"]
    assert stats["observations"] == len(scenario.stream)
    assert stats["refreshes"] >= 1
    assert stats["buffered"] == len(scenario.stream)
    assert stats["drift"]["drift_flags"] >= 1
    # The request log kept the observe traffic.
    paths = {entry["path"] for entry in online_app.request_log()}
    assert "/observe" in paths


def test_observe_malformed_payloads_get_structured_400(online_app):
    for payload, field in (
        (None, "body"),
        ({"machines": 8, "runtime_s": 1.0}, "context"),
        ({"context": {"node_type": "n", "dataset_mb": 1},
          "machines": 8, "runtime_s": 1.0}, "context.algorithm"),
        ({"context": {"algorithm": "a", "node_type": "n", "dataset_mb": 1},
          "machines": -2, "runtime_s": 1.0}, "machines"),
        ({"context": {"algorithm": "a", "node_type": "n", "dataset_mb": 1},
          "machines": 2, "runtime_s": float("nan")}, "runtime_s"),
        ({"context": {"algorithm": "a", "node_type": "n", "dataset_mb": 1},
          "machines": 2, "runtime_s": 1.0, "bogus": True}, "body"),
    ):
        status, body = online_app.handle("POST", "/observe", payload)
        assert status == 400, (payload, body)
        assert body["error"] == "bad_request"
        assert body["field"] == field


def test_observe_without_online_lifecycle_is_a_structured_404(scenario):
    corpus = ExecutionDataset(list(scenario.history))
    session = Session(
        corpus,
        config=BellamyConfig(seed=0).with_overrides(pretrain_epochs=20),
    )
    app = ServeApp(session)
    try:
        client = ServeClient(app)
        with pytest.raises(ServeError) as excinfo:
            client.observe(scenario.context, 4, 100.0)
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"] == "online_disabled"
        assert client.stats()["online"] is None
    finally:
        app.close()


def test_observe_method_not_allowed(online_app):
    status, body = online_app.handle("GET", "/observe", None)
    assert status == 405


def test_observe_during_drain_is_503(online_app, scenario):
    online_app.close()
    status, body = online_app.handle(
        "POST",
        "/observe",
        {
            "context": {"algorithm": "sgd", "node_type": "m4.2xlarge",
                        "dataset_mb": 1000},
            "machines": 4,
            "runtime_s": 100.0,
        },
    )
    assert status == 503
    assert body["error"] == "shutting_down"


def test_mismatched_online_session_is_rejected(online_app, scenario):
    corpus = ExecutionDataset(list(scenario.history))
    other = Session(corpus, config=BellamyConfig(seed=0))
    with pytest.raises(ValueError, match="must wrap the session"):
        ServeApp(other, online=online_app.online)


def test_observe_over_http(scenario, tmp_path):
    corpus = ExecutionDataset(list(scenario.history))
    config = BellamyConfig(seed=0).with_overrides(
        pretrain_epochs=300, finetune_max_epochs=250, finetune_patience=120
    )
    session = Session(corpus, config=config, store=tmp_path / "store")
    online = OnlineSession(
        session,
        RefreshPolicy(min_observations=3, window=6, refresh_samples=8, max_epochs=250),
    )
    with PredictionServer(session, port=0, online=online) as server:
        client = HttpServeClient(server.url)
        refreshed = None
        for machines, runtime in scenario.stream:
            body = client.observe(scenario.context, machines, runtime)
            refreshed = body["refreshed"] or refreshed
        assert refreshed is not None
        assert refreshed["model_name"].startswith("online--")
        served = client.predict(scenario.context, [2, 4, 8])
    # Bit-identical to serial prediction after the refresh swap.
    serial = session.predict(scenario.context, [2, 4, 8])
    assert np.array_equal(served, serial)
