"""Fail-fast guards for serving components carried across ``fork()``.

A :class:`ThreadExecutor`'s worker threads and a :class:`MicroBatcher`'s
flusher thread exist only in the process that constructed them — a forked
child inherits the objects but not the threads, so a submit there would
queue forever (the silent-hang regression pinned here). Both components
PID-stamp themselves at construction and raise immediately from the wrong
process; the fleet constructs its :class:`ServeApp` after fork precisely
to stay on the right side of these guards.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime.executor import ThreadExecutor
from repro.serve.batcher import MicroBatcher


def _run_in_child(fn) -> int:
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process
        code = 1
        try:
            code = int(fn() or 0)
        finally:
            os._exit(code)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


def _expect_fork_error(submit) -> int:
    """0 when ``submit`` raises the diagnostic RuntimeError, else 7/8."""
    try:
        submit()
    except RuntimeError as error:
        return 0 if "fork()" in str(error) else 8
    except BaseException:
        return 8
    return 7


class TestExecutorGuard:
    def test_submit_after_fork_raises(self):
        executor = ThreadExecutor(max_workers=1, name="guarded")
        try:
            assert executor.submit(lambda: 41 + 1).result(timeout=5.0) == 42
            child = lambda: _expect_fork_error(
                lambda: executor.submit(lambda: None)
            )
            assert _run_in_child(child) == 0
        finally:
            executor.shutdown()

    def test_parent_keeps_working_after_child_probe(self):
        executor = ThreadExecutor(max_workers=1, name="guarded")
        try:
            _run_in_child(lambda: 0)
            assert executor.submit(lambda: "ok").result(timeout=5.0) == "ok"
        finally:
            executor.shutdown()


class TestBatcherGuard:
    def test_submit_after_fork_raises(self, serve_session):
        from repro.serve.schemas import PredictionRequest

        batcher = MicroBatcher(serve_session, max_batch=4, max_wait_ms=1.0)
        try:
            context = serve_session.corpus.contexts()[0]
            request = PredictionRequest(context=context, machines=(2.0,))
            assert batcher.submit(request).shape == (1,)

            child = lambda: _expect_fork_error(lambda: batcher.submit(request))
            assert _run_in_child(child) == 0
            # The guard fired in the child only; the parent still serves.
            assert batcher.submit(request).shape == (1,)
        finally:
            batcher.close()
