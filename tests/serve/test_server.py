"""The prediction service end to end: app routing, HTTP transport, shutdown."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.api import Session
from repro.serve import (
    HttpServeClient,
    PredictionServer,
    ServeApp,
    ServeClient,
    ServeError,
    predict_payload,
)



@pytest.fixture()
def app(serve_session):
    app = ServeApp(serve_session, batch_wait_ms=5.0, cache=False)
    yield app
    app.close()


@pytest.fixture()
def sgd_serving_context(serve_session):
    return serve_session.corpus.for_algorithm("sgd").contexts()[0]


# --------------------------------------------------------------------- #
# In-process app behaviour
# --------------------------------------------------------------------- #


def test_zero_shot_prediction_matches_session(app, serve_session, sgd_serving_context):
    client = ServeClient(app)
    served = client.predict(sgd_serving_context, [2, 4, 8])
    serial = serve_session.predict(sgd_serving_context, [2, 4, 8])
    np.testing.assert_array_equal(served, serial)


def test_few_shot_prediction_matches_session(app, serve_session, sgd_serving_context):
    client = ServeClient(app)
    samples = ([2.0, 6.0], [500.0, 300.0])
    served = client.predict(sgd_serving_context, [4, 8], samples=samples)
    serial = serve_session.predict(sgd_serving_context, [4, 8], samples=samples)
    np.testing.assert_array_equal(served, serial)


def test_schema_error_is_structured_400(app, sgd_serving_context):
    client = ServeClient(app)
    with pytest.raises(ServeError) as excinfo:
        client.predict_response({"machines": [0], "context": {"algorithm": "sgd"}})
    assert excinfo.value.status == 400
    assert excinfo.value.payload["error"] == "bad_request"
    assert excinfo.value.payload["field"] == "machines"


def test_unknown_route_and_method(app):
    status, body = app.handle("GET", "/nope", None)
    assert (status, body["error"]) == (404, "not_found")
    status, body = app.handle("GET", "/predict", None)
    assert (status, body["error"]) == (405, "method_not_allowed")


def test_healthz_stats_and_request_log(app, sgd_serving_context):
    client = ServeClient(app)
    client.predict(sgd_serving_context, [4])
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["served"] == 1
    stats = client.stats()
    assert stats["requests"]["served"] == 1
    assert stats["batcher"]["submitted"] == 1
    entries = app.request_log()
    assert [entry["path"] for entry in entries][:2] == ["/predict", "/healthz"]
    predict_entry = entries[0]
    assert predict_entry["status"] == 200
    assert predict_entry["context_id"] == sgd_serving_context.context_id
    assert predict_entry["latency_ms"] >= 0.0


def test_request_log_streams_json_lines(serve_session, sgd_serving_context, tmp_path):
    log_path = tmp_path / "requests.jsonl"
    with log_path.open("w", encoding="utf-8") as stream:
        app = ServeApp(serve_session, batch_wait_ms=5.0, cache=False, log_stream=stream)
        ServeClient(app).predict(sgd_serving_context, [4])
        app.close()
    lines = log_path.read_text(encoding="utf-8").strip().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["path"] == "/predict" and entry["status"] == 200


def test_named_model_predict_and_unknown_model_404(c3o_dataset, tmp_path, small_config):
    session = Session(c3o_dataset, config=small_config, store=tmp_path / "models")
    session.pretrain("sgd", save_as="sgd-base")
    app = ServeApp(session, batch_wait_ms=5.0)
    client = ServeClient(app)
    context = c3o_dataset.for_algorithm("sgd").contexts()[0]
    try:
        served = client.predict(context, [4, 8], model="sgd-base")
        serial = session.predict(context, [4, 8], model="sgd-base")
        np.testing.assert_array_equal(served, serial)
        with pytest.raises(ServeError) as excinfo:
            client.predict(context, [4], model="no-such-model")
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error"] == "unknown_model"
    finally:
        app.close()


def test_predict_after_close_is_503(app, sgd_serving_context):
    client = ServeClient(app)
    app.close()
    with pytest.raises(ServeError) as excinfo:
        client.predict(sgd_serving_context, [4])
    assert excinfo.value.status == 503
    assert client.healthz()["status"] == "draining"


# --------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------- #


def test_http_round_trip_bit_identical(serve_session, sgd_serving_context):
    with PredictionServer(serve_session, port=0, batch_wait_ms=5.0, cache=False) as server:
        client = HttpServeClient(server.url)
        assert client.healthz()["status"] == "ok"
        served = client.predict(sgd_serving_context, [2, 4, 8])
        stats = client.stats()
    serial = serve_session.predict(sgd_serving_context, [2, 4, 8])
    np.testing.assert_array_equal(served, serial)
    assert stats["requests"]["served"] == 1


def test_http_malformed_json_body_is_structured_400(serve_session):
    with PredictionServer(serve_session, port=0, batch_wait_ms=5.0, cache=False) as server:
        request = urllib.request.Request(
            server.url + "/predict",
            data=b"{not json!",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
    assert body["error"] == "bad_request"
    assert body["field"] == "body"
    assert "invalid JSON" in body["detail"]


def test_http_concurrent_requests_are_batched_and_exact(
    serve_session, sgd_serving_context
):
    contexts = serve_session.corpus.for_algorithm("sgd").contexts()[:4]
    with PredictionServer(serve_session, port=0, batch_wait_ms=30.0, cache=False) as server:
        client = HttpServeClient(server.url)
        client.healthz()
        results = [None] * 12
        barrier = threading.Barrier(12)

        def fire(index):
            barrier.wait()
            results[index] = client.predict(contexts[index % 4], [4, 8])

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = client.stats()
    for index, result in enumerate(results):
        serial = serve_session.predict(contexts[index % 4], [4, 8])
        np.testing.assert_array_equal(result, serial)
    batcher = stats["batcher"]
    assert batcher["mean_batch_size"] >= 2.0, "micro-batching did not coalesce"
    assert batcher["largest_group"] >= 2


def test_close_without_serving_does_not_hang(serve_session):
    """close() on a never-started server must return, not deadlock on the
    stdlib shutdown() handshake that only serve_forever answers."""
    server = PredictionServer(serve_session, port=0, batch_wait_ms=5.0, cache=False)
    done = threading.Event()

    def closer():
        server.close()
        done.set()

    thread = threading.Thread(target=closer, daemon=True)
    thread.start()
    assert done.wait(timeout=5.0), "PredictionServer.close() hung without start()"


def test_routes_ignore_query_strings(app):
    """Health probes configured with query parameters must not 404."""
    status, body = app.handle("GET", "/healthz?probe=1", None)
    assert (status, body["status"]) == (200, "ok")
    status, _ = app.handle("GET", "/stats?verbose=1", None)
    assert status == 200


def test_named_model_predict_after_close_is_503(c3o_dataset, tmp_path, small_config):
    session = Session(c3o_dataset, config=small_config, store=tmp_path / "models")
    session.pretrain("sgd", save_as="sgd-base")
    app = ServeApp(session, batch_wait_ms=5.0)
    client = ServeClient(app)
    context = c3o_dataset.for_algorithm("sgd").contexts()[0]
    app.close()
    with pytest.raises(ServeError) as excinfo:
        client.predict(context, [4], model="sgd-base")
    assert excinfo.value.status == 503


def test_server_shutdown_drains_in_flight_requests(serve_session, sgd_serving_context):
    """Requests accepted before close() still get 200s (graceful drain)."""
    server = PredictionServer(
        serve_session, port=0, batch_max=4, batch_wait_ms=2000.0, cache=False
    ).start()
    client = HttpServeClient(server.url)
    client.healthz()
    results = [None] * 3

    def fire(index):
        results[index] = client.predict(sgd_serving_context, [4.0 + index])

    threads = [threading.Thread(target=fire, args=(i,)) for i in range(3)]
    for thread in threads:
        thread.start()
    time.sleep(0.3)  # requests are now queued behind the 2s batch window
    server.close()  # must flush them, not drop them
    for thread in threads:
        thread.join(timeout=10.0)
    for index, result in enumerate(results):
        serial = serve_session.predict(sgd_serving_context, [4.0 + index])
        np.testing.assert_array_equal(result, serial)
