"""Wire-schema parsing and its structured failure modes."""

from __future__ import annotations

import pytest

from repro.data.schema import JobContext
from repro.serve import (
    SchemaError,
    context_from_payload,
    context_to_payload,
    parse_predict_payload,
    predict_payload,
)
from repro.serve.schemas import parse_model_name


CONTEXT = {
    "algorithm": "sgd",
    "node_type": "m4.2xlarge",
    "dataset_mb": 19353,
    "dataset_characteristics": "dense-features",
    "job_params": {"max_iterations": "25"},
}


def test_context_round_trip():
    context = context_from_payload(CONTEXT)
    assert isinstance(context, JobContext)
    assert context.algorithm == "sgd"
    assert context.params_text == "max_iterations=25"
    assert context_from_payload(context_to_payload(context)) == context


def test_predict_payload_round_trip():
    context = context_from_payload(CONTEXT)
    body = predict_payload(
        context, [2, 4], {"machines": [2, 6], "runtimes": [500.0, 300.0]}, model="m"
    )
    request = parse_predict_payload(body)
    assert request.context == context
    assert list(request.machines) == [2.0, 4.0]
    assert list(request.train_machines) == [2.0, 6.0]
    assert list(request.train_runtimes) == [500.0, 300.0]
    assert parse_model_name(body) == "m"


def test_zero_shot_payload_has_no_samples():
    request = parse_predict_payload({"context": CONTEXT, "machines": [8]})
    assert request.train_machines is None and request.train_runtimes is None


@pytest.mark.parametrize(
    "payload, field",
    [
        ([1, 2], "body"),
        ({"context": CONTEXT}, "machines"),
        ({"context": CONTEXT, "machines": []}, "machines"),
        ({"context": CONTEXT, "machines": [0]}, "machines"),
        ({"context": CONTEXT, "machines": ["a"]}, "machines"),
        ({"context": CONTEXT, "machines": [True]}, "machines"),
        ({"machines": [2], "context": "nope"}, "context"),
        ({"machines": [2], "context": {}}, "context.algorithm"),
        (
            {"machines": [2], "context": {"algorithm": "sgd", "node_type": "m4"}},
            "context.dataset_mb",
        ),
        (
            {
                "machines": [2],
                "context": {"algorithm": "sgd", "node_type": "m4", "dataset_mb": "x"},
            },
            "context.dataset_mb",
        ),
        ({"machines": [2], "context": CONTEXT, "samples": []}, "samples"),
        (
            {"machines": [2], "context": CONTEXT, "samples": {"machines": [2]}},
            "samples.runtimes",
        ),
        (
            {
                "machines": [2],
                "context": CONTEXT,
                "samples": {"machines": [2, 4], "runtimes": [100.0]},
            },
            "samples",
        ),
        ({"machines": [2], "context": CONTEXT, "model": ""}, "model"),
        ({"machines": [2], "context": CONTEXT, "banana": 1}, "body"),
    ],
)
def test_malformed_payloads_name_the_field(payload, field):
    with pytest.raises(SchemaError) as excinfo:
        parse_predict_payload(payload)
        parse_model_name(payload)
    assert excinfo.value.field == field
    body = excinfo.value.payload()
    assert body["error"] == "bad_request"
    assert body["field"] == field
    assert body["detail"]


def test_unknown_context_keys_rejected():
    bad = dict(CONTEXT, typo_key=1)
    with pytest.raises(SchemaError) as excinfo:
        context_from_payload(bad)
    assert "typo_key" in str(excinfo.value)


def test_invalid_dataset_mb_value():
    bad = dict(CONTEXT, dataset_mb=-5)
    with pytest.raises(SchemaError):
        context_from_payload(bad)
