"""LRU + TTL warm-model cache: policy, counters, stampede protection."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Session
from repro.serve import FakeClock, LruTtlCache



def test_lru_eviction_order_and_counters():
    cache = LruTtlCache(capacity=2)
    cache.get_or_load("a", lambda: 1)
    cache.get_or_load("b", lambda: 2)
    cache.get_or_load("a", lambda: None)  # refresh a's recency
    cache.get_or_load("c", lambda: 3)  # evicts b (least recently used)
    assert set(cache.keys()) == {"a", "c"}
    assert "b" not in cache
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 3
    value, hit = cache.get_or_load("b", lambda: 20)  # reload after eviction
    assert (value, hit) == (20, False)


def test_ttl_expiry_reloads():
    clock = FakeClock()
    cache = LruTtlCache(capacity=4, ttl_s=10.0, clock=clock)
    assert cache.get_or_load("k", lambda: "old") == ("old", False)
    clock.advance(9.0)
    assert cache.get_or_load("k", lambda: "miss") == ("old", True)  # still warm
    clock.advance(2.0)  # 11s since load: expired
    assert cache.get_or_load("k", lambda: "new") == ("new", False)
    assert cache.stats()["expirations"] == 1


def test_loader_error_not_cached_and_propagates():
    cache = LruTtlCache(capacity=4)
    calls = []

    def boom():
        calls.append(1)
        raise RuntimeError("load failed")

    with pytest.raises(RuntimeError):
        cache.get_or_load("k", boom)
    assert "k" not in cache
    assert cache.get_or_load("k", lambda: "ok") == ("ok", False)
    assert len(calls) == 1


def test_concurrent_misses_coalesce_to_one_load():
    cache = LruTtlCache(capacity=4)
    loads = []
    barrier = threading.Barrier(8)
    results = []

    def loader():
        loads.append(1)
        time.sleep(0.05)  # hold the load open so every thread piles up
        return "value"

    def worker():
        barrier.wait()
        results.append(cache.get_or_load("k", loader))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(loads) == 1, "cache stampede: loader ran more than once"
    assert all(value == "value" for value, _ in results)
    assert cache.stats()["coalesced_loads"] == 7


def test_invalidate_and_clear():
    cache = LruTtlCache(capacity=4)
    cache.get_or_load("k", lambda: 1)
    assert cache.invalidate("k") is True
    assert cache.invalidate("k") is False
    cache.get_or_load("a", lambda: 1)
    cache.clear()
    assert len(cache) == 0


def test_constructor_validation():
    with pytest.raises(ValueError):
        LruTtlCache(capacity=0)
    with pytest.raises(ValueError):
        LruTtlCache(ttl_s=0.0)


# --------------------------------------------------------------------- #
# Session integration: the model_cache hook
# --------------------------------------------------------------------- #


def test_session_ttl_expiry_refetches_from_model_store(c3o_dataset, tmp_path, small_config):
    """After TTL expiry the base model comes back from the ModelStore, not
    from a fresh pre-training run."""
    clock = FakeClock()
    cache = LruTtlCache(capacity=4, ttl_s=60.0, clock=clock)
    session = Session(
        c3o_dataset, config=small_config, store=tmp_path / "models",
        model_cache=cache,
    )
    session.base_model("sgd")  # miss -> pre-train (persists to the store)
    assert [source for source, _ in session.cache_log] == ["train"]

    session.base_model("sgd")  # warm
    assert session.cache_log[-1][0] == "cache"

    clock.advance(61.0)
    session.base_model("sgd")  # expired -> store fetch, NOT a new training
    assert session.cache_log[-1][0] == "store"
    assert [source for source, _ in session.cache_log].count("train") == 1
    assert cache.stats()["expirations"] == 1


def test_session_concurrent_base_model_trains_once(fresh_session):
    """Concurrent cold requests for one algorithm trigger one pre-training."""
    fresh_session.model_cache = LruTtlCache(capacity=4)
    barrier = threading.Barrier(4)
    models = []

    def worker():
        barrier.wait()
        models.append(fresh_session.base_model("grep"))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len({id(model) for model in models}) == 1
    sources = [source for source, _ in fresh_session.cache_log]
    assert sources.count("train") == 1
    assert fresh_session.model_cache.stats()["coalesced_loads"] == 3


def test_session_lru_eviction_retrains_or_reloads(c3o_dataset, tmp_path, small_config):
    """Evicted base models are transparently restored from the store."""
    cache = LruTtlCache(capacity=1)
    session = Session(
        c3o_dataset, config=small_config, store=tmp_path / "models",
        model_cache=cache,
    )
    session.base_model("sgd")
    session.base_model("grep")  # evicts sgd (capacity 1)
    assert cache.stats()["evictions"] == 1
    session.base_model("sgd")  # back from the store
    assert session.cache_log[-1][0] == "store"
    assert [source for source, _ in session.cache_log].count("train") == 2


def test_session_named_load_is_cached(c3o_dataset, tmp_path, small_config):
    session = Session(c3o_dataset, config=small_config, store=tmp_path / "models")
    session.pretrain("sgd", save_as="sgd-base")
    session.model_cache = LruTtlCache(capacity=4)
    first = session.load("sgd-base")
    second = session.load("sgd-base")
    assert first is second
    assert session.cache_log[-1][0] == "cache"
