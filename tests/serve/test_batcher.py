"""Micro-batching: coalescing, exactness, draining, failure propagation."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import PredictionRequest, Session
from repro.data.schema import JobContext
from repro.serve import BatcherClosedError, MicroBatcher


class StubSession:
    """A predict_batch-shaped double recording the calls it serves."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False) -> None:
        self.calls = []
        self.delay_s = delay_s
        self.fail = fail
        self.last_batch_stats = {}

    def predict_batch(self, requests, model=None, max_epochs=None, exact=False):
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("backend exploded")
        self.calls.append([r.machines for r in requests])
        groups = {Session.group_fingerprint(r) for r in requests}
        self.last_batch_stats = {
            "requests": len(requests),
            "groups": len(groups),
            "finetune_fits": 0,
            "zero_shot_batches": 0,
        }
        return [np.asarray(r.machines, dtype=np.float64) * 2.0 for r in requests]


def _context(tag: str = "a") -> JobContext:
    return JobContext("sgd", f"m4.{tag}", 1000, "dense")


def _submit_concurrently(batcher, requests):
    results = [None] * len(requests)
    errors = [None] * len(requests)
    barrier = threading.Barrier(len(requests))

    def worker(index):
        barrier.wait()
        try:
            results[index] = batcher.submit(requests[index])
        except BaseException as error:  # collected for assertions
            errors[index] = error

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(len(requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results, errors


def test_concurrent_requests_ride_one_batch():
    stub = StubSession()
    batcher = MicroBatcher(stub, max_batch=16, max_wait_ms=150.0)
    try:
        requests = [
            PredictionRequest(machines=[float(i + 1)], context=_context())
            for i in range(8)
        ]
        results, errors = _submit_concurrently(batcher, requests)
        assert errors == [None] * 8
        for i, result in enumerate(results):
            np.testing.assert_array_equal(result, [(i + 1) * 2.0])
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["largest_batch"] == 8
        assert stats["largest_group"] == 8  # all share the fingerprint
        assert stats["mean_batch_size"] == 8.0
    finally:
        batcher.close()


def test_max_batch_splits_flushes():
    stub = StubSession()
    batcher = MicroBatcher(stub, max_batch=3, max_wait_ms=150.0)
    try:
        requests = [
            PredictionRequest(machines=[1.0], context=_context(str(i)))
            for i in range(7)
        ]
        _, errors = _submit_concurrently(batcher, requests)
        assert errors == [None] * 7
        assert all(len(call) <= 3 for call in stub.calls)
        assert sum(len(call) for call in stub.calls) == 7
    finally:
        batcher.close()


def test_idle_batcher_serves_single_request_within_window():
    stub = StubSession()
    batcher = MicroBatcher(stub, max_batch=64, max_wait_ms=10.0)
    try:
        result = batcher.submit(PredictionRequest(machines=[4.0], context=_context()))
        np.testing.assert_array_equal(result, [8.0])
    finally:
        batcher.close()


def test_close_drains_queued_requests():
    """Requests accepted before close() are answered, not dropped."""
    stub = StubSession(delay_s=0.03)
    batcher = MicroBatcher(stub, max_batch=2, max_wait_ms=5000.0)
    requests = [
        PredictionRequest(machines=[float(i + 1)], context=_context(str(i)))
        for i in range(6)
    ]
    results = [None] * 6
    threads = [
        threading.Thread(
            target=lambda i=i: results.__setitem__(i, batcher.submit(requests[i]))
        )
        for i in range(6)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let every request enqueue (windows are 5s)
    batcher.close()
    for thread in threads:
        thread.join(timeout=5.0)
    assert all(result is not None for result in results)
    assert batcher.stats()["batched_requests"] == 6
    with pytest.raises(BatcherClosedError):
        batcher.submit(requests[0])


def test_backend_failure_propagates_to_every_waiter():
    stub = StubSession(fail=True)
    batcher = MicroBatcher(stub, max_batch=8, max_wait_ms=50.0)
    try:
        requests = [
            PredictionRequest(machines=[1.0], context=_context()) for _ in range(3)
        ]
        results, errors = _submit_concurrently(batcher, requests)
        assert results == [None] * 3
        assert all(isinstance(error, RuntimeError) for error in errors)
        assert batcher.stats()["errors"] == 3
    finally:
        batcher.close()


def test_request_without_context_rejected():
    batcher = MicroBatcher(StubSession(), max_wait_ms=1.0)
    try:
        with pytest.raises(ValueError):
            batcher.submit(PredictionRequest(machines=[2.0]))
    finally:
        batcher.close()


def test_constructor_validation():
    with pytest.raises(ValueError):
        MicroBatcher(StubSession(), max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(StubSession(), max_wait_ms=-1.0)


# --------------------------------------------------------------------- #
# Against a real session: exactness and single fine-tune per group
# --------------------------------------------------------------------- #


def test_batched_results_bit_identical_to_serial_predict(serve_session):
    contexts = serve_session.corpus.for_algorithm("sgd").contexts()[:3]
    batcher = MicroBatcher(serve_session, max_batch=32, max_wait_ms=100.0)
    try:
        requests = [
            PredictionRequest(machines=[2.0 + i, 8.0], context=contexts[i % 3])
            for i in range(9)
        ]
        results, errors = _submit_concurrently(batcher, requests)
        assert errors == [None] * 9
        for request, result in zip(requests, results):
            serial = serve_session.predict(request.context, request.machines)
            np.testing.assert_array_equal(result, serial)
    finally:
        batcher.close()


def test_same_context_samples_finetuned_once(serve_session):
    """The stampede case: N concurrent few-shot requests for one context
    produce exactly one fine-tune."""
    context = serve_session.corpus.for_algorithm("sgd").contexts()[0]
    batcher = MicroBatcher(serve_session, max_batch=32, max_wait_ms=200.0)
    try:
        requests = [
            PredictionRequest(
                machines=[4.0 + i],
                context=context,
                train_machines=[2.0, 6.0],
                train_runtimes=[500.0, 300.0],
            )
            for i in range(6)
        ]
        results, errors = _submit_concurrently(batcher, requests)
        assert errors == [None] * 6
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["finetune_fits"] == 1, "grouping failed: more than one fine-tune"
        assert stats["largest_group"] == 6
        serial = serve_session.predict(
            context, [4.0], samples=([2.0, 6.0], [500.0, 300.0])
        )
        np.testing.assert_array_equal(results[0], serial)
    finally:
        batcher.close()
